# Shared metric-name expectations for the example smoke checks.
#
# include()d by check_obs_exports.cmake and check_stream_metrics.cmake
# (and any future check script) so the instrument names the smoke tests
# assert on live in exactly one place. The names must track what the
# library registers — see src/stream/pipeline.hpp for the streaming
# instruments and src/obs/serve.cpp for the server's self-metrics.

# Gauges the streaming pipeline always creates (construction / router
# startup), so any successful replay must have exported them.
set(FAILMINE_STREAM_REQUIRED_GAUGES
  stream.queue_depth
  stream.watermark_lag_s
  stream.ingest.occupancy
  stream.reorder.buffered)

# Histograms a successful replay must have exported.
set(FAILMINE_STREAM_REQUIRED_HISTOGRAMS
  stream.router.batch_us)

# Counters whose *values* the stream check inspects.
set(FAILMINE_STREAM_IN_COUNTER stream.records_in)
set(FAILMINE_STREAM_DROPPED_COUNTER stream.records_dropped)

# The parse counter the obs-exports check requires to be populated.
set(FAILMINE_PARSE_LINES_COUNTER parse.lines_total)

# Reads the export at `path` into `var`, failing if it is missing.
function(failmine_read_export var path)
  if(NOT path OR NOT EXISTS "${path}")
    message(FATAL_ERROR "metrics export missing: ${path}")
  endif()
  file(READ "${path}" content)
  set(${var} "${content}" PARENT_SCOPE)
endfunction()

# Asserts that `content` mentions every instrument named in ARGN.
function(failmine_require_metrics content)
  foreach(name ${ARGN})
    string(REPLACE "." "\\." pattern "${name}")
    if(NOT content MATCHES "\"${pattern}\":")
      message(FATAL_ERROR "metrics export lacks ${name}")
    endif()
  endforeach()
endfunction()

# Extracts the integer value of instrument `name` from `content` into
# `var`, failing if the instrument is absent.
function(failmine_metric_value var content name)
  string(REPLACE "." "\\." pattern "${name}")
  if(NOT content MATCHES "\"${pattern}\":([0-9]+)")
    message(FATAL_ERROR "metrics export lacks ${name}")
  endif()
  set(${var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()
