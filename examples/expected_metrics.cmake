# Shared metric-name expectations for the example smoke checks.
#
# include()d by check_obs_exports.cmake and check_stream_metrics.cmake
# (and any future check script) so the instrument names the smoke tests
# assert on live in exactly one place. The names must track what the
# library registers — see src/stream/pipeline.hpp for the streaming
# instruments and src/obs/serve.cpp for the server's self-metrics.

# Gauges the streaming pipeline always creates (construction / router
# startup), so any successful replay must have exported them.
set(FAILMINE_STREAM_REQUIRED_GAUGES
  stream.queue_depth
  stream.watermark_lag_s
  stream.ingest.occupancy
  stream.reorder.buffered)

# Histograms a successful replay must have exported.
set(FAILMINE_STREAM_REQUIRED_HISTOGRAMS
  stream.router.batch_us)

# Counters whose *values* the stream check inspects.
set(FAILMINE_STREAM_IN_COUNTER stream.records_in)
set(FAILMINE_STREAM_DROPPED_COUNTER stream.records_dropped)

# Causal-tracing instruments the pipeline's tracer configures at
# construction (src/obs/causal.cpp): one latency histogram per stage
# after emit, the end-to-end histogram, and the sampled-trace counter.
# They exist (possibly all-zero) whenever trace sampling is enabled,
# which is the stream example's default.
set(FAILMINE_CAUSAL_REQUIRED_HISTOGRAMS
  causal.stage.ring_us
  causal.stage.reorder_us
  causal.stage.shard_us
  causal.stage.apply_us
  causal.e2e_us)
set(FAILMINE_CAUSAL_SAMPLED_COUNTER causal.sampled)

# Alert-engine instruments (src/obs/alerts.cpp) — the stream example
# always runs the engine over the built-in rule set.
set(FAILMINE_ALERTS_REQUIRED_METRICS
  obs.alerts.firing
  obs.alerts.evaluations
  obs.alerts.transitions)

# Prediction-subsystem instruments (src/predict/operator.cpp) — present
# whenever the stream replay runs with --predict, which the stream smoke
# test does. predict.records must be non-zero: the operator sees every
# routed record.
set(FAILMINE_PREDICT_REQUIRED_COUNTERS
  predict.records
  predict.warns
  predict.interruptions
  predict.alerts
  predict.jobs_scored)
set(FAILMINE_PREDICT_REQUIRED_HISTOGRAMS
  predict.lead_time_s
  predict.risk_score
  predict.flag_lead_s)
set(FAILMINE_PREDICT_RECORDS_COUNTER predict.records)

# Process-level gauges update_process_metrics() maintains on every
# export and scrape (src/obs/metrics.cpp).
set(FAILMINE_PROCESS_REQUIRED_GAUGES
  process_start_time_seconds
  failmine_uptime_seconds)

# The parse counter the obs-exports check requires to be populated.
set(FAILMINE_PARSE_LINES_COUNTER parse.lines_total)

# Counters the parallel mmap ingest engine registers on every batch load
# (src/ingest/loader.cpp) — the default --data loading path, so a summary
# run must have exported them.
set(FAILMINE_INGEST_REQUIRED_COUNTERS
  ingest.bytes_mapped
  ingest.chunks)

# Counters the columnar table builder flushes on every merge
# (src/columnar/builder.cpp) — present whenever a dataset was loaded
# with --columnar, with columnar.rows matching the ingested row count.
set(FAILMINE_COLUMNAR_REQUIRED_COUNTERS
  columnar.rows
  columnar.bytes
  columnar.dict_entries)
set(FAILMINE_COLUMNAR_ROWS_COUNTER columnar.rows)

# Self-metrics the telemetry server pre-registers at start(), so any
# replay run with --serve must have exported them (even all-zero): the
# request totals, the request-latency histogram and the sampling
# profiler's counters.
set(FAILMINE_SERVE_REQUIRED_COUNTERS
  obs.serve.requests
  obs.serve.bad_requests
  obs.serve.rejected_connections
  obs.profile.samples
  obs.profile.dropped
  obs.profile.truncated_stacks)
set(FAILMINE_SERVE_REQUIRED_HISTOGRAMS
  obs.serve.latency_us)
# Per-endpoint counters carry the path as an inline label
# (`obs.serve.requests{path="/metrics"}`); the JSON export escapes the
# inner quotes, so checks match on this prefix rather than a full name.
set(FAILMINE_SERVE_LABELED_REQUESTS_PREFIX "obs\\.serve\\.requests{path=")

# Time-series store self-metrics (src/obs/tsdb.cpp): synced into the
# scraped registry on every scrape, so any replay run with --tsdb (the
# stream smoke test's default) must have exported them, with at least
# one sample stored.
set(FAILMINE_TSDB_REQUIRED_METRICS
  tsdb.samples
  tsdb.series
  tsdb.bytes
  tsdb.dropped
  tsdb.dropped_series)
set(FAILMINE_TSDB_SAMPLES_COUNTER tsdb.samples)

# Exact exported spellings of the per-endpoint request counters the tsdb
# HTTP surface pre-registers at start() (the JSON export escapes the
# label quotes, hence the literal backslashes).
set(FAILMINE_SERVE_QUERY_REQUESTS_NAME
    "obs.serve.requests{path=\\\"/query\\\"}")
set(FAILMINE_SERVE_SERIES_REQUESTS_NAME
    "obs.serve.requests{path=\\\"/series\\\"}")
set(FAILMINE_SERVE_FLEET_REQUESTS_NAME
    "obs.serve.requests{path=\\\"/fleet\\\"}")

# Fleet-mode spellings: each twin's pipeline instruments carry the twin
# label inline (`stream.records_in{twin="t0"}` — quotes escaped in the
# JSON export). The check script derives the per-twin names from these
# family spellings, so the label convention lives in one place.
function(failmine_fleet_metric_name var family twin)
  set(${var} "${family}{twin=\\\"${twin}\\\"}" PARENT_SCOPE)
endfunction()

# Reads the export at `path` into `var`, failing if it is missing.
function(failmine_read_export var path)
  if(NOT path OR NOT EXISTS "${path}")
    message(FATAL_ERROR "metrics export missing: ${path}")
  endif()
  file(READ "${path}" content)
  set(${var} "${content}" PARENT_SCOPE)
endfunction()

# Asserts that `content` mentions every instrument named in ARGN.
function(failmine_require_metrics content)
  foreach(name ${ARGN})
    string(REPLACE "." "\\." pattern "${name}")
    if(NOT content MATCHES "\"${pattern}\":")
      message(FATAL_ERROR "metrics export lacks ${name}")
    endif()
  endforeach()
endfunction()

# Asserts that `content` mentions at least one instrument whose name
# starts with `prefix` (an escaped regex fragment — used for the inline
# label-block spelling, whose quotes are escaped in the JSON export).
function(failmine_require_metric_prefix content prefix)
  if(NOT content MATCHES "\"${prefix}")
    message(FATAL_ERROR "metrics export lacks any ${prefix} instrument")
  endif()
endfunction()

# Asserts that `content` contains `needle` verbatim (no regex) — used
# for the escaped inline-label spellings, which are painful as regexes.
function(failmine_require_substring content needle)
  string(FIND "${content}" "${needle}" found_at)
  if(found_at EQUAL -1)
    message(FATAL_ERROR "metrics export lacks ${needle}")
  endif()
endfunction()

# Extracts the integer value of instrument `name` from `content` into
# `var`, failing if the instrument is absent.
function(failmine_metric_value var content name)
  string(REPLACE "." "\\." pattern "${name}")
  if(NOT content MATCHES "\"${pattern}\":([0-9]+)")
    message(FATAL_ERROR "metrics export lacks ${name}")
  endif()
  set(${var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

# Extracts the integer value of the instrument spelled exactly `name`
# into `var` — the labeled-spelling variant of failmine_metric_value.
# Inline label blocks are full of regex metacharacters (braces, escaped
# quotes), so this matches the literal name and parses the digits that
# follow it instead of building a pattern.
function(failmine_labeled_metric_value var content name)
  set(needle "\"${name}\":")
  string(FIND "${content}" "${needle}" found_at)
  if(found_at EQUAL -1)
    message(FATAL_ERROR "metrics export lacks ${name}")
  endif()
  string(LENGTH "${needle}" needle_len)
  math(EXPR value_at "${found_at} + ${needle_len}")
  string(SUBSTRING "${content}" ${value_at} 24 tail)
  if(NOT tail MATCHES "^([0-9]+)")
    message(FATAL_ERROR "metrics export has no integer value for ${name}")
  endif()
  set(${var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()
