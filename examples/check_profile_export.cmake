# Validates the folded-stack export written by the example_cli_profile
# smoke test: the file must be non-empty, every line must be a
# collapsed stack in Brendan Gregg folded format ("frame;frame;... N"),
# and the whole-run capture must have caught the streaming pipeline at
# work — at least one stack from a named pipeline thread ("fm.") running
# under a stream.* span. Invoked as:
#   cmake -DFOLDED=... -P check_profile_export.cmake

if(NOT FOLDED OR NOT EXISTS "${FOLDED}")
  message(FATAL_ERROR "profile export missing: ${FOLDED}")
endif()
file(STRINGS "${FOLDED}" lines)
list(LENGTH lines line_count)
if(line_count EQUAL 0)
  message(FATAL_ERROR "profile export is empty: ${FOLDED}")
endif()

set(total 0)
set(stream_span_lines 0)
set(pipeline_thread_lines 0)
foreach(line IN LISTS lines)
  # Count after the LAST space: demangled frames may themselves contain
  # spaces (template argument lists), which folded consumers tolerate.
  if(NOT line MATCHES "^.+ ([0-9]+)$")
    message(FATAL_ERROR "not a folded stack line: '${line}'")
  endif()
  math(EXPR total "${total} + ${CMAKE_MATCH_1}")
  if(line MATCHES ";span:stream\\.")
    math(EXPR stream_span_lines "${stream_span_lines} + 1")
  endif()
  if(line MATCHES "^fm\\.")
    math(EXPR pipeline_thread_lines "${pipeline_thread_lines} + 1")
  endif()
endforeach()

if(total EQUAL 0)
  message(FATAL_ERROR "profile export has zero samples: ${FOLDED}")
endif()
if(stream_span_lines EQUAL 0)
  message(FATAL_ERROR "no stack carries a stream.* span — the capture "
                      "missed the pipeline: ${FOLDED}")
endif()
if(pipeline_thread_lines EQUAL 0)
  message(FATAL_ERROR "no stack from a named pipeline thread (fm.*): "
                      "${FOLDED}")
endif()

message(STATUS "profile export OK: ${total} samples over ${line_count} "
               "stacks (${stream_span_lines} on stream.* spans)")
