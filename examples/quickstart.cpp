// quickstart — the 60-second tour of the failmine API.
//
// Simulates a small Mira trace, runs the joint analysis, and prints the
// headline numbers the DSN'19 study reports: failure counts, the
// user/system cause split, and the filtered MTTI.
//
// Usage: quickstart [scale]     (default scale 0.02, ~10k jobs)

#include <cstdio>
#include <cstdlib>

#include "core/joint_analyzer.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace failmine;

  // 1. Configure and generate a trace. Everything is deterministic in
  //    the seed; scale 1.0 reproduces the paper-sized dataset.
  sim::SimConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  std::printf("simulating %d days of Mira at scale %.3g ...\n",
              config.observation_days, config.scale);
  const sim::SimResult trace = sim::simulate(config);
  std::printf("  jobs=%zu tasks=%zu ras_events=%zu io_records=%zu\n",
              trace.job_log.size(), trace.task_log.size(),
              trace.ras_log.size(), trace.io_log.size());

  // 2. Bind the four logs into a joint analyzer.
  const core::JointAnalyzer analyzer(trace.job_log, trace.task_log,
                                     trace.ras_log, trace.io_log,
                                     config.machine);

  // 3. Exit-status breakdown (paper takeaway T-A).
  const auto breakdown = analyzer.exit_breakdown();
  std::printf("\nfailures: %llu of %llu jobs (%.1f%%)\n",
              static_cast<unsigned long long>(breakdown.total_failures),
              static_cast<unsigned long long>(breakdown.total_jobs),
              100.0 * static_cast<double>(breakdown.total_failures) /
                  static_cast<double>(breakdown.total_jobs));
  std::printf("  user-caused:   %.2f%%  (paper: 99.4%%)\n",
              100.0 * breakdown.user_caused_share);
  std::printf("  system-caused: %.2f%%  (paper: 0.6%%)\n",
              100.0 * breakdown.system_caused_share);

  // 4. Similarity-filtered MTTI (takeaway T-E).
  const auto fm = analyzer.interruption_analysis(core::FilterConfig{});
  std::printf("\nRAS filtering: %llu raw FATALs -> %zu interruptions (%.1fx)\n",
              static_cast<unsigned long long>(fm.filter.input_events),
              fm.filter.clusters.size(), fm.filter.reduction_factor());
  std::printf("MTTI: %.2f days at this scale; %.2f paper-scale days "
              "(paper: ~3.5)\n",
              fm.mtti.mtti_days, fm.mtti.mtti_days * config.scale);

  // 5. Best-fit execution-length family per failure class (takeaway T-C).
  std::printf("\nbest-fit runtime family per exit class:\n");
  for (const auto& row : analyzer.runtime_distribution_study(40)) {
    std::printf("  %-18s n=%-6zu -> %s\n",
                joblog::exit_class_name(row.exit_class).c_str(),
                row.sample_size, core::best_family_name(row).c_str());
  }
  return 0;
}
