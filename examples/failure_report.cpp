// failure_report — generate a dataset, export it to CSV, reload it, and
// run the full takeaway report against the paper's headline claims.
//
// This is the workflow a site reliability analyst would run against real
// Cobalt/RAS/Darshan exports: drop the four CSV files in a directory and
// point the toolkit at it.
//
// Usage: failure_report [output-dir] [scale]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/report.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace failmine;

  const std::string dir = argc > 1 ? argv[1] : "failmine_dataset";
  sim::SimConfig config;
  // 1/10 paper scale keeps the count-calibrated claims (T-A1, T-E1, T-C4)
  // out of small-sample noise; smaller scales are fine for the structural
  // claims but can flip the tight ones.
  config.scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  // 1. Generate and export the four logs.
  std::printf("generating trace (scale %.3g) ...\n", config.scale);
  const sim::SimResult trace = sim::simulate(config);
  std::filesystem::create_directories(dir);
  sim::write_dataset(trace, dir);
  std::printf("wrote %s/{ras,jobs,tasks,io}.csv\n", dir.c_str());

  // 2. Reload from disk — from here on this is exactly the analysis a
  //    real log export would get.
  const sim::SimResult loaded = sim::load_dataset(dir, config.machine);
  const core::JointAnalyzer analyzer(loaded.job_log, loaded.task_log,
                                     loaded.ras_log, loaded.io_log,
                                     config.machine);

  // 3. Evaluate every reproducible headline claim of the paper.
  core::ReportConfig rc;
  rc.trace_scale = config.scale;
  const auto takeaways = core::evaluate_takeaways(analyzer, rc);
  std::fputs(core::format_report(takeaways).c_str(), stdout);
  const bool ok = core::all_pass(takeaways);
  std::printf("\noverall: %s\n", ok ? "ALL PASS" : "SOME CLAIMS FAILED");
  return ok ? 0 : 1;
}
