// incident_triage — operator's view: walk the worst interruptions, find
// which job each one killed, which user was affected, and whether the
// hardware is a repeat offender.
//
// Demonstrates: similarity filtering, the attribution index, and the
// locality analysis working together on one dataset.
//
// Usage: incident_triage [top-k] [scale]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/locality.hpp"
#include "core/attribution.hpp"
#include "core/event_filter.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

int main(int argc, char** argv) {
  using namespace failmine;

  const std::size_t top_k = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;
  sim::SimConfig config;
  config.scale = argc > 2 ? std::atof(argv[2]) : 0.05;
  const sim::SimResult trace = sim::simulate(config);

  // Deduplicate the FATAL stream into interruptions.
  const auto filtered = core::filter_events(trace.ras_log, core::FilterConfig{});
  std::printf("%llu raw FATALs -> %zu interruptions\n",
              static_cast<unsigned long long>(filtered.input_events),
              filtered.clusters.size());

  // Rank interruptions by burst size (bigger bursts = wider blast radius).
  std::vector<const core::EventCluster*> ranked;
  for (const auto& c : filtered.clusters) ranked.push_back(&c);
  std::sort(ranked.begin(), ranked.end(),
            [](const core::EventCluster* a, const core::EventCluster* b) {
              return a->member_count > b->member_count;
            });

  // Identify repeat-offender boards.
  const auto hot_boards = analysis::events_per_component(
      trace.ras_log, topology::Level::kNodeBoard, raslog::Severity::kFatal);
  auto board_rank = [&](const topology::Location& board) -> std::size_t {
    for (std::size_t i = 0; i < hot_boards.size(); ++i)
      if (hot_boards[i].location == board) return i + 1;
    return 0;
  };

  const core::AttributionIndex index(trace.job_log, config.machine);

  std::printf("\ntop %zu interruptions by burst size:\n", top_k);
  for (std::size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
    const core::EventCluster& c = *ranked[i];
    std::printf("#%zu  %s  %-14s  burst=%llu  msg=%s\n", i + 1,
                util::format_timestamp(c.first_time).c_str(),
                c.representative.location.to_string().c_str(),
                static_cast<unsigned long long>(c.member_count),
                c.representative.message_id.c_str());

    // Which job did this interruption hit? Prefer the control system's
    // own association if any event of the burst carried one, otherwise
    // fall back to spatio-temporal attribution.
    auto victim = c.job_id;
    if (!victim) victim = index.attribute(c.representative);
    if (victim) {
      const auto& job = trace.job_log.by_id(*victim);
      std::printf("     killed job %llu (user %u, %u nodes, %lld s into run, "
                  "exit %s)\n",
                  static_cast<unsigned long long>(job.job_id), job.user_id,
                  job.nodes_used, c.first_time - job.start_time,
                  joblog::exit_class_name(job.exit_class).c_str());
    } else {
      std::printf("     no job was running on the affected hardware\n");
    }

    // Repeat-offender check on the origin board.
    if (c.representative.location.level() >= topology::Level::kNodeBoard) {
      const auto board =
          c.representative.location.ancestor(topology::Level::kNodeBoard);
      const std::size_t rank = board_rank(board);
      if (rank > 0 && rank <= 20)
        std::printf("     board %s is fatal-event hot spot #%zu — "
                    "candidate for replacement\n",
                    board.to_string().c_str(), rank);
    }
  }
  return 0;
}
