// capacity_planning — "what if the hardware were less reliable?"
//
// Sweeps the system-failure hazard over a 10x range and reports how the
// filtered MTTI, the system-caused failure share, and the core-hours lost
// to interruptions respond. This is the question a facility asks when
// deciding between early replacement and riding out component aging.
//
// Usage: capacity_planning [scale]

#include <cstdio>
#include <cstdlib>

#include "core/joint_analyzer.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace failmine;

  sim::SimConfig base;
  base.scale = argc > 1 ? std::atof(argv[1]) : 0.02;

  std::printf("hazard sweep at scale %.3g (base hazard %.3g per node-second)\n\n",
              base.scale, base.system_hazard_per_node_second);
  std::printf("%-10s %10s %12s %14s %16s\n", "hazard x", "sys fails",
              "sys share", "MTTI (paper d)", "lost core-hours");

  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 10.0}) {
    sim::SimConfig config = base;
    config.system_hazard_per_node_second *= factor;
    const sim::SimResult trace = sim::simulate(config);
    const core::JointAnalyzer analyzer(trace.job_log, trace.task_log,
                                       trace.ras_log, trace.io_log,
                                       config.machine);
    const auto breakdown = analyzer.exit_breakdown();
    const auto fm = analyzer.interruption_analysis(core::FilterConfig{});

    // Core-hours consumed by jobs that died of system causes: work that
    // has to be re-run from the last checkpoint.
    double lost = 0.0;
    std::uint64_t sys_failures = 0;
    for (const auto& job : trace.job_log.jobs()) {
      if (!joblog::is_system_caused(job.exit_class)) continue;
      ++sys_failures;
      lost += job.core_hours(config.machine);
    }

    std::printf("%-10.2f %10llu %11.2f%% %14.2f %16.3e\n", factor,
                static_cast<unsigned long long>(sys_failures),
                100.0 * breakdown.system_caused_share,
                fm.mtti.mtti_days * config.scale, lost);
  }

  std::printf("\nReading: MTTI scales inversely with the hazard; the system\n"
              "share of failures stays small because user failures dominate\n"
              "(paper: 99.4%% user-caused even on aging hardware).\n");
  return 0;
}
