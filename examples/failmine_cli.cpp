// failmine_cli — command-line driver for the toolkit.
//
// Subcommands:
//   simulate --out DIR [--scale S] [--seed N] [--days D]
//       generate a four-log dataset as CSV files
//   summary  --data DIR [--columnar]
//       dataset totals (E01); --columnar loads the SoA tables and runs
//       the vectorized kernels instead of the row-oriented analyzer
//       (identical output by the columnar parity contract)
//   report   --data DIR [--scale S]
//       machine-checkable takeaway report against the paper's claims
//   mtti     --data DIR [--window SEC] [--radius rack|midplane|board|card]
//       similarity filtering + MTTI
//   fit      --data DIR [--min-sample N]
//       per-exit-class execution-length distribution study (E05)
//   stream   --data DIR [--shards N] [--lateness SEC] [--shuffle SEC]
//            [--seed N] [--policy block|drop] [--queue N] [--interval N]
//            [--serve PORT] [--serve-linger SEC] [--trace-sample N]
//            [--alert-rules PATH] [--predict] [--tsdb[=SECONDS]]
//       replay the dataset through the streaming pipeline in event-time
//       order (optionally with bounded shuffle); prints periodic windowed
//       stats to stderr and the final StreamSnapshot JSON to stdout.
//       --serve exposes live telemetry over HTTP for the duration of the
//       replay (port 0 picks an ephemeral port, announced on stderr):
//       GET /metrics (Prometheus text; ?format=openmetrics adds trace-id
//       exemplars), /snapshot (StreamSnapshot JSON), /healthz (200/503
//       JSON with the firing-alert count), /trace?id=HEX (stage timeline
//       of a sampled record), /alerts (SLO rule states),
//       /flightrecorder (recent log/span ring as JSONL) and /profile
//       (timed CPU capture, ?seconds=N&hz=H&fmt=folded|json).
//       --serve-linger keeps the server up N seconds after the replay
//       finishes so a scraper can collect the final state.
//       --trace-sample N samples 1-in-N records for causal tracing
//       (default 100; 0 disables) and prints the end-of-run
//       critical-path report to stderr. --alert-rules PATH replaces the
//       built-in alert rules (see obs/alerts.hpp for the grammar); the
//       engine evaluates every 500 ms while the replay runs.
//       --predict attaches the online failure-prediction subsystem
//       (src/predict): precursor mining, per-job risk scoring and the
//       adaptive checkpoint policy run inline on the router thread. The
//       final snapshot gains a "predict" section, a summary goes to
//       stderr, and with --serve GET /predict serves the live state.
//       --tsdb[=SECONDS] enables the embedded time-series store
//       (obs/tsdb): a background thread scrapes every metric into
//       compressed in-memory history at the given interval (default 1 s,
//       floor 0.05 s). The alert engine switches to true windowed
//       evaluation against the stored history, --serve gains GET /query
//       (range/instant expressions, see obs/tsdb_query.hpp for the
//       grammar) and GET /series, the final snapshot gains a "tsdb"
//       stats section, and an ASCII sparkline trend report (throughput,
//       queue depth, failure rate, router p99) prints to stderr at exit.
//       --fleet N runs N digital twins in one process, each replaying
//       its own in-process simulation (seed+i, diverging sizes, an
//       elevated failure mix on the last twin). Every pipeline
//       instrument carries a twin="t<i>" label, /query understands
//       `sum by (twin) (rate(stream.records_in{twin=~"*"}[1m]))`,
//       --serve gains GET /fleet (per-twin rollup + merged cross-fleet
//       heavy hitters), and the twin-selector alert rules fire
//       independently per twin. The fleet rollup JSON goes to stdout.
//
// Global loading options (any subcommand reading --data DIR):
//   --ingest-threads N   worker threads for the parallel mmap CSV ingest
//                        engine (0 = hardware concurrency, the default;
//                        1 = the serial line-oriented reader)
//
// Global observability options (any subcommand):
//   --log-level debug|info|warn|error|off   stderr log threshold
//   --metrics-out PATH   write the metrics registry as JSON on exit
//   --trace-out PATH     write a chrome-trace JSON (chrome://tracing,
//                        https://ui.perfetto.dev) on exit
//   --flight-recorder PATH   dump the in-memory flight recorder ring as
//                        JSONL to PATH if the process crashes
//   --profile-out PATH[:HZ]  sample the whole run with the in-process
//                        CPU profiler (default 99 Hz) and write folded
//                        stacks to PATH (flamegraph.pl / speedscope);
//                        the per-span CPU table prints to stderr
//
// Exit status: 0 on success (and, for `report`, only if all claims pass).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "columnar/engine.hpp"
#include "columnar/load.hpp"
#include "core/report.hpp"
#include "obs/alerts.hpp"
#include "predict/operator.hpp"
#include "obs/causal.hpp"
#include "obs/serve.hpp"
#include "obs/session.hpp"
#include "obs/tsdb.hpp"
#include "obs/tsdb_query.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "stream/fleet.hpp"
#include "stream/pipeline.hpp"
#include "util/error.hpp"

namespace {

using namespace failmine;

/// Minimal --key value / --key=value argument parser. A few flags are
/// boolean and take no value (listed in kBooleanFlags); everything else
/// consumes the next argv entry unless it was spelled --key=value.
class ArgMap {
 public:
  ArgMap(int argc, char** argv, int first) {
    static const std::set<std::string> kBooleanFlags = {"columnar", "predict",
                                                        "tsdb"};
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0)
        throw failmine::ParseError("expected --option, got '" + key + "'");
      const std::string name = key.substr(2);
      // --key=value spelling lets a boolean-ish flag carry an optional
      // value (--tsdb vs --tsdb=0.25).
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        values_[name.substr(0, eq)] = name.substr(eq + 1);
        continue;
      }
      if (kBooleanFlags.contains(name)) {
        values_[name] = "1";
        continue;
      }
      if (i + 1 >= argc)
        throw failmine::ParseError("missing value for " + key);
      values_[name] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  long long get_int(const std::string& key, long long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  bool has(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

/// Exit status for bad invocations (no/unknown command, argument errors).
constexpr int kUsageExitCode = 2;

void print_usage() {
  std::fprintf(stderr,
               "usage: failmine_cli <simulate|summary|report|mtti|fit|stream> "
               "[options]\n"
               "  simulate --out DIR [--scale S] [--seed N] [--days D]\n"
               "  summary  --data DIR [--columnar]\n"
               "  report   --data DIR [--scale S] [--format text|json]\n"
               "  mtti     --data DIR [--window SEC] [--radius LEVEL]\n"
               "  fit      --data DIR [--min-sample N]\n"
               "  stream   --data DIR [--shards N] [--lateness SEC] "
               "[--shuffle SEC]\n"
               "           [--seed N] [--policy block|drop] [--queue N] "
               "[--interval N]\n"
               "           [--serve PORT] [--serve-linger SEC] "
               "[--trace-sample N]\n"
               "           [--alert-rules PATH] [--predict] "
               "[--tsdb[=SECONDS]]\n"
               "  stream   --fleet N [--scale S] [--seed N] [...stream "
               "options]\n"
               "           N in-process twins with twin=\"t<i>\"-labeled "
               "metrics\n"
               "           (simulates per-twin data; --data not needed)\n"
               "global: [--ingest-threads N] [--log-level LEVEL] "
               "[--metrics-out PATH]\n"
               "        [--trace-out PATH] [--flight-recorder PATH] "
               "[--profile-out PATH[:HZ]]\n");
}

ingest::LoadOptions load_options(const ArgMap& args) {
  ingest::LoadOptions options;
  options.threads =
      static_cast<unsigned>(std::max(0LL, args.get_int("ingest-threads", 0)));
  return options;
}

std::string data_dir(const ArgMap& args) {
  const std::string dir = args.get("data", "");
  if (dir.empty()) throw failmine::ParseError("--data DIR is required");
  return dir;
}

sim::SimResult load(const ArgMap& args) {
  return sim::load_dataset(data_dir(args), topology::MachineConfig::mira(),
                           load_options(args));
}

core::JointAnalyzer make_analyzer(const sim::SimResult& data) {
  return core::JointAnalyzer(data.job_log, data.task_log, data.ras_log,
                             data.io_log, topology::MachineConfig::mira());
}

int cmd_simulate(const ArgMap& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) throw failmine::ParseError("--out DIR is required");
  sim::SimConfig config;
  config.scale = args.get_double("scale", 0.05);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20130409));
  config.observation_days =
      static_cast<int>(args.get_int("days", config.observation_days));
  std::printf("simulating %d days at scale %.3g (seed %llu)...\n",
              config.observation_days, config.scale,
              static_cast<unsigned long long>(config.seed));
  const auto trace = sim::simulate(config);
  std::filesystem::create_directories(out);
  sim::write_dataset(trace, out);
  std::printf("wrote %zu jobs, %zu tasks, %zu RAS events, %zu I/O records "
              "to %s/\n",
              trace.job_log.size(), trace.task_log.size(),
              trace.ras_log.size(), trace.io_log.size(), out.c_str());
  return 0;
}

int cmd_summary(const ArgMap& args) {
  // --columnar parses straight into the SoA tables and answers E01
  // through the columnar QueryEngine; the printed lines are identical
  // to the row path by the kernel parity contract (columnar/analyses).
  core::DatasetSummary s;
  if (args.has("columnar")) {
    const auto machine = topology::MachineConfig::mira();
    const auto dataset =
        columnar::load_dataset(data_dir(args), machine, load_options(args));
    s = columnar::QueryEngine(dataset, machine).dataset_summary();
  } else {
    const auto data = load(args);
    s = make_analyzer(data).dataset_summary();
  }
  std::printf("span            %.1f days\n", s.span_days);
  std::printf("jobs            %llu\n", static_cast<unsigned long long>(s.jobs));
  std::printf("tasks           %llu\n", static_cast<unsigned long long>(s.tasks));
  std::printf("RAS events      %llu (INFO %llu / WARN %llu / FATAL %llu)\n",
              static_cast<unsigned long long>(s.ras_events),
              static_cast<unsigned long long>(s.ras_by_severity[0]),
              static_cast<unsigned long long>(s.ras_by_severity[1]),
              static_cast<unsigned long long>(s.ras_by_severity[2]));
  std::printf("I/O records     %llu\n",
              static_cast<unsigned long long>(s.io_records));
  std::printf("core-hours      %.4e\n", s.total_core_hours);
  return 0;
}

int cmd_report(const ArgMap& args) {
  const auto data = load(args);
  const auto analyzer = make_analyzer(data);
  core::ReportConfig rc;
  rc.trace_scale = args.get_double("scale", 1.0);
  const auto takeaways = core::evaluate_takeaways(analyzer, rc);
  if (args.get("format", "text") == "json")
    std::fputs(core::format_report_json(takeaways).c_str(), stdout);
  else
    std::fputs(core::format_report(takeaways).c_str(), stdout);
  return core::all_pass(takeaways) ? 0 : 1;
}

topology::Level parse_radius(const std::string& name) {
  if (name == "rack") return topology::Level::kRack;
  if (name == "midplane") return topology::Level::kMidplane;
  if (name == "board") return topology::Level::kNodeBoard;
  if (name == "card") return topology::Level::kComputeCard;
  throw failmine::ParseError("unknown radius '" + name +
                             "' (rack|midplane|board|card)");
}

int cmd_mtti(const ArgMap& args) {
  const auto data = load(args);
  const auto analyzer = make_analyzer(data);
  core::FilterConfig config;
  config.window_seconds = args.get_int("window", config.window_seconds);
  config.spatial_level = parse_radius(args.get("radius", "midplane"));
  const auto r = analyzer.interruption_analysis(config);
  std::printf("raw FATALs       %llu\n",
              static_cast<unsigned long long>(r.filter.input_events));
  std::printf("interruptions    %zu (%.1fx reduction)\n",
              r.filter.clusters.size(), r.filter.reduction_factor());
  std::printf("MTTI             %.3f days\n", r.mtti.mtti_days);
  if (!r.mtti.intervals_days.empty())
    std::printf("interval median  %.3f days\n", r.mtti.median_interval_days);
  return 0;
}

int cmd_fit(const ArgMap& args) {
  const auto data = load(args);
  const auto analyzer = make_analyzer(data);
  const auto min_sample =
      static_cast<std::size_t>(args.get_int("min-sample", 40));
  const auto rows = analyzer.runtime_distribution_study(min_sample);
  if (rows.empty()) {
    std::printf("no failure class reaches %zu samples\n", min_sample);
    return 1;
  }
  for (const auto& row : rows) {
    const auto& best = row.fits[row.best_by_ks];
    std::printf("%-20s n=%-7zu best=%s (D=%.4f",
                joblog::exit_class_name(row.exit_class).c_str(),
                row.sample_size, distfit::family_name(best.family).c_str(),
                best.ks.statistic);
    for (const auto& p : best.dist->params())
      std::printf(", %s=%.4g", p.name.c_str(), p.value);
    std::printf(")\n");
  }
  return 0;
}

stream::BackpressurePolicy parse_policy(const std::string& name) {
  if (name == "block") return stream::BackpressurePolicy::kBlock;
  if (name == "drop") return stream::BackpressurePolicy::kDropNewest;
  throw failmine::ParseError("unknown policy '" + name + "' (block|drop)");
}

/// Shared by the single-pipeline and fleet stream modes: the pipeline
/// knobs every twin inherits.
stream::StreamConfig stream_config_from(const ArgMap& args,
                                        long long shuffle) {
  stream::StreamConfig config;
  config.machine = topology::MachineConfig::mira();
  config.shard_count =
      static_cast<std::size_t>(args.get_int("shards", config.shard_count));
  // Twice the shuffle skew restores exact event-time order (see
  // sim/replay.hpp).
  config.max_lateness_seconds = args.get_int("lateness", 2 * shuffle);
  config.policy = parse_policy(args.get("policy", "block"));
  config.queue_capacity = static_cast<std::size_t>(
      args.get_int("queue", static_cast<long long>(config.queue_capacity)));
  config.trace_sample_period = static_cast<std::uint32_t>(std::max(
      0LL, (long long)args.get_int("trace-sample",
                                   config.trace_sample_period)));
  return config;
}

/// stream --fleet=N: N digital twins in one process, each replaying its
/// own in-process simulation (seed+i, sizes diverging with i, and an
/// elevated user-failure mix on the last twin so per-twin failure rates
/// visibly diverge). Every twin's instruments carry twin="t<i>" labels,
/// so /metrics, /query (`sum by (twin) (...)`), /fleet and the
/// per-label-group alert rules all separate the twins; the final
/// fleet_json() rollup goes to stdout.
int cmd_stream_fleet(const ArgMap& args) {
  const std::size_t twin_count = static_cast<std::size_t>(
      std::max(1LL, (long long)args.get_int("fleet", 2)));
  const long long shuffle = args.get_int("shuffle", 0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20130409));
  const double scale = args.get_double("scale", 0.01);

  // Per-twin divergent workloads, simulated in process (--data is not
  // required in fleet mode).
  std::vector<std::vector<stream::StreamRecord>> replays(twin_count);
  for (std::size_t i = 0; i < twin_count; ++i) {
    sim::SimConfig sc = sim::SimConfig::test_scale();
    sc.scale = scale * (1.0 + 0.2 * static_cast<double>(i));
    sc.seed = seed + i;
    if (twin_count > 1 && i + 1 == twin_count)
      sc.user_failure_probability *= 1.5;  // the divergence-demo twin
    const auto trace = sim::simulate(sc);
    replays[i] = shuffle > 0
                     ? sim::shuffled_replay(trace, shuffle, seed + i)
                     : sim::build_replay(trace);
    std::fprintf(stderr, "[fleet] twin t%zu: %zu records (seed %llu)\n", i,
                 replays[i].size(),
                 static_cast<unsigned long long>(sc.seed));
  }

  stream::FleetConfig fleet_config;
  fleet_config.twin_count = twin_count;
  fleet_config.base = stream_config_from(args, shuffle);
  stream::StreamFleet fleet(fleet_config);

  const bool tsdb_enabled = args.has("tsdb");
  if (tsdb_enabled) {
    const double seconds = std::max(0.05, args.get_double("tsdb", 1.0));
    obs::tsdb().start(static_cast<std::int64_t>(seconds * 1000.0));
    obs::alerts().set_history(&obs::tsdb());
  }

  // Fleet alert rules: twin-selector spellings of the built-in SLOs, so
  // each rule expands to one independent state machine per twin.
  const std::string rules_path = args.get("alert-rules", "");
  obs::alerts().set_rules(
      rules_path.empty()
          ? obs::parse_alert_rules(
                "stream-drops: rate(stream.records_dropped{twin=~\"*\"}) > 0\n"
                "stream-shard-stalled: "
                "value(stream.stalled_shards{twin=~\"*\"}) > 0\n")
          : obs::load_alert_rules_file(rules_path));
  obs::alerts().start(/*poll_ms=*/500);

  std::unique_ptr<obs::TelemetryServer> server;
  if (args.has("serve")) {
    obs::ServeConfig serve_config;
    serve_config.port = static_cast<std::uint16_t>(args.get_int("serve", 0));
    server = std::make_unique<obs::TelemetryServer>(serve_config);
    server->set_fleet_handler([&fleet] { return fleet.fleet_json(); });
    server->set_snapshot_handler(
        [&fleet] { return fleet.twin(0).snapshot().to_json(); });
    server->set_health_handler([&fleet] { return fleet.healthy(); });
    server->start();
    std::fprintf(stderr, "[fleet] serving telemetry on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server->port()));
  }

  // Round-robin feeding keeps every twin live at once — the whole point
  // of fleet mode — instead of replaying twins back to back.
  std::vector<std::size_t> pos(twin_count, 0);
  std::vector<stream::StreamRecord> chunk;
  for (bool any = true; any;) {
    any = false;
    for (std::size_t i = 0; i < twin_count; ++i) {
      auto& replay = replays[i];
      if (pos[i] >= replay.size()) continue;
      any = true;
      const std::size_t n =
          std::min<std::size_t>(1024, replay.size() - pos[i]);
      chunk.assign(std::make_move_iterator(replay.begin() + pos[i]),
                   std::make_move_iterator(replay.begin() + pos[i] + n));
      fleet.twin(i).push_batch(std::move(chunk));
      pos[i] += n;
    }
  }
  fleet.finish();

  if (tsdb_enabled) obs::tsdb().stop();
  std::fputs(fleet.fleet_json().c_str(), stdout);
  for (std::size_t i = 0; i < twin_count; ++i) {
    const auto s = fleet.twin(i).snapshot();
    std::fprintf(stderr,
                 "[fleet] t%zu: in=%llu processed=%llu window rate=%.3f "
                 "interruptions=%llu\n",
                 i, static_cast<unsigned long long>(s.records_in),
                 static_cast<unsigned long long>(s.records_processed),
                 s.window_failure_rate,
                 static_cast<unsigned long long>(s.interruptions));
  }
  if (tsdb_enabled)
    std::fputs(
        obs::tsdb_trend_report(
            obs::tsdb(),
            {"sum(rate(stream.records_in{twin=~\"*\"}[10s]))",
             "sum by (twin) (rate(stream.records_processed{twin=~\"*\"}[10s]))",
             "sum by (twin) (value(stream.window.failure_rate{twin=~\"*\"}))"})
            .c_str(),
        stderr);
  if (server != nullptr) {
    const long long linger = args.get_int("serve-linger", 0);
    if (linger > 0) std::this_thread::sleep_for(std::chrono::seconds(linger));
    server->stop();
  }
  obs::alerts().stop();
  return 0;
}

int cmd_stream(const ArgMap& args) {
  if (args.has("fleet")) return cmd_stream_fleet(args);
  const auto data = load(args);
  const long long shuffle = args.get_int("shuffle", 0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20130409));
  auto records = shuffle > 0 ? sim::shuffled_replay(data, shuffle, seed)
                             : sim::build_replay(data);

  stream::StreamConfig config = stream_config_from(args, shuffle);

  // --predict attaches the failure-prediction subsystem as a router
  // operator: precursor mining, per-job risk scoring and the adaptive
  // checkpoint policy all run inline with the replay (predict/README in
  // DESIGN.md). Its live state is the "predict" snapshot section and,
  // with --serve, GET /predict.
  std::shared_ptr<predict::PredictOperator> predict_op;
  if (args.has("predict")) {
    predict::PredictConfig pc;
    pc.machine = config.machine;
    pc.filter = config.filter;
    predict_op = std::make_shared<predict::PredictOperator>(pc);
    config.router_operator = predict_op;
  }

  stream::StreamPipeline pipeline(config);

  // --tsdb[=SECONDS] attaches the embedded time-series store: a
  // background thread scrapes every registry instrument into compressed
  // in-memory chunks (obs/tsdb.hpp), which backs --serve's /query and
  // /series endpoints, windowed alert evaluation, and the end-of-run
  // trend report. Started before the alert engine so rules evaluate
  // against history from their first poll.
  const bool tsdb_enabled = args.has("tsdb");
  if (tsdb_enabled) {
    const double seconds = std::max(0.05, args.get_double("tsdb", 1.0));
    obs::tsdb().start(static_cast<std::int64_t>(seconds * 1000.0));
    obs::alerts().set_history(&obs::tsdb());
  }

  // SLO/alert engine: built-in rules unless --alert-rules overrides
  // them. Runs for the duration of the replay (plus any --serve-linger,
  // so a scraper can read final /alerts state).
  const std::string rules_path = args.get("alert-rules", "");
  obs::alerts().set_rules(rules_path.empty()
                              ? obs::default_alert_rules()
                              : obs::load_alert_rules_file(rules_path));
  obs::alerts().start(/*poll_ms=*/500);

  // --serve exposes live telemetry while the replay runs. Port 0 asks
  // the kernel for an ephemeral port; either way the bound port goes to
  // stderr so scrapers (and the e2e test) can find it.
  std::unique_ptr<obs::TelemetryServer> server;
  if (args.has("serve")) {
    obs::ServeConfig serve_config;
    serve_config.port = static_cast<std::uint16_t>(args.get_int("serve", 0));
    server = std::make_unique<obs::TelemetryServer>(serve_config);
    server->set_snapshot_handler(
        [&pipeline] { return pipeline.snapshot().to_json(); });
    if (predict_op != nullptr)
      server->set_predict_handler(
          [&pipeline] { return pipeline.operator_snapshot_json() + "\n"; });
    server->set_health_handler([&pipeline] { return pipeline.healthy(); });
    server->start();
    std::fprintf(stderr, "[stream] serving telemetry on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server->port()));
  }

  const auto interval =
      static_cast<std::size_t>(args.get_int("interval", 100000));
  std::size_t next_report = interval;
  std::vector<stream::StreamRecord> chunk;
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
    chunk.assign(std::make_move_iterator(records.begin() + i),
                 std::make_move_iterator(records.begin() + i + n));
    pipeline.push_batch(std::move(chunk));
    i += n;
    if (interval > 0 && i >= next_report) {
      next_report += interval;
      const auto s = pipeline.snapshot();
      std::fprintf(stderr,
                   "[stream] in=%llu watermark=%lld window(%llds): jobs=%llu "
                   "failures=%llu rate=%.3f fatal=%llu interruptions=%llu\n",
                   static_cast<unsigned long long>(s.records_in),
                   static_cast<long long>(s.watermark),
                   static_cast<long long>(s.window_seconds),
                   static_cast<unsigned long long>(s.window_jobs),
                   static_cast<unsigned long long>(s.window_failures),
                   s.window_failure_rate,
                   static_cast<unsigned long long>(s.window_severity[2]),
                   static_cast<unsigned long long>(s.interruptions));
    }
  }
  pipeline.finish();
  auto snap = pipeline.snapshot();
  if (tsdb_enabled) {
    // stop() takes a final scrape, so the stored history covers the
    // exact end-of-replay counter state; /query keeps serving the
    // stored data through any --serve-linger window.
    obs::tsdb().stop();
    snap.sections.emplace_back("tsdb", obs::tsdb().stats_json());
  }
  std::fputs(snap.to_json().c_str(), stdout);
  if (tsdb_enabled)
    std::fputs(obs::tsdb_trend_report(
                   obs::tsdb(),
                   {"rate(stream.records_in[10s])",
                    "rate(stream.records_processed[10s])",
                    "value(stream.queue_depth)",
                    "value(stream.window.failure_rate)",
                    "p99(stream.router.batch_us[30s])"})
                   .c_str(),
               stderr);
  if (predict_op != nullptr) {
    // Safe to read directly: finish() has run, the router thread has
    // joined, and the operator is quiescent.
    const auto ps = predict_op->snapshot();
    std::fprintf(stderr,
                 "[predict] records=%llu warns=%llu interruptions=%llu "
                 "alerts=%llu jobs=%llu\n",
                 static_cast<unsigned long long>(ps.records),
                 static_cast<unsigned long long>(ps.warns),
                 static_cast<unsigned long long>(ps.interruptions),
                 static_cast<unsigned long long>(ps.alerts),
                 static_cast<unsigned long long>(ps.jobs_scored));
    std::fprintf(stderr,
                 "[predict] alert precision=%.3f recall=%.3f  risk "
                 "precision=%.3f recall=%.3f\n",
                 ps.alert_precision, ps.alert_recall, ps.risk_precision,
                 ps.risk_recall);
    std::fprintf(stderr,
                 "[predict] policy saved vs static: %.1f core-hours "
                 "(vs none: %.1f)\n",
                 ps.saved_vs_static_core_hours, ps.saved_vs_none_core_hours);
  }
  if (obs::causal_tracer().enabled())
    std::fputs(obs::causal_tracer().critical_path_text().c_str(), stderr);
  if (server != nullptr) {
    const long long linger = args.get_int("serve-linger", 0);
    if (linger > 0) std::this_thread::sleep_for(std::chrono::seconds(linger));
    server->stop();
  }
  obs::alerts().stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return kUsageExitCode;
  }
  const std::string command = argv[1];
  try {
    // Strips the global observability flags. The explicit flush() after
    // the subcommand lets an export failure surface as a nonzero exit
    // (the destructor can only print it).
    failmine::obs::ObsSession obs_session(&argc, argv);
    const ArgMap args(argc, argv, 2);
    int rc = -1;
    if (command == "simulate") rc = cmd_simulate(args);
    else if (command == "summary") rc = cmd_summary(args);
    else if (command == "report") rc = cmd_report(args);
    else if (command == "mtti") rc = cmd_mtti(args);
    else if (command == "fit") rc = cmd_fit(args);
    else if (command == "stream") rc = cmd_stream(args);
    else {
      std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
      print_usage();
      return kUsageExitCode;
    }
    obs_session.flush();
    return rc;
  } catch (const failmine::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kUsageExitCode;
  }
}
