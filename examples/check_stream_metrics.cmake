# Validates the metrics export written by the example_cli_stream smoke
# test: the streaming pipeline must have accounted for every record
# (stream.records_in > 0) without loss (stream.records_dropped == 0),
# and published its gauges and latency histograms. The expected
# instrument names come from expected_metrics.cmake. Invoked as:
#   cmake -DMETRICS=... -P check_stream_metrics.cmake
# or, for the fleet-mode smoke test (stream --fleet N), as:
#   cmake -DMETRICS=... -DFLEET=N -P check_stream_metrics.cmake
# where every pipeline instrument must instead appear once per twin
# under its twin="t<i>" label and never under the bare family name.

include("${CMAKE_CURRENT_LIST_DIR}/expected_metrics.cmake")

failmine_read_export(metrics_json "${METRICS}")

if(FLEET)
  # Fleet replay: per-twin label-disambiguated accounting. Each twin
  # must have streamed records under its own label without loss...
  math(EXPR fleet_last "${FLEET} - 1")
  foreach(i RANGE ${fleet_last})
    failmine_fleet_metric_name(in_name "${FAILMINE_STREAM_IN_COUNTER}" "t${i}")
    failmine_labeled_metric_value(twin_in "${metrics_json}" "${in_name}")
    if(twin_in EQUAL 0)
      message(FATAL_ERROR "${in_name} is 0 — twin t${i} streamed nothing")
    endif()
    failmine_fleet_metric_name(dropped_name
                               "${FAILMINE_STREAM_DROPPED_COUNTER}" "t${i}")
    failmine_labeled_metric_value(twin_dropped "${metrics_json}"
                                  "${dropped_name}")
    if(NOT twin_dropped EQUAL 0)
      message(FATAL_ERROR "${dropped_name}=${twin_dropped} under the "
                          "blocking policy")
    endif()
    foreach(family ${FAILMINE_STREAM_REQUIRED_GAUGES}
                   ${FAILMINE_STREAM_REQUIRED_HISTOGRAMS}
                   stream.window.failure_rate)
      failmine_fleet_metric_name(name "${family}" "t${i}")
      failmine_require_substring("${metrics_json}" "${name}")
    endforeach()
  endforeach()
  # ...and the bare family spellings must be absent: the twin label is
  # the isolation mechanism, not decoration on top of shared counters.
  foreach(family ${FAILMINE_STREAM_IN_COUNTER}
                 ${FAILMINE_STREAM_DROPPED_COUNTER}
                 ${FAILMINE_STREAM_REQUIRED_GAUGES})
    string(REPLACE "." "\\." pattern "${family}")
    if(metrics_json MATCHES "\"${pattern}\":")
      message(FATAL_ERROR "fleet export has bare ${family} — twin labels "
                          "are not isolating the pipelines")
    endif()
  endforeach()

  # The fleet replay runs with --serve (including the pre-registered
  # /fleet route counter), --tsdb and the built-in per-twin alert rules.
  failmine_require_metrics("${metrics_json}"
    ${FAILMINE_SERVE_REQUIRED_COUNTERS}
    ${FAILMINE_SERVE_REQUIRED_HISTOGRAMS}
    ${FAILMINE_ALERTS_REQUIRED_METRICS}
    ${FAILMINE_PROCESS_REQUIRED_GAUGES}
    ${FAILMINE_TSDB_REQUIRED_METRICS})
  failmine_require_substring("${metrics_json}"
    "${FAILMINE_SERVE_FLEET_REQUESTS_NAME}")
  failmine_metric_value(tsdb_samples "${metrics_json}"
                        "${FAILMINE_TSDB_SAMPLES_COUNTER}")
  if(tsdb_samples EQUAL 0)
    message(FATAL_ERROR "${FAILMINE_TSDB_SAMPLES_COUNTER} is 0 — the "
                        "scraper never stored a sample")
  endif()
  message(STATUS "fleet metrics OK: ${FLEET} twins isolated, no drops")
  return()
endif()

failmine_metric_value(records_in "${metrics_json}"
                      "${FAILMINE_STREAM_IN_COUNTER}")
if(records_in EQUAL 0)
  message(FATAL_ERROR "${FAILMINE_STREAM_IN_COUNTER} is 0 — nothing was "
                      "streamed")
endif()

failmine_metric_value(dropped "${metrics_json}"
                      "${FAILMINE_STREAM_DROPPED_COUNTER}")
if(NOT dropped EQUAL 0)
  message(FATAL_ERROR "${FAILMINE_STREAM_DROPPED_COUNTER}=${dropped} under "
                      "the blocking policy")
endif()

failmine_require_metrics("${metrics_json}"
  ${FAILMINE_STREAM_REQUIRED_GAUGES}
  ${FAILMINE_STREAM_REQUIRED_HISTOGRAMS})

# The replay runs with --serve, so the server's pre-registered
# self-metrics (request counters, latency histogram, profiler counters
# and the per-path label family) must all be in the export too.
failmine_require_metrics("${metrics_json}"
  ${FAILMINE_SERVE_REQUIRED_COUNTERS}
  ${FAILMINE_SERVE_REQUIRED_HISTOGRAMS})
failmine_require_metric_prefix("${metrics_json}"
  "${FAILMINE_SERVE_LABELED_REQUESTS_PREFIX}")

# The replay runs with --predict, so the prediction subsystem's
# instruments must be present and the operator must have observed every
# routed record.
failmine_require_metrics("${metrics_json}"
  ${FAILMINE_PREDICT_REQUIRED_COUNTERS}
  ${FAILMINE_PREDICT_REQUIRED_HISTOGRAMS})
failmine_metric_value(predict_records "${metrics_json}"
                      "${FAILMINE_PREDICT_RECORDS_COUNTER}")
if(predict_records EQUAL 0)
  message(FATAL_ERROR "${FAILMINE_PREDICT_RECORDS_COUNTER} is 0 — the "
                      "predictor never observed a record")
endif()

# The replay runs with --tsdb, so the store's self-metrics must be in
# the export with at least one stored sample, and the /query + /series
# per-endpoint request counters must have been pre-registered.
failmine_require_metrics("${metrics_json}" ${FAILMINE_TSDB_REQUIRED_METRICS})
failmine_metric_value(tsdb_samples "${metrics_json}"
                      "${FAILMINE_TSDB_SAMPLES_COUNTER}")
if(tsdb_samples EQUAL 0)
  message(FATAL_ERROR "${FAILMINE_TSDB_SAMPLES_COUNTER} is 0 — the scraper "
                      "never stored a sample")
endif()
failmine_require_substring("${metrics_json}"
  "${FAILMINE_SERVE_QUERY_REQUESTS_NAME}")
failmine_require_substring("${metrics_json}"
  "${FAILMINE_SERVE_SERIES_REQUESTS_NAME}")

# Causal tracing is on by default and the alert engine runs the built-in
# rules, so their instruments (and the process gauges every export
# refreshes) must be present too. The sampled counter must be non-zero:
# the replay is far longer than the sampling period.
failmine_require_metrics("${metrics_json}"
  ${FAILMINE_CAUSAL_REQUIRED_HISTOGRAMS}
  ${FAILMINE_ALERTS_REQUIRED_METRICS}
  ${FAILMINE_PROCESS_REQUIRED_GAUGES})
failmine_metric_value(traces_sampled "${metrics_json}"
                      "${FAILMINE_CAUSAL_SAMPLED_COUNTER}")
if(traces_sampled EQUAL 0)
  message(FATAL_ERROR "${FAILMINE_CAUSAL_SAMPLED_COUNTER} is 0 — causal "
                      "sampling never fired over the replay")
endif()

message(STATUS "stream metrics OK: records_in=${records_in}, no drops")
