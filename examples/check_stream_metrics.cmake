# Validates the metrics export written by the example_cli_stream smoke
# test: the streaming pipeline must have accounted for every record
# (stream.records_in > 0) without loss (stream.records_dropped == 0),
# and published its gauges. Invoked as:
#   cmake -DMETRICS=... -P check_stream_metrics.cmake

if(NOT DEFINED METRICS OR NOT EXISTS "${METRICS}")
  message(FATAL_ERROR "METRICS export missing: ${METRICS}")
endif()

file(READ "${METRICS}" metrics_json)

if(NOT metrics_json MATCHES "\"stream\\.records_in\":([0-9]+)")
  message(FATAL_ERROR "metrics export lacks stream.records_in: ${METRICS}")
endif()
set(records_in "${CMAKE_MATCH_1}")
if(records_in EQUAL 0)
  message(FATAL_ERROR "stream.records_in is 0 — nothing was streamed")
endif()

if(NOT metrics_json MATCHES "\"stream\\.records_dropped\":([0-9]+)")
  message(FATAL_ERROR "metrics export lacks stream.records_dropped: ${METRICS}")
endif()
if(NOT CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR
    "stream.records_dropped=${CMAKE_MATCH_1} under the blocking policy")
endif()

foreach(gauge "stream\\.queue_depth" "stream\\.watermark_lag_s")
  if(NOT metrics_json MATCHES "\"${gauge}\":")
    message(FATAL_ERROR "metrics export lacks the ${gauge} gauge: ${METRICS}")
  endif()
endforeach()

message(STATUS "stream metrics OK: records_in=${records_in}, no drops")
