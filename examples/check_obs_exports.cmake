# Validates the --metrics-out / --trace-out files written by the
# example_cli_summary smoke test: both must exist and carry the expected
# structure (a populated parse.lines_total counter; chrome traceEvents).
# The expected instrument names come from expected_metrics.cmake.
# Invoked as:
#   cmake -DMETRICS=... -DTRACE=... [-DCOLUMNAR=1] -P check_obs_exports.cmake
# With -DCOLUMNAR=1 the run under test loaded through the SoA tables, so
# the columnar build counters/spans replace the row-container spans.

include("${CMAKE_CURRENT_LIST_DIR}/expected_metrics.cmake")

failmine_read_export(metrics_json "${METRICS}")
failmine_read_export(trace_json "${TRACE}")

failmine_metric_value(lines_total "${metrics_json}"
                      "${FAILMINE_PARSE_LINES_COUNTER}")
if(lines_total EQUAL 0)
  message(FATAL_ERROR "${FAILMINE_PARSE_LINES_COUNTER} is 0 — nothing was "
                      "parsed")
endif()
if(NOT metrics_json MATCHES "\"counters\"")
  message(FATAL_ERROR "metrics export lacks a counters section")
endif()
# The default load path is the parallel mmap ingest engine, so its
# instruments must be present and bytes_mapped populated.
failmine_require_metrics("${metrics_json}" ${FAILMINE_INGEST_REQUIRED_COUNTERS})
failmine_metric_value(bytes_mapped "${metrics_json}" "ingest.bytes_mapped")
if(bytes_mapped EQUAL 0)
  message(FATAL_ERROR "ingest.bytes_mapped is 0 — the ingest engine never ran")
endif()

if(COLUMNAR)
  # The SoA path must have merged the chunk builders (columnar.* build
  # counters, rows populated) and answered E01 with the columnar kernel.
  failmine_require_metrics("${metrics_json}"
                           ${FAILMINE_COLUMNAR_REQUIRED_COUNTERS})
  failmine_metric_value(columnar_rows "${metrics_json}"
                        "${FAILMINE_COLUMNAR_ROWS_COUNTER}")
  if(columnar_rows EQUAL 0)
    message(FATAL_ERROR "${FAILMINE_COLUMNAR_ROWS_COUNTER} is 0 — the "
                        "columnar builder never ran")
  endif()
  set(required_spans "columnar.build" "columnar.e01.dataset_summary")
else()
  set(required_spans "joblog.read_csv" "e01.dataset_summary")
endif()

if(NOT trace_json MATCHES "\"traceEvents\":\\[{")
  message(FATAL_ERROR "trace export has no spans: ${TRACE}")
endif()
foreach(span ${required_spans})
  string(REPLACE "." "\\." span_pattern "${span}")
  if(NOT trace_json MATCHES "\"name\":\"${span_pattern}\"")
    message(FATAL_ERROR "trace export lacks the ${span} span")
  endif()
endforeach()

message(STATUS "obs exports OK: parse.lines_total=${lines_total}")
