# Validates the --metrics-out / --trace-out files written by the
# example_cli_summary smoke test: both must exist and carry the expected
# structure (a populated parse.lines_total counter; chrome traceEvents).
# Invoked as:
#   cmake -DMETRICS=... -DTRACE=... -P check_obs_exports.cmake

foreach(var METRICS TRACE)
  if(NOT DEFINED ${var} OR NOT EXISTS "${${var}}")
    message(FATAL_ERROR "${var} export missing: ${${var}}")
  endif()
endforeach()

file(READ "${METRICS}" metrics_json)
if(NOT metrics_json MATCHES "\"parse\\.lines_total\":([0-9]+)")
  message(FATAL_ERROR "metrics export lacks parse.lines_total: ${METRICS}")
endif()
set(lines_total "${CMAKE_MATCH_1}")
if(lines_total EQUAL 0)
  message(FATAL_ERROR "parse.lines_total is 0 — nothing was parsed")
endif()
if(NOT metrics_json MATCHES "\"counters\"")
  message(FATAL_ERROR "metrics export lacks a counters section")
endif()

file(READ "${TRACE}" trace_json)
if(NOT trace_json MATCHES "\"traceEvents\":\\[{")
  message(FATAL_ERROR "trace export has no spans: ${TRACE}")
endif()
foreach(span "joblog.read_csv" "e01.dataset_summary")
  if(NOT trace_json MATCHES "\"name\":\"${span}\"")
    message(FATAL_ERROR "trace export lacks the ${span} span")
  endif()
endforeach()

message(STATUS "obs exports OK: parse.lines_total=${lines_total}")
