#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "failmine::failmine_util" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_util.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_util )
list(APPEND _cmake_import_check_files_for_failmine::failmine_util "${_IMPORT_PREFIX}/lib/libfailmine_util.a" )

# Import target "failmine::failmine_stats" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_stats.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_stats )
list(APPEND _cmake_import_check_files_for_failmine::failmine_stats "${_IMPORT_PREFIX}/lib/libfailmine_stats.a" )

# Import target "failmine::failmine_distfit" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_distfit APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_distfit PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_distfit.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_distfit )
list(APPEND _cmake_import_check_files_for_failmine::failmine_distfit "${_IMPORT_PREFIX}/lib/libfailmine_distfit.a" )

# Import target "failmine::failmine_topology" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_topology APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_topology PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_topology.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_topology )
list(APPEND _cmake_import_check_files_for_failmine::failmine_topology "${_IMPORT_PREFIX}/lib/libfailmine_topology.a" )

# Import target "failmine::failmine_raslog" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_raslog APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_raslog PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_raslog.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_raslog )
list(APPEND _cmake_import_check_files_for_failmine::failmine_raslog "${_IMPORT_PREFIX}/lib/libfailmine_raslog.a" )

# Import target "failmine::failmine_joblog" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_joblog APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_joblog PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_joblog.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_joblog )
list(APPEND _cmake_import_check_files_for_failmine::failmine_joblog "${_IMPORT_PREFIX}/lib/libfailmine_joblog.a" )

# Import target "failmine::failmine_tasklog" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_tasklog APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_tasklog PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_tasklog.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_tasklog )
list(APPEND _cmake_import_check_files_for_failmine::failmine_tasklog "${_IMPORT_PREFIX}/lib/libfailmine_tasklog.a" )

# Import target "failmine::failmine_iolog" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_iolog APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_iolog PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_iolog.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_iolog )
list(APPEND _cmake_import_check_files_for_failmine::failmine_iolog "${_IMPORT_PREFIX}/lib/libfailmine_iolog.a" )

# Import target "failmine::failmine_sim" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_sim.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_sim )
list(APPEND _cmake_import_check_files_for_failmine::failmine_sim "${_IMPORT_PREFIX}/lib/libfailmine_sim.a" )

# Import target "failmine::failmine_analysis" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_analysis APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_analysis PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_analysis.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_analysis )
list(APPEND _cmake_import_check_files_for_failmine::failmine_analysis "${_IMPORT_PREFIX}/lib/libfailmine_analysis.a" )

# Import target "failmine::failmine_core" for configuration "RelWithDebInfo"
set_property(TARGET failmine::failmine_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(failmine::failmine_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libfailmine_core.a"
  )

list(APPEND _cmake_import_check_targets failmine::failmine_core )
list(APPEND _cmake_import_check_files_for_failmine::failmine_core "${_IMPORT_PREFIX}/lib/libfailmine_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
