# Empty compiler generated dependencies file for failmine_cli.
# This may be replaced when dependencies are built.
