file(REMOVE_RECURSE
  "CMakeFiles/failmine_cli.dir/failmine_cli.cpp.o"
  "CMakeFiles/failmine_cli.dir/failmine_cli.cpp.o.d"
  "failmine_cli"
  "failmine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
