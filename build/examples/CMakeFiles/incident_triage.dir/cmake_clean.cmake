file(REMOVE_RECURSE
  "CMakeFiles/incident_triage.dir/incident_triage.cpp.o"
  "CMakeFiles/incident_triage.dir/incident_triage.cpp.o.d"
  "incident_triage"
  "incident_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
