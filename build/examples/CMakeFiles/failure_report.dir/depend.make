# Empty dependencies file for failure_report.
# This may be replaced when dependencies are built.
