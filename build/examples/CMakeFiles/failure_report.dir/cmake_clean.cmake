file(REMOVE_RECURSE
  "CMakeFiles/failure_report.dir/failure_report.cpp.o"
  "CMakeFiles/failure_report.dir/failure_report.cpp.o.d"
  "failure_report"
  "failure_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
