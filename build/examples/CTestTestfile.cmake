# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "0.003")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_incident_triage "/root/repo/build/examples/incident_triage" "3" "0.01")
set_tests_properties(example_incident_triage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning" "0.003")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_simulate "/root/repo/build/examples/failmine_cli" "simulate" "--out" "/root/repo/build/examples/smoke_ds" "--scale" "0.003")
set_tests_properties(example_cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_summary "/root/repo/build/examples/failmine_cli" "summary" "--data" "/root/repo/build/examples/smoke_ds")
set_tests_properties(example_cli_summary PROPERTIES  DEPENDS "example_cli_simulate" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_mtti "/root/repo/build/examples/failmine_cli" "mtti" "--data" "/root/repo/build/examples/smoke_ds")
set_tests_properties(example_cli_mtti PROPERTIES  DEPENDS "example_cli_simulate" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_report "/root/repo/build/examples/failure_report" "/root/repo/build/examples/report_ds" "0.1")
set_tests_properties(example_failure_report PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
