# Empty dependencies file for bench_e06_ras_breakdown.
# This may be replaced when dependencies are built.
