# Empty dependencies file for bench_e09_locality.
# This may be replaced when dependencies are built.
