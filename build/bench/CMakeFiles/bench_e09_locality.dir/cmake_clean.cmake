file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_locality.dir/bench_e09_locality.cpp.o"
  "CMakeFiles/bench_e09_locality.dir/bench_e09_locality.cpp.o.d"
  "bench_e09_locality"
  "bench_e09_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
