# Empty compiler generated dependencies file for bench_x02_warning_lead_time.
# This may be replaced when dependencies are built.
