file(REMOVE_RECURSE
  "CMakeFiles/bench_x02_warning_lead_time.dir/bench_x02_warning_lead_time.cpp.o"
  "CMakeFiles/bench_x02_warning_lead_time.dir/bench_x02_warning_lead_time.cpp.o.d"
  "bench_x02_warning_lead_time"
  "bench_x02_warning_lead_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x02_warning_lead_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
