file(REMOVE_RECURSE
  "CMakeFiles/bench_x01_component_mtbf.dir/bench_x01_component_mtbf.cpp.o"
  "CMakeFiles/bench_x01_component_mtbf.dir/bench_x01_component_mtbf.cpp.o.d"
  "bench_x01_component_mtbf"
  "bench_x01_component_mtbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x01_component_mtbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
