# Empty compiler generated dependencies file for bench_x01_component_mtbf.
# This may be replaced when dependencies are built.
