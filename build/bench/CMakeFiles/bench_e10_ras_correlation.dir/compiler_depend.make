# Empty compiler generated dependencies file for bench_e10_ras_correlation.
# This may be replaced when dependencies are built.
