file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_ras_correlation.dir/bench_e10_ras_correlation.cpp.o"
  "CMakeFiles/bench_e10_ras_correlation.dir/bench_e10_ras_correlation.cpp.o.d"
  "bench_e10_ras_correlation"
  "bench_e10_ras_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_ras_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
