# Empty dependencies file for bench_e07_filtering.
# This may be replaced when dependencies are built.
