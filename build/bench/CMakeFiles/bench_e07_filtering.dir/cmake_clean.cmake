file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_filtering.dir/bench_e07_filtering.cpp.o"
  "CMakeFiles/bench_e07_filtering.dir/bench_e07_filtering.cpp.o.d"
  "bench_e07_filtering"
  "bench_e07_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
