
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e03_user_project.cpp" "bench/CMakeFiles/bench_e03_user_project.dir/bench_e03_user_project.cpp.o" "gcc" "bench/CMakeFiles/bench_e03_user_project.dir/bench_e03_user_project.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/failmine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/failmine_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/failmine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/distfit/CMakeFiles/failmine_distfit.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/failmine_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/joblog/CMakeFiles/failmine_joblog.dir/DependInfo.cmake"
  "/root/repo/build/src/tasklog/CMakeFiles/failmine_tasklog.dir/DependInfo.cmake"
  "/root/repo/build/src/iolog/CMakeFiles/failmine_iolog.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/failmine_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/failmine_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
