file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_user_project.dir/bench_e03_user_project.cpp.o"
  "CMakeFiles/bench_e03_user_project.dir/bench_e03_user_project.cpp.o.d"
  "bench_e03_user_project"
  "bench_e03_user_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_user_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
