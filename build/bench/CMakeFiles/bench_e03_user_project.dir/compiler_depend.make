# Empty compiler generated dependencies file for bench_e03_user_project.
# This may be replaced when dependencies are built.
