# Empty dependencies file for bench_e02_exit_breakdown.
# This may be replaced when dependencies are built.
