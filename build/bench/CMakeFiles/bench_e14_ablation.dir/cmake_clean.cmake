file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_ablation.dir/bench_e14_ablation.cpp.o"
  "CMakeFiles/bench_e14_ablation.dir/bench_e14_ablation.cpp.o.d"
  "bench_e14_ablation"
  "bench_e14_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
