# Empty compiler generated dependencies file for bench_x08_checkpoint_advisor.
# This may be replaced when dependencies are built.
