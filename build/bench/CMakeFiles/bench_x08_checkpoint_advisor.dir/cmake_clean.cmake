file(REMOVE_RECURSE
  "CMakeFiles/bench_x08_checkpoint_advisor.dir/bench_x08_checkpoint_advisor.cpp.o"
  "CMakeFiles/bench_x08_checkpoint_advisor.dir/bench_x08_checkpoint_advisor.cpp.o.d"
  "bench_x08_checkpoint_advisor"
  "bench_x08_checkpoint_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x08_checkpoint_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
