file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_io_behavior.dir/bench_e12_io_behavior.cpp.o"
  "CMakeFiles/bench_e12_io_behavior.dir/bench_e12_io_behavior.cpp.o.d"
  "bench_e12_io_behavior"
  "bench_e12_io_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_io_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
