# Empty dependencies file for bench_e12_io_behavior.
# This may be replaced when dependencies are built.
