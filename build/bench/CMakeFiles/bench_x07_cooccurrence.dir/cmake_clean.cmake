file(REMOVE_RECURSE
  "CMakeFiles/bench_x07_cooccurrence.dir/bench_x07_cooccurrence.cpp.o"
  "CMakeFiles/bench_x07_cooccurrence.dir/bench_x07_cooccurrence.cpp.o.d"
  "bench_x07_cooccurrence"
  "bench_x07_cooccurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x07_cooccurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
