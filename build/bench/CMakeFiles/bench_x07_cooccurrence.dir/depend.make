# Empty dependencies file for bench_x07_cooccurrence.
# This may be replaced when dependencies are built.
