# Empty compiler generated dependencies file for bench_x06_reliability_trend.
# This may be replaced when dependencies are built.
