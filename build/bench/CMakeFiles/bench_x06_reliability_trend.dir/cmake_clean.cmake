file(REMOVE_RECURSE
  "CMakeFiles/bench_x06_reliability_trend.dir/bench_x06_reliability_trend.cpp.o"
  "CMakeFiles/bench_x06_reliability_trend.dir/bench_x06_reliability_trend.cpp.o.d"
  "bench_x06_reliability_trend"
  "bench_x06_reliability_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x06_reliability_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
