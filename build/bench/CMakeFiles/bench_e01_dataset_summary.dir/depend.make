# Empty dependencies file for bench_e01_dataset_summary.
# This may be replaced when dependencies are built.
