file(REMOVE_RECURSE
  "CMakeFiles/bench_x04_queue_wait.dir/bench_x04_queue_wait.cpp.o"
  "CMakeFiles/bench_x04_queue_wait.dir/bench_x04_queue_wait.cpp.o.d"
  "bench_x04_queue_wait"
  "bench_x04_queue_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x04_queue_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
