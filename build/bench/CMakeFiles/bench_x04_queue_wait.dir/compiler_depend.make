# Empty compiler generated dependencies file for bench_x04_queue_wait.
# This may be replaced when dependencies are built.
