file(REMOVE_RECURSE
  "CMakeFiles/bench_x03_bootstrap_ci.dir/bench_x03_bootstrap_ci.cpp.o"
  "CMakeFiles/bench_x03_bootstrap_ci.dir/bench_x03_bootstrap_ci.cpp.o.d"
  "bench_x03_bootstrap_ci"
  "bench_x03_bootstrap_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x03_bootstrap_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
