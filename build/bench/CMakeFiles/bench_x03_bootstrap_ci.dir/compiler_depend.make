# Empty compiler generated dependencies file for bench_x03_bootstrap_ci.
# This may be replaced when dependencies are built.
