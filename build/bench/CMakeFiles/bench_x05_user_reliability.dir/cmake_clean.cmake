file(REMOVE_RECURSE
  "CMakeFiles/bench_x05_user_reliability.dir/bench_x05_user_reliability.cpp.o"
  "CMakeFiles/bench_x05_user_reliability.dir/bench_x05_user_reliability.cpp.o.d"
  "bench_x05_user_reliability"
  "bench_x05_user_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x05_user_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
