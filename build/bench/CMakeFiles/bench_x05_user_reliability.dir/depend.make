# Empty dependencies file for bench_x05_user_reliability.
# This may be replaced when dependencies are built.
