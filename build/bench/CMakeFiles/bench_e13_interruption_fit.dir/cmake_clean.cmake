file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_interruption_fit.dir/bench_e13_interruption_fit.cpp.o"
  "CMakeFiles/bench_e13_interruption_fit.dir/bench_e13_interruption_fit.cpp.o.d"
  "bench_e13_interruption_fit"
  "bench_e13_interruption_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_interruption_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
