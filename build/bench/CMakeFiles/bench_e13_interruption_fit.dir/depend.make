# Empty dependencies file for bench_e13_interruption_fit.
# This may be replaced when dependencies are built.
