file(REMOVE_RECURSE
  "CMakeFiles/bench_e08_mtti.dir/bench_e08_mtti.cpp.o"
  "CMakeFiles/bench_e08_mtti.dir/bench_e08_mtti.cpp.o.d"
  "bench_e08_mtti"
  "bench_e08_mtti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e08_mtti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
