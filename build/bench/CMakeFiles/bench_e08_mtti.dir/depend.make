# Empty dependencies file for bench_e08_mtti.
# This may be replaced when dependencies are built.
