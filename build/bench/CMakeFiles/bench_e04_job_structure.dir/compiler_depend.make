# Empty compiler generated dependencies file for bench_e04_job_structure.
# This may be replaced when dependencies are built.
