file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_distfit_runtime.dir/bench_e05_distfit_runtime.cpp.o"
  "CMakeFiles/bench_e05_distfit_runtime.dir/bench_e05_distfit_runtime.cpp.o.d"
  "bench_e05_distfit_runtime"
  "bench_e05_distfit_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_distfit_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
