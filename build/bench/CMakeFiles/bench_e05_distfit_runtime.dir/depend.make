# Empty dependencies file for bench_e05_distfit_runtime.
# This may be replaced when dependencies are built.
