file(REMOVE_RECURSE
  "CMakeFiles/test_user_stats.dir/test_user_stats.cpp.o"
  "CMakeFiles/test_user_stats.dir/test_user_stats.cpp.o.d"
  "test_user_stats"
  "test_user_stats.pdb"
  "test_user_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_user_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
