# Empty compiler generated dependencies file for test_joblog.
# This may be replaced when dependencies are built.
