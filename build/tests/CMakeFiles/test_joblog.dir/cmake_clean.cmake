file(REMOVE_RECURSE
  "CMakeFiles/test_joblog.dir/test_joblog.cpp.o"
  "CMakeFiles/test_joblog.dir/test_joblog.cpp.o.d"
  "test_joblog"
  "test_joblog.pdb"
  "test_joblog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_joblog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
