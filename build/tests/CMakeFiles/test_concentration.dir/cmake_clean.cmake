file(REMOVE_RECURSE
  "CMakeFiles/test_concentration.dir/test_concentration.cpp.o"
  "CMakeFiles/test_concentration.dir/test_concentration.cpp.o.d"
  "test_concentration"
  "test_concentration.pdb"
  "test_concentration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
