file(REMOVE_RECURSE
  "CMakeFiles/test_trend.dir/test_trend.cpp.o"
  "CMakeFiles/test_trend.dir/test_trend.cpp.o.d"
  "test_trend"
  "test_trend.pdb"
  "test_trend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
