file(REMOVE_RECURSE
  "CMakeFiles/test_torus_locality.dir/test_torus_locality.cpp.o"
  "CMakeFiles/test_torus_locality.dir/test_torus_locality.cpp.o.d"
  "test_torus_locality"
  "test_torus_locality.pdb"
  "test_torus_locality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_torus_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
