# Empty compiler generated dependencies file for test_torus_locality.
# This may be replaced when dependencies are built.
