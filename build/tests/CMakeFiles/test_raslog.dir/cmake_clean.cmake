file(REMOVE_RECURSE
  "CMakeFiles/test_raslog.dir/test_raslog.cpp.o"
  "CMakeFiles/test_raslog.dir/test_raslog.cpp.o.d"
  "test_raslog"
  "test_raslog.pdb"
  "test_raslog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raslog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
