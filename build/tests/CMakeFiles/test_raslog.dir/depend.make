# Empty dependencies file for test_raslog.
# This may be replaced when dependencies are built.
