# Empty dependencies file for test_filter_properties.
# This may be replaced when dependencies are built.
