file(REMOVE_RECURSE
  "CMakeFiles/test_filter_properties.dir/test_filter_properties.cpp.o"
  "CMakeFiles/test_filter_properties.dir/test_filter_properties.cpp.o.d"
  "test_filter_properties"
  "test_filter_properties.pdb"
  "test_filter_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filter_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
