file(REMOVE_RECURSE
  "CMakeFiles/test_hypothesis.dir/test_hypothesis.cpp.o"
  "CMakeFiles/test_hypothesis.dir/test_hypothesis.cpp.o.d"
  "test_hypothesis"
  "test_hypothesis.pdb"
  "test_hypothesis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypothesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
