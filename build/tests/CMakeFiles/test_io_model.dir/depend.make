# Empty dependencies file for test_io_model.
# This may be replaced when dependencies are built.
