file(REMOVE_RECURSE
  "CMakeFiles/test_io_model.dir/test_io_model.cpp.o"
  "CMakeFiles/test_io_model.dir/test_io_model.cpp.o.d"
  "test_io_model"
  "test_io_model.pdb"
  "test_io_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
