file(REMOVE_RECURSE
  "CMakeFiles/test_joint_analyzer.dir/test_joint_analyzer.cpp.o"
  "CMakeFiles/test_joint_analyzer.dir/test_joint_analyzer.cpp.o.d"
  "test_joint_analyzer"
  "test_joint_analyzer.pdb"
  "test_joint_analyzer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_joint_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
