# Empty dependencies file for test_joint_analyzer.
# This may be replaced when dependencies are built.
