# Empty dependencies file for test_tasklog.
# This may be replaced when dependencies are built.
