file(REMOVE_RECURSE
  "CMakeFiles/test_tasklog.dir/test_tasklog.cpp.o"
  "CMakeFiles/test_tasklog.dir/test_tasklog.cpp.o.d"
  "test_tasklog"
  "test_tasklog.pdb"
  "test_tasklog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasklog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
