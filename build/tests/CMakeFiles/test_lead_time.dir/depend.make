# Empty dependencies file for test_lead_time.
# This may be replaced when dependencies are built.
