file(REMOVE_RECURSE
  "CMakeFiles/test_lead_time.dir/test_lead_time.cpp.o"
  "CMakeFiles/test_lead_time.dir/test_lead_time.cpp.o.d"
  "test_lead_time"
  "test_lead_time.pdb"
  "test_lead_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lead_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
