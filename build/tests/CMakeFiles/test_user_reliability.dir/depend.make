# Empty dependencies file for test_user_reliability.
# This may be replaced when dependencies are built.
