file(REMOVE_RECURSE
  "CMakeFiles/test_user_reliability.dir/test_user_reliability.cpp.o"
  "CMakeFiles/test_user_reliability.dir/test_user_reliability.cpp.o.d"
  "test_user_reliability"
  "test_user_reliability.pdb"
  "test_user_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_user_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
