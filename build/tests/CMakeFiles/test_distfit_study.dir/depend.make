# Empty dependencies file for test_distfit_study.
# This may be replaced when dependencies are built.
