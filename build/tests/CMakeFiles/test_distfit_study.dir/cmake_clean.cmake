file(REMOVE_RECURSE
  "CMakeFiles/test_distfit_study.dir/test_distfit_study.cpp.o"
  "CMakeFiles/test_distfit_study.dir/test_distfit_study.cpp.o.d"
  "test_distfit_study"
  "test_distfit_study.pdb"
  "test_distfit_study[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distfit_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
