# Empty dependencies file for test_event_filter.
# This may be replaced when dependencies are built.
