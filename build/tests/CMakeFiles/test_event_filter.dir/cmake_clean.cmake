file(REMOVE_RECURSE
  "CMakeFiles/test_event_filter.dir/test_event_filter.cpp.o"
  "CMakeFiles/test_event_filter.dir/test_event_filter.cpp.o.d"
  "test_event_filter"
  "test_event_filter.pdb"
  "test_event_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
