file(REMOVE_RECURSE
  "CMakeFiles/test_mtti.dir/test_mtti.cpp.o"
  "CMakeFiles/test_mtti.dir/test_mtti.cpp.o.d"
  "test_mtti"
  "test_mtti.pdb"
  "test_mtti[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mtti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
