# Empty dependencies file for test_mtti.
# This may be replaced when dependencies are built.
