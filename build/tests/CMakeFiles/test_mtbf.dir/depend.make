# Empty dependencies file for test_mtbf.
# This may be replaced when dependencies are built.
