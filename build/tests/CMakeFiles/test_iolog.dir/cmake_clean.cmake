file(REMOVE_RECURSE
  "CMakeFiles/test_iolog.dir/test_iolog.cpp.o"
  "CMakeFiles/test_iolog.dir/test_iolog.cpp.o.d"
  "test_iolog"
  "test_iolog.pdb"
  "test_iolog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
