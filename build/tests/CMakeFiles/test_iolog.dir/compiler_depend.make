# Empty compiler generated dependencies file for test_iolog.
# This may be replaced when dependencies are built.
