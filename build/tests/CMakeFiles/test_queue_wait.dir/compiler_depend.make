# Empty compiler generated dependencies file for test_queue_wait.
# This may be replaced when dependencies are built.
