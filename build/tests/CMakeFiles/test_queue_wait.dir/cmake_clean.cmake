file(REMOVE_RECURSE
  "CMakeFiles/test_queue_wait.dir/test_queue_wait.cpp.o"
  "CMakeFiles/test_queue_wait.dir/test_queue_wait.cpp.o.d"
  "test_queue_wait"
  "test_queue_wait.pdb"
  "test_queue_wait[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
