file(REMOVE_RECURSE
  "CMakeFiles/test_io_behavior.dir/test_io_behavior.cpp.o"
  "CMakeFiles/test_io_behavior.dir/test_io_behavior.cpp.o.d"
  "test_io_behavior"
  "test_io_behavior.pdb"
  "test_io_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
