# Empty dependencies file for test_io_behavior.
# This may be replaced when dependencies are built.
