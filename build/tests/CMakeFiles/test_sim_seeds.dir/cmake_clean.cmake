file(REMOVE_RECURSE
  "CMakeFiles/test_sim_seeds.dir/test_sim_seeds.cpp.o"
  "CMakeFiles/test_sim_seeds.dir/test_sim_seeds.cpp.o.d"
  "test_sim_seeds"
  "test_sim_seeds.pdb"
  "test_sim_seeds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
