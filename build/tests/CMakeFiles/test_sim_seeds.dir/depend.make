# Empty dependencies file for test_sim_seeds.
# This may be replaced when dependencies are built.
