file(REMOVE_RECURSE
  "libfailmine_sim.a"
)
