# Empty compiler generated dependencies file for failmine_sim.
# This may be replaced when dependencies are built.
