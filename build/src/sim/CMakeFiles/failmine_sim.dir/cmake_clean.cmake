file(REMOVE_RECURSE
  "CMakeFiles/failmine_sim.dir/config.cpp.o"
  "CMakeFiles/failmine_sim.dir/config.cpp.o.d"
  "CMakeFiles/failmine_sim.dir/fault_model.cpp.o"
  "CMakeFiles/failmine_sim.dir/fault_model.cpp.o.d"
  "CMakeFiles/failmine_sim.dir/io_model.cpp.o"
  "CMakeFiles/failmine_sim.dir/io_model.cpp.o.d"
  "CMakeFiles/failmine_sim.dir/population.cpp.o"
  "CMakeFiles/failmine_sim.dir/population.cpp.o.d"
  "CMakeFiles/failmine_sim.dir/simulator.cpp.o"
  "CMakeFiles/failmine_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/failmine_sim.dir/workload.cpp.o"
  "CMakeFiles/failmine_sim.dir/workload.cpp.o.d"
  "libfailmine_sim.a"
  "libfailmine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
