
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/failmine_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/failmine_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/fault_model.cpp" "src/sim/CMakeFiles/failmine_sim.dir/fault_model.cpp.o" "gcc" "src/sim/CMakeFiles/failmine_sim.dir/fault_model.cpp.o.d"
  "/root/repo/src/sim/io_model.cpp" "src/sim/CMakeFiles/failmine_sim.dir/io_model.cpp.o" "gcc" "src/sim/CMakeFiles/failmine_sim.dir/io_model.cpp.o.d"
  "/root/repo/src/sim/population.cpp" "src/sim/CMakeFiles/failmine_sim.dir/population.cpp.o" "gcc" "src/sim/CMakeFiles/failmine_sim.dir/population.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/failmine_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/failmine_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/failmine_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/failmine_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/failmine_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/failmine_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/joblog/CMakeFiles/failmine_joblog.dir/DependInfo.cmake"
  "/root/repo/build/src/tasklog/CMakeFiles/failmine_tasklog.dir/DependInfo.cmake"
  "/root/repo/build/src/iolog/CMakeFiles/failmine_iolog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
