# CMake generated Testfile for 
# Source directory: /root/repo/src/distfit
# Build directory: /root/repo/build/src/distfit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
