file(REMOVE_RECURSE
  "CMakeFiles/failmine_distfit.dir/distribution.cpp.o"
  "CMakeFiles/failmine_distfit.dir/distribution.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/erlang.cpp.o"
  "CMakeFiles/failmine_distfit.dir/erlang.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/exponential.cpp.o"
  "CMakeFiles/failmine_distfit.dir/exponential.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/fit.cpp.o"
  "CMakeFiles/failmine_distfit.dir/fit.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/gamma_dist.cpp.o"
  "CMakeFiles/failmine_distfit.dir/gamma_dist.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/inverse_gaussian.cpp.o"
  "CMakeFiles/failmine_distfit.dir/inverse_gaussian.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/loglogistic.cpp.o"
  "CMakeFiles/failmine_distfit.dir/loglogistic.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/lognormal.cpp.o"
  "CMakeFiles/failmine_distfit.dir/lognormal.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/normal_dist.cpp.o"
  "CMakeFiles/failmine_distfit.dir/normal_dist.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/optimize.cpp.o"
  "CMakeFiles/failmine_distfit.dir/optimize.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/pareto.cpp.o"
  "CMakeFiles/failmine_distfit.dir/pareto.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/rayleigh.cpp.o"
  "CMakeFiles/failmine_distfit.dir/rayleigh.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/selection.cpp.o"
  "CMakeFiles/failmine_distfit.dir/selection.cpp.o.d"
  "CMakeFiles/failmine_distfit.dir/weibull.cpp.o"
  "CMakeFiles/failmine_distfit.dir/weibull.cpp.o.d"
  "libfailmine_distfit.a"
  "libfailmine_distfit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_distfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
