
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distfit/distribution.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/distribution.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/distribution.cpp.o.d"
  "/root/repo/src/distfit/erlang.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/erlang.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/erlang.cpp.o.d"
  "/root/repo/src/distfit/exponential.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/exponential.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/exponential.cpp.o.d"
  "/root/repo/src/distfit/fit.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/fit.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/fit.cpp.o.d"
  "/root/repo/src/distfit/gamma_dist.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/gamma_dist.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/gamma_dist.cpp.o.d"
  "/root/repo/src/distfit/inverse_gaussian.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/inverse_gaussian.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/inverse_gaussian.cpp.o.d"
  "/root/repo/src/distfit/loglogistic.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/loglogistic.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/loglogistic.cpp.o.d"
  "/root/repo/src/distfit/lognormal.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/lognormal.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/lognormal.cpp.o.d"
  "/root/repo/src/distfit/normal_dist.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/normal_dist.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/normal_dist.cpp.o.d"
  "/root/repo/src/distfit/optimize.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/optimize.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/optimize.cpp.o.d"
  "/root/repo/src/distfit/pareto.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/pareto.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/pareto.cpp.o.d"
  "/root/repo/src/distfit/rayleigh.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/rayleigh.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/rayleigh.cpp.o.d"
  "/root/repo/src/distfit/selection.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/selection.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/selection.cpp.o.d"
  "/root/repo/src/distfit/weibull.cpp" "src/distfit/CMakeFiles/failmine_distfit.dir/weibull.cpp.o" "gcc" "src/distfit/CMakeFiles/failmine_distfit.dir/weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/failmine_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
