file(REMOVE_RECURSE
  "libfailmine_distfit.a"
)
