# Empty compiler generated dependencies file for failmine_distfit.
# This may be replaced when dependencies are built.
