# Empty compiler generated dependencies file for failmine_tasklog.
# This may be replaced when dependencies are built.
