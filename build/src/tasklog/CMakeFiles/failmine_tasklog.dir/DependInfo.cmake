
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasklog/task.cpp" "src/tasklog/CMakeFiles/failmine_tasklog.dir/task.cpp.o" "gcc" "src/tasklog/CMakeFiles/failmine_tasklog.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/joblog/CMakeFiles/failmine_joblog.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/failmine_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
