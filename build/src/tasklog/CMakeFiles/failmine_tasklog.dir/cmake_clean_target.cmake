file(REMOVE_RECURSE
  "libfailmine_tasklog.a"
)
