file(REMOVE_RECURSE
  "CMakeFiles/failmine_tasklog.dir/task.cpp.o"
  "CMakeFiles/failmine_tasklog.dir/task.cpp.o.d"
  "libfailmine_tasklog.a"
  "libfailmine_tasklog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_tasklog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
