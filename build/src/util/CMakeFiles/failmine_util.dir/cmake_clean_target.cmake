file(REMOVE_RECURSE
  "libfailmine_util.a"
)
