# Empty compiler generated dependencies file for failmine_util.
# This may be replaced when dependencies are built.
