file(REMOVE_RECURSE
  "CMakeFiles/failmine_util.dir/csv.cpp.o"
  "CMakeFiles/failmine_util.dir/csv.cpp.o.d"
  "CMakeFiles/failmine_util.dir/rng.cpp.o"
  "CMakeFiles/failmine_util.dir/rng.cpp.o.d"
  "CMakeFiles/failmine_util.dir/strings.cpp.o"
  "CMakeFiles/failmine_util.dir/strings.cpp.o.d"
  "CMakeFiles/failmine_util.dir/time.cpp.o"
  "CMakeFiles/failmine_util.dir/time.cpp.o.d"
  "libfailmine_util.a"
  "libfailmine_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
