file(REMOVE_RECURSE
  "CMakeFiles/failmine_joblog.dir/exit_status.cpp.o"
  "CMakeFiles/failmine_joblog.dir/exit_status.cpp.o.d"
  "CMakeFiles/failmine_joblog.dir/job.cpp.o"
  "CMakeFiles/failmine_joblog.dir/job.cpp.o.d"
  "libfailmine_joblog.a"
  "libfailmine_joblog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_joblog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
