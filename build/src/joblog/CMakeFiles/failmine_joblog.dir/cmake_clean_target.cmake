file(REMOVE_RECURSE
  "libfailmine_joblog.a"
)
