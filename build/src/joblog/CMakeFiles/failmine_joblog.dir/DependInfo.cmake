
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/joblog/exit_status.cpp" "src/joblog/CMakeFiles/failmine_joblog.dir/exit_status.cpp.o" "gcc" "src/joblog/CMakeFiles/failmine_joblog.dir/exit_status.cpp.o.d"
  "/root/repo/src/joblog/job.cpp" "src/joblog/CMakeFiles/failmine_joblog.dir/job.cpp.o" "gcc" "src/joblog/CMakeFiles/failmine_joblog.dir/job.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/failmine_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
