# Empty compiler generated dependencies file for failmine_joblog.
# This may be replaced when dependencies are built.
