# CMake generated Testfile for 
# Source directory: /root/repo/src/joblog
# Build directory: /root/repo/build/src/joblog
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
