# Empty dependencies file for failmine_topology.
# This may be replaced when dependencies are built.
