file(REMOVE_RECURSE
  "libfailmine_topology.a"
)
