file(REMOVE_RECURSE
  "CMakeFiles/failmine_topology.dir/location.cpp.o"
  "CMakeFiles/failmine_topology.dir/location.cpp.o.d"
  "CMakeFiles/failmine_topology.dir/machine.cpp.o"
  "CMakeFiles/failmine_topology.dir/machine.cpp.o.d"
  "CMakeFiles/failmine_topology.dir/partition.cpp.o"
  "CMakeFiles/failmine_topology.dir/partition.cpp.o.d"
  "libfailmine_topology.a"
  "libfailmine_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
