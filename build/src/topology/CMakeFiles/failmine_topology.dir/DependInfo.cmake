
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/location.cpp" "src/topology/CMakeFiles/failmine_topology.dir/location.cpp.o" "gcc" "src/topology/CMakeFiles/failmine_topology.dir/location.cpp.o.d"
  "/root/repo/src/topology/machine.cpp" "src/topology/CMakeFiles/failmine_topology.dir/machine.cpp.o" "gcc" "src/topology/CMakeFiles/failmine_topology.dir/machine.cpp.o.d"
  "/root/repo/src/topology/partition.cpp" "src/topology/CMakeFiles/failmine_topology.dir/partition.cpp.o" "gcc" "src/topology/CMakeFiles/failmine_topology.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
