file(REMOVE_RECURSE
  "CMakeFiles/failmine_analysis.dir/cooccurrence.cpp.o"
  "CMakeFiles/failmine_analysis.dir/cooccurrence.cpp.o.d"
  "CMakeFiles/failmine_analysis.dir/io_behavior.cpp.o"
  "CMakeFiles/failmine_analysis.dir/io_behavior.cpp.o.d"
  "CMakeFiles/failmine_analysis.dir/locality.cpp.o"
  "CMakeFiles/failmine_analysis.dir/locality.cpp.o.d"
  "CMakeFiles/failmine_analysis.dir/queue_wait.cpp.o"
  "CMakeFiles/failmine_analysis.dir/queue_wait.cpp.o.d"
  "CMakeFiles/failmine_analysis.dir/structure.cpp.o"
  "CMakeFiles/failmine_analysis.dir/structure.cpp.o.d"
  "CMakeFiles/failmine_analysis.dir/temporal.cpp.o"
  "CMakeFiles/failmine_analysis.dir/temporal.cpp.o.d"
  "CMakeFiles/failmine_analysis.dir/torus_locality.cpp.o"
  "CMakeFiles/failmine_analysis.dir/torus_locality.cpp.o.d"
  "CMakeFiles/failmine_analysis.dir/user_stats.cpp.o"
  "CMakeFiles/failmine_analysis.dir/user_stats.cpp.o.d"
  "libfailmine_analysis.a"
  "libfailmine_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
