file(REMOVE_RECURSE
  "libfailmine_analysis.a"
)
