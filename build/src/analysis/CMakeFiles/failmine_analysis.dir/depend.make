# Empty dependencies file for failmine_analysis.
# This may be replaced when dependencies are built.
