
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cooccurrence.cpp" "src/analysis/CMakeFiles/failmine_analysis.dir/cooccurrence.cpp.o" "gcc" "src/analysis/CMakeFiles/failmine_analysis.dir/cooccurrence.cpp.o.d"
  "/root/repo/src/analysis/io_behavior.cpp" "src/analysis/CMakeFiles/failmine_analysis.dir/io_behavior.cpp.o" "gcc" "src/analysis/CMakeFiles/failmine_analysis.dir/io_behavior.cpp.o.d"
  "/root/repo/src/analysis/locality.cpp" "src/analysis/CMakeFiles/failmine_analysis.dir/locality.cpp.o" "gcc" "src/analysis/CMakeFiles/failmine_analysis.dir/locality.cpp.o.d"
  "/root/repo/src/analysis/queue_wait.cpp" "src/analysis/CMakeFiles/failmine_analysis.dir/queue_wait.cpp.o" "gcc" "src/analysis/CMakeFiles/failmine_analysis.dir/queue_wait.cpp.o.d"
  "/root/repo/src/analysis/structure.cpp" "src/analysis/CMakeFiles/failmine_analysis.dir/structure.cpp.o" "gcc" "src/analysis/CMakeFiles/failmine_analysis.dir/structure.cpp.o.d"
  "/root/repo/src/analysis/temporal.cpp" "src/analysis/CMakeFiles/failmine_analysis.dir/temporal.cpp.o" "gcc" "src/analysis/CMakeFiles/failmine_analysis.dir/temporal.cpp.o.d"
  "/root/repo/src/analysis/torus_locality.cpp" "src/analysis/CMakeFiles/failmine_analysis.dir/torus_locality.cpp.o" "gcc" "src/analysis/CMakeFiles/failmine_analysis.dir/torus_locality.cpp.o.d"
  "/root/repo/src/analysis/user_stats.cpp" "src/analysis/CMakeFiles/failmine_analysis.dir/user_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/failmine_analysis.dir/user_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/failmine_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/failmine_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/failmine_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/joblog/CMakeFiles/failmine_joblog.dir/DependInfo.cmake"
  "/root/repo/build/src/tasklog/CMakeFiles/failmine_tasklog.dir/DependInfo.cmake"
  "/root/repo/build/src/iolog/CMakeFiles/failmine_iolog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
