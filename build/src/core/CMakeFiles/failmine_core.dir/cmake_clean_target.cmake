file(REMOVE_RECURSE
  "libfailmine_core.a"
)
