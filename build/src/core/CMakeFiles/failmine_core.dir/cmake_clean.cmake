file(REMOVE_RECURSE
  "CMakeFiles/failmine_core.dir/attribution.cpp.o"
  "CMakeFiles/failmine_core.dir/attribution.cpp.o.d"
  "CMakeFiles/failmine_core.dir/checkpoint.cpp.o"
  "CMakeFiles/failmine_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/failmine_core.dir/distfit_study.cpp.o"
  "CMakeFiles/failmine_core.dir/distfit_study.cpp.o.d"
  "CMakeFiles/failmine_core.dir/event_filter.cpp.o"
  "CMakeFiles/failmine_core.dir/event_filter.cpp.o.d"
  "CMakeFiles/failmine_core.dir/joint_analyzer.cpp.o"
  "CMakeFiles/failmine_core.dir/joint_analyzer.cpp.o.d"
  "CMakeFiles/failmine_core.dir/lead_time.cpp.o"
  "CMakeFiles/failmine_core.dir/lead_time.cpp.o.d"
  "CMakeFiles/failmine_core.dir/mtbf.cpp.o"
  "CMakeFiles/failmine_core.dir/mtbf.cpp.o.d"
  "CMakeFiles/failmine_core.dir/mtti.cpp.o"
  "CMakeFiles/failmine_core.dir/mtti.cpp.o.d"
  "CMakeFiles/failmine_core.dir/report.cpp.o"
  "CMakeFiles/failmine_core.dir/report.cpp.o.d"
  "CMakeFiles/failmine_core.dir/trend.cpp.o"
  "CMakeFiles/failmine_core.dir/trend.cpp.o.d"
  "CMakeFiles/failmine_core.dir/user_reliability.cpp.o"
  "CMakeFiles/failmine_core.dir/user_reliability.cpp.o.d"
  "libfailmine_core.a"
  "libfailmine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
