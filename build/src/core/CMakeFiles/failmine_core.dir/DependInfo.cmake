
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attribution.cpp" "src/core/CMakeFiles/failmine_core.dir/attribution.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/attribution.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/failmine_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/distfit_study.cpp" "src/core/CMakeFiles/failmine_core.dir/distfit_study.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/distfit_study.cpp.o.d"
  "/root/repo/src/core/event_filter.cpp" "src/core/CMakeFiles/failmine_core.dir/event_filter.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/event_filter.cpp.o.d"
  "/root/repo/src/core/joint_analyzer.cpp" "src/core/CMakeFiles/failmine_core.dir/joint_analyzer.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/joint_analyzer.cpp.o.d"
  "/root/repo/src/core/lead_time.cpp" "src/core/CMakeFiles/failmine_core.dir/lead_time.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/lead_time.cpp.o.d"
  "/root/repo/src/core/mtbf.cpp" "src/core/CMakeFiles/failmine_core.dir/mtbf.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/mtbf.cpp.o.d"
  "/root/repo/src/core/mtti.cpp" "src/core/CMakeFiles/failmine_core.dir/mtti.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/mtti.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/failmine_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/report.cpp.o.d"
  "/root/repo/src/core/trend.cpp" "src/core/CMakeFiles/failmine_core.dir/trend.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/trend.cpp.o.d"
  "/root/repo/src/core/user_reliability.cpp" "src/core/CMakeFiles/failmine_core.dir/user_reliability.cpp.o" "gcc" "src/core/CMakeFiles/failmine_core.dir/user_reliability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/failmine_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/distfit/CMakeFiles/failmine_distfit.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/failmine_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/failmine_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/joblog/CMakeFiles/failmine_joblog.dir/DependInfo.cmake"
  "/root/repo/build/src/tasklog/CMakeFiles/failmine_tasklog.dir/DependInfo.cmake"
  "/root/repo/build/src/iolog/CMakeFiles/failmine_iolog.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/failmine_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
