# Empty compiler generated dependencies file for failmine_core.
# This may be replaced when dependencies are built.
