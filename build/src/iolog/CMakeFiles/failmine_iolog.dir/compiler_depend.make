# Empty compiler generated dependencies file for failmine_iolog.
# This may be replaced when dependencies are built.
