file(REMOVE_RECURSE
  "libfailmine_iolog.a"
)
