file(REMOVE_RECURSE
  "CMakeFiles/failmine_iolog.dir/io_record.cpp.o"
  "CMakeFiles/failmine_iolog.dir/io_record.cpp.o.d"
  "libfailmine_iolog.a"
  "libfailmine_iolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_iolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
