file(REMOVE_RECURSE
  "CMakeFiles/failmine_raslog.dir/event.cpp.o"
  "CMakeFiles/failmine_raslog.dir/event.cpp.o.d"
  "CMakeFiles/failmine_raslog.dir/message_catalog.cpp.o"
  "CMakeFiles/failmine_raslog.dir/message_catalog.cpp.o.d"
  "CMakeFiles/failmine_raslog.dir/names.cpp.o"
  "CMakeFiles/failmine_raslog.dir/names.cpp.o.d"
  "libfailmine_raslog.a"
  "libfailmine_raslog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_raslog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
