
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raslog/event.cpp" "src/raslog/CMakeFiles/failmine_raslog.dir/event.cpp.o" "gcc" "src/raslog/CMakeFiles/failmine_raslog.dir/event.cpp.o.d"
  "/root/repo/src/raslog/message_catalog.cpp" "src/raslog/CMakeFiles/failmine_raslog.dir/message_catalog.cpp.o" "gcc" "src/raslog/CMakeFiles/failmine_raslog.dir/message_catalog.cpp.o.d"
  "/root/repo/src/raslog/names.cpp" "src/raslog/CMakeFiles/failmine_raslog.dir/names.cpp.o" "gcc" "src/raslog/CMakeFiles/failmine_raslog.dir/names.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/failmine_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
