file(REMOVE_RECURSE
  "libfailmine_raslog.a"
)
