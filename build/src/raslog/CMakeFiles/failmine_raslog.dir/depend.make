# Empty dependencies file for failmine_raslog.
# This may be replaced when dependencies are built.
