# Empty dependencies file for failmine_stats.
# This may be replaced when dependencies are built.
