file(REMOVE_RECURSE
  "CMakeFiles/failmine_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/failmine_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/failmine_stats.dir/concentration.cpp.o"
  "CMakeFiles/failmine_stats.dir/concentration.cpp.o.d"
  "CMakeFiles/failmine_stats.dir/correlation.cpp.o"
  "CMakeFiles/failmine_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/failmine_stats.dir/ecdf.cpp.o"
  "CMakeFiles/failmine_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/failmine_stats.dir/histogram.cpp.o"
  "CMakeFiles/failmine_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/failmine_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/failmine_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/failmine_stats.dir/special.cpp.o"
  "CMakeFiles/failmine_stats.dir/special.cpp.o.d"
  "CMakeFiles/failmine_stats.dir/summary.cpp.o"
  "CMakeFiles/failmine_stats.dir/summary.cpp.o.d"
  "libfailmine_stats.a"
  "libfailmine_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failmine_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
