file(REMOVE_RECURSE
  "libfailmine_stats.a"
)
