
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/failmine_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/failmine_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/concentration.cpp" "src/stats/CMakeFiles/failmine_stats.dir/concentration.cpp.o" "gcc" "src/stats/CMakeFiles/failmine_stats.dir/concentration.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/failmine_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/failmine_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/failmine_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/failmine_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/failmine_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/failmine_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/hypothesis.cpp" "src/stats/CMakeFiles/failmine_stats.dir/hypothesis.cpp.o" "gcc" "src/stats/CMakeFiles/failmine_stats.dir/hypothesis.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/failmine_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/failmine_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/failmine_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/failmine_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/failmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
