#include "predict/operator.hpp"

#include <algorithm>
#include <iterator>

#include "joblog/exit_status.hpp"
#include "raslog/category.hpp"
#include "stats/summary.hpp"
#include "topology/partition.hpp"

namespace failmine::predict {

namespace {

/// Global midplane index of a located event, or -1 when the location is
/// too shallow to attribute (rack-level events touch two midplanes).
int midplane_of(const topology::Location& location,
                const topology::MachineConfig& machine) {
  if (location.level() < topology::Level::kMidplane) return -1;
  return topology::Partition::global_midplane_index(location, machine);
}

}  // namespace

PredictOperator::PredictOperator(PredictConfig config)
    : config_(std::move(config)),
      miner_(config_),
      scorer_(config_.risk, config_.machine),
      users_(config_.risk.user_capacity, config_.risk.propensity_cap),
      warn_pressure_(config_.risk.warn_pressure_tau_seconds),
      health_(config_.risk.health_tau_seconds),
      policy_(config_.policy, config_.machine) {
  auto& registry = obs::metrics();
  records_counter_ = &registry.counter("predict.records");
  warns_counter_ = &registry.counter("predict.warns");
  interruptions_counter_ = &registry.counter("predict.interruptions");
  alerts_counter_ = &registry.counter("predict.alerts");
  jobs_scored_counter_ = &registry.counter("predict.jobs_scored");
  lead_time_hist_ = &registry.histogram(
      "predict.lead_time_s",
      {60, 300, 900, 1800, 3600, 7200, 14400, 43200, 86400});
  risk_hist_ = &registry.histogram(
      "predict.risk_score", {0.1, 0.25, 0.5, 1, 2, 4, 8, 16, 32});
  flag_lead_hist_ = &registry.histogram(
      "predict.flag_lead_s",
      {60, 300, 900, 1800, 3600, 7200, 14400, 43200, 86400});
}

void PredictOperator::drain_new_leads() {
  const std::vector<double>& leads = miner_.leads();
  for (; leads_observed_ < leads.size(); ++leads_observed_)
    lead_time_hist_->observe(leads[leads_observed_]);
}

void PredictOperator::observe(const stream::StreamRecord& record) {
  ++records_;
  // The per-record counter is the hottest instrument in the operator;
  // batch its (atomic) adds so live readers lag by at most 256 records.
  if (++unflushed_records_ == 256) {
    records_counter_->add(unflushed_records_);
    unflushed_records_ = 0;
  }
  watermark_ = std::max(watermark_, record.time);
  miner_.advance(record.time);

  switch (record.source()) {
    case stream::RecordSource::kRas: {
      const auto& event = std::get<raslog::RasEvent>(record.payload);
      const PrecursorMiner::RasOutcome outcome = miner_.observe_ras(event);
      if (event.severity == raslog::Severity::kWarn) {
        warns_counter_->add();
        const int mp = midplane_of(event.location, config_.machine);
        if (mp >= 0) warn_pressure_.bump(mp, 1.0, event.timestamp);
      }
      if (outcome.cluster_opened) {
        interruptions_counter_->add();
        policy_.on_interruption(event.timestamp);
        const int mp = midplane_of(event.location, config_.machine);
        if (mp >= 0) health_.bump(mp, 1.0, event.timestamp);
      }
      if (outcome.alerted) alerts_counter_->add();
      break;
    }
    case stream::RecordSource::kTask: {
      scorer_.observe_task(std::get<tasklog::TaskRecord>(record.payload),
                           record.time);
      break;
    }
    case stream::RecordSource::kJob: {
      const auto& job = std::get<joblog::JobRecord>(record.payload);
      // Job records stream at end time and sort ahead of the same-stamp
      // fatal burst that kills them, so everything read here is strictly
      // pre-outcome.
      RiskAssessment assessment = scorer_.score_job_end(
          job, record.time, warn_pressure_, health_, users_);
      risk_hist_->observe(assessment.risk);

      const double multiplier =
          1.0 + assessment.risk / config_.risk.flag_threshold;
      const bool system_failed = joblog::is_system_caused(job.exit_class);
      policy_.score_job(job, system_failed, multiplier);

      // Ground truth and history only after every decision is made. The
      // target is a system-caused end (what checkpointing mitigates),
      // not mere job failure — user aborts are the user's bug.
      if (assessment.flagged_live && system_failed)
        flag_lead_hist_->observe(
            static_cast<double>(assessment.flag_lead_seconds));
      scorer_.record_outcome(assessment, system_failed);
      users_.record_job(job.user_id, system_failed);
      jobs_scored_counter_->add();
      break;
    }
    case stream::RecordSource::kIo:
      break;  // no I/O-derived signal yet
  }
  drain_new_leads();
}

void PredictOperator::finish() {
  miner_.finish();
  drain_new_leads();
  if (unflushed_records_ > 0) {
    records_counter_->add(unflushed_records_);
    unflushed_records_ = 0;
  }
  finished_ = true;
}

PredictSnapshot PredictOperator::snapshot() const {
  PredictSnapshot snap;
  snap.records = records_;
  snap.warns = miner_.warns_seen();
  snap.interruptions =
      miner_.clusters_resolved() + miner_.pending_clusters();
  snap.alerts = miner_.alerts_emitted();
  snap.finished = finished_;

  const core::LeadTimeResult leads = miner_.lead_time_result();
  snap.with_precursor = leads.with_precursor;
  snap.without_precursor = leads.without_precursor;
  snap.coverage = leads.coverage;
  snap.median_lead_seconds = leads.median_lead_seconds;
  snap.mean_lead_seconds = leads.mean_lead_seconds;
  if (!miner_.leads().empty()) {
    snap.lead_p10_seconds = stats::quantile(miner_.leads(), 0.10);
    snap.lead_p90_seconds = stats::quantile(miner_.leads(), 0.90);
  }
  snap.pending_clusters = miner_.pending_clusters();
  snap.pending_alerts = miner_.pending_alerts();

  snap.alerts_graded = miner_.alerts_graded();
  snap.alerts_matched = miner_.alerts_matched();
  snap.alert_precision =
      snap.alerts_graded > 0
          ? static_cast<double>(snap.alerts_matched) /
                static_cast<double>(snap.alerts_graded)
          : 0.0;
  snap.clusters_alerted = miner_.clusters_alerted();
  const std::uint64_t resolved = miner_.clusters_resolved();
  snap.alert_recall =
      resolved > 0 ? static_cast<double>(snap.clusters_alerted) /
                         static_cast<double>(resolved)
                   : 0.0;
  for (std::size_t i = 0; i < config_.lead_horizons.size(); ++i) {
    HorizonStat h;
    h.horizon_seconds = config_.lead_horizons[i];
    h.clusters_predicted = miner_.clusters_alerted_at()[i];
    h.recall = resolved > 0 ? static_cast<double>(h.clusters_predicted) /
                                  static_cast<double>(resolved)
                            : 0.0;
    h.alerts_matched = miner_.alerts_matched_at()[i];
    h.precision = snap.alerts_graded > 0
                      ? static_cast<double>(h.alerts_matched) /
                            static_cast<double>(snap.alerts_graded)
                      : 0.0;
    snap.horizons.push_back(h);
  }
  for (std::size_t i = 0; i < std::size(raslog::kAllCategories); ++i) {
    const CategoryScore& score = miner_.category_scores()[i];
    CategoryStat c;
    c.category = raslog::category_name(raslog::kAllCategories[i]);
    c.warns = score.warns;
    c.hits = score.hits;
    c.score = score.score();
    c.alerting = score.hits > 0 &&
                 score.warns >= config_.alert_min_category_warns &&
                 score.score() >= config_.alert_min_score;
    snap.categories.push_back(std::move(c));
  }

  snap.jobs_scored = scorer_.jobs_scored();
  snap.risk_tp = scorer_.true_positives();
  snap.risk_fp = scorer_.false_positives();
  snap.risk_fn = scorer_.false_negatives();
  snap.risk_tn = scorer_.true_negatives();
  snap.risk_precision = scorer_.precision();
  snap.risk_recall = scorer_.recall();
  if (!scorer_.flag_lead_sketch().empty()) {
    snap.flag_lead_p50_seconds = scorer_.flag_lead_sketch().quantile(0.50);
    snap.flag_lead_p90_seconds = scorer_.flag_lead_sketch().quantile(0.90);
  }
  snap.mean_risk_failed = scorer_.mean_risk_failed();
  snap.mean_risk_ok = scorer_.mean_risk_ok();
  snap.live_jobs = scorer_.live_jobs();
  snap.live_evictions = scorer_.evictions();
  for (const LiveJob& job : scorer_.top_live(10, watermark_)) {
    TopJobStat stat;
    stat.job_id = job.job_id;
    stat.task_score = job.task_score;
    stat.tasks_seen = job.tasks_seen;
    stat.tasks_failed = job.tasks_failed;
    stat.flagged = job.flagged_at != 0;
    stat.first_seen = job.first_seen;
    snap.top_at_risk.push_back(stat);
  }

  snap.hazard_per_node_second = policy_.hazard_per_node_second();
  snap.system_kills = policy_.system_kills();
  snap.node_seconds = policy_.node_seconds();
  snap.interval_samples = policy_.interval_sketch().count();
  if (!policy_.interval_sketch().empty()) {
    snap.interval_p50_days =
        policy_.interval_sketch().quantile(0.50) / 86400.0;
    snap.interval_p90_days =
        policy_.interval_sketch().quantile(0.90) / 86400.0;
  }
  const auto policy_row = [](const char* name, const PolicyCost& cost) {
    PolicyRow row;
    row.name = name;
    row.jobs = cost.jobs;
    row.checkpointed = cost.checkpointed;
    row.overhead_core_hours = cost.overhead_core_hours;
    row.lost_core_hours = cost.lost_core_hours;
    row.waste_core_hours = cost.waste_core_hours();
    row.mean_interval_seconds = cost.mean_interval_seconds();
    return row;
  };
  snap.policies.push_back(policy_row("none", policy_.cost_none()));
  snap.policies.push_back(policy_row("static", policy_.cost_static()));
  snap.policies.push_back(policy_row("adaptive", policy_.cost_adaptive()));
  snap.saved_vs_static_core_hours = policy_.saved_vs_static_core_hours();
  snap.saved_vs_none_core_hours = policy_.saved_vs_none_core_hours();

  return snap;
}

}  // namespace failmine::predict
