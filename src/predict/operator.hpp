// failmine/predict/operator.hpp
//
// PredictOperator: the failure-prediction subsystem as a pipeline
// plug-in.
//
//                        router thread (watermark order)
//                                    |
//                            PredictOperator
//                   .----------------+----------------.
//                   |                |                |
//             PrecursorMiner   JobRiskScorer   CheckpointPolicy
//             (RAS WARNs vs    (task stream +  (running hazard +
//              fatal clusters,  pressure maps   interval sketch ->
//              alerts, lead     + user history  per-job intervals,
//              times)           -> risk score)  3-way cost ledger)
//
// Wiring per record source:
//   RAS    -> miner (clusters, alerts, lead times); WARNs bump the
//             per-midplane warn-pressure map; cluster opens feed the
//             policy's interval sketch and the location-health map.
//   task   -> risk scorer's live-job table (decayed failed-task score,
//             online flagging).
//   job    -> scored: risk assessment at end time, policy decision from
//             risk multiplier + running hazard, then (strictly after
//             scoring) ground-truth accounting, user history and hazard
//             exposure updates.
//
// Registers predict.* instruments in the obs registry (counters
// predict.records/warns/interruptions/alerts/jobs_scored, histograms
// predict.lead_time_s / predict.risk_score / predict.flag_lead_s).
//
// Threading: driven entirely under the pipeline's router mutex (see
// stream/router_operator.hpp). Use
// StreamPipeline::operator_snapshot_json() for live reads; direct calls
// are safe once the pipeline has finished.

#pragma once

#include "obs/metrics.hpp"
#include "predict/config.hpp"
#include "predict/policy.hpp"
#include "predict/precursor.hpp"
#include "predict/risk.hpp"
#include "predict/snapshot.hpp"
#include "stream/record.hpp"
#include "stream/router_operator.hpp"

namespace failmine::predict {

class PredictOperator : public stream::RouterOperator {
 public:
  explicit PredictOperator(PredictConfig config);

  void observe(const stream::StreamRecord& record) override;
  void finish() override;
  std::string section_name() const override { return "predict"; }
  std::string snapshot_json() const override { return snapshot().to_json(); }

  /// Typed snapshot (same data as the JSON form).
  PredictSnapshot snapshot() const;

  const PredictConfig& config() const { return config_; }
  const PrecursorMiner& miner() const { return miner_; }
  const JobRiskScorer& scorer() const { return scorer_; }
  const CheckpointPolicy& policy() const { return policy_; }

 private:
  void drain_new_leads();

  PredictConfig config_;
  PrecursorMiner miner_;
  JobRiskScorer scorer_;
  UserHistory users_;
  LocationPressure warn_pressure_;
  LocationPressure health_;
  CheckpointPolicy policy_;

  std::uint64_t records_ = 0;
  std::uint64_t unflushed_records_ = 0;  ///< batched predict.records adds
  util::UnixSeconds watermark_ = 0;  ///< newest event time observed
  std::size_t leads_observed_ = 0;   ///< histogram high-water mark
  bool finished_ = false;

  obs::Counter* records_counter_;
  obs::Counter* warns_counter_;
  obs::Counter* interruptions_counter_;
  obs::Counter* alerts_counter_;
  obs::Counter* jobs_scored_counter_;
  obs::Histogram* lead_time_hist_;
  obs::Histogram* risk_hist_;
  obs::Histogram* flag_lead_hist_;
};

}  // namespace failmine::predict
