// failmine/predict/snapshot.hpp
//
// Point-in-time view of the prediction subsystem: the lead-time
// distribution, alert precision/recall at the fixed horizons, the live
// risk scoreboard with the top at-risk jobs, and the checkpoint-policy
// cost ledger. PredictOperator assembles one under the router lock; the
// JSON form backs GET /predict and the "predict" section spliced into
// StreamSnapshot.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace failmine::predict {

/// Alert quality at one fixed lead-time horizon L.
struct HorizonStat {
  std::int64_t horizon_seconds = 0;
  std::uint64_t clusters_predicted = 0;  ///< interruptions alerted >= L early
  double recall = 0.0;                   ///< of resolved interruptions
  std::uint64_t alerts_matched = 0;      ///< graded alerts with lead >= L
  double precision = 0.0;                ///< of graded alerts
};

/// Live precursor score of one RAS category.
struct CategoryStat {
  std::string category;
  std::uint64_t warns = 0;
  std::uint64_t hits = 0;
  double score = 0.0;
  bool alerting = false;  ///< currently past the alert thresholds
};

/// One of the top at-risk live jobs.
struct TopJobStat {
  std::uint64_t job_id = 0;
  double task_score = 0.0;
  std::uint32_t tasks_seen = 0;
  std::uint32_t tasks_failed = 0;
  bool flagged = false;
  util::UnixSeconds first_seen = 0;
};

/// One row of the checkpoint-policy cost ledger.
struct PolicyRow {
  std::string name;  ///< "none", "static", "adaptive"
  std::uint64_t jobs = 0;
  std::uint64_t checkpointed = 0;
  double overhead_core_hours = 0.0;
  double lost_core_hours = 0.0;
  double waste_core_hours = 0.0;
  double mean_interval_seconds = 0.0;
};

struct PredictSnapshot {
  // -- stream accounting -------------------------------------------------
  std::uint64_t records = 0;        ///< records observed in watermark order
  std::uint64_t warns = 0;
  std::uint64_t interruptions = 0;  ///< deduplicated clusters opened
  std::uint64_t alerts = 0;         ///< alerts emitted
  bool finished = false;

  // -- precursor lead times (streamed X02) -------------------------------
  std::uint64_t with_precursor = 0;
  std::uint64_t without_precursor = 0;
  double coverage = 0.0;
  double median_lead_seconds = 0.0;
  double mean_lead_seconds = 0.0;
  double lead_p10_seconds = 0.0;
  double lead_p90_seconds = 0.0;
  std::size_t pending_clusters = 0;  ///< watermark has not passed them yet
  std::size_t pending_alerts = 0;

  // -- alert precision / recall ------------------------------------------
  std::uint64_t alerts_graded = 0;
  std::uint64_t alerts_matched = 0;
  double alert_precision = 0.0;
  std::uint64_t clusters_alerted = 0;
  double alert_recall = 0.0;
  std::vector<HorizonStat> horizons;
  std::vector<CategoryStat> categories;

  // -- per-job risk scoreboard -------------------------------------------
  std::uint64_t jobs_scored = 0;
  std::uint64_t risk_tp = 0, risk_fp = 0, risk_fn = 0, risk_tn = 0;
  double risk_precision = 0.0;
  double risk_recall = 0.0;
  double flag_lead_p50_seconds = 0.0;
  double flag_lead_p90_seconds = 0.0;
  double mean_risk_failed = 0.0;
  double mean_risk_ok = 0.0;
  std::uint64_t live_jobs = 0;
  std::uint64_t live_evictions = 0;
  std::vector<TopJobStat> top_at_risk;

  // -- checkpoint policy -------------------------------------------------
  double hazard_per_node_second = 0.0;
  std::uint64_t system_kills = 0;
  double node_seconds = 0.0;
  std::uint64_t interval_samples = 0;
  double interval_p50_days = 0.0;
  double interval_p90_days = 0.0;
  std::vector<PolicyRow> policies;
  double saved_vs_static_core_hours = 0.0;
  double saved_vs_none_core_hours = 0.0;

  /// One JSON object, no trailing newline (spliced into StreamSnapshot's
  /// JSON and served raw on /predict).
  std::string to_json() const;
};

}  // namespace failmine::predict
