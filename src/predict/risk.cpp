#include "predict/risk.hpp"

#include <algorithm>
#include <cmath>

#include "topology/partition.hpp"
#include "util/error.hpp"

namespace failmine::predict {

// ---- LocationPressure --------------------------------------------------

LocationPressure::LocationPressure(double tau_seconds) : tau_(tau_seconds) {
  if (tau_ <= 0)
    throw failmine::DomainError("pressure decay tau must be positive");
}

double LocationPressure::decayed(const Cell& cell, util::UnixSeconds t) const {
  if (cell.value == 0.0) return 0.0;
  if (t <= cell.last) return cell.value;
  return cell.value * std::exp(-static_cast<double>(t - cell.last) / tau_);
}

void LocationPressure::bump(int midplane, double amount, util::UnixSeconds t) {
  if (midplane < 0) return;
  if (static_cast<std::size_t>(midplane) >= cells_.size())
    cells_.resize(static_cast<std::size_t>(midplane) + 1);
  Cell& cell = cells_[static_cast<std::size_t>(midplane)];
  cell.value = decayed(cell, t) + amount;
  cell.last = std::max(cell.last, t);
}

double LocationPressure::value_at(int midplane, util::UnixSeconds t) const {
  if (midplane < 0 || static_cast<std::size_t>(midplane) >= cells_.size())
    return 0.0;
  return decayed(cells_[static_cast<std::size_t>(midplane)], t);
}

// ---- UserHistory -------------------------------------------------------

UserHistory::UserHistory(std::size_t capacity, double propensity_cap)
    : cap_(propensity_cap),
      jobs_by_user_(capacity),
      failures_by_user_(capacity) {}

void UserHistory::record_job(std::uint32_t user_id, bool system_failed) {
  jobs_by_user_.add(user_id);
  ++jobs_total_;
  if (system_failed) {
    failures_by_user_.add(user_id);
    ++failures_total_;
  }
}

double UserHistory::propensity_ratio(std::uint32_t user_id) const {
  if (jobs_total_ == 0 || failures_total_ == 0) return 1.0;
  const auto jobs = jobs_by_user_.find(user_id);
  if (!jobs || jobs->count == 0) return 1.0;  // unmonitored: assume average
  const auto failures = failures_by_user_.find(user_id);
  const double user_rate =
      static_cast<double>(failures ? failures->count : 0) /
      static_cast<double>(jobs->count);
  const double global_rate = static_cast<double>(failures_total_) /
                             static_cast<double>(jobs_total_);
  return std::clamp(user_rate / global_rate, 0.0, cap_);
}

// ---- JobRiskScorer -----------------------------------------------------

JobRiskScorer::JobRiskScorer(const RiskConfig& config,
                             const topology::MachineConfig& machine)
    : config_(config), machine_(machine) {
  if (config_.task_decay_tau_seconds <= 0)
    throw failmine::DomainError("task decay tau must be positive");
  if (config_.max_live_jobs == 0)
    throw failmine::DomainError("max_live_jobs must be positive");
}

double JobRiskScorer::decayed_task_score(const LiveJob& job,
                                         util::UnixSeconds t) const {
  if (t <= job.last_update) return job.task_score;
  return job.task_score *
         std::exp(-static_cast<double>(t - job.last_update) /
                  config_.task_decay_tau_seconds);
}

void JobRiskScorer::evict_stalest() {
  auto stalest = live_.begin();
  for (auto it = live_.begin(); it != live_.end(); ++it)
    if (it->second.last_update < stalest->second.last_update ||
        (it->second.last_update == stalest->second.last_update &&
         it->first < stalest->first))
      stalest = it;
  live_.erase(stalest);
  ++evictions_;
}

void JobRiskScorer::observe_task(const tasklog::TaskRecord& task,
                                 util::UnixSeconds t) {
  auto it = live_.find(task.job_id);
  if (it == live_.end()) {
    // Same-stamp task of a job already scored at `t`: its job record
    // sorted first and retired the entry. Don't resurrect the dead.
    if (t == last_retired_time_ &&
        std::find(retired_now_.begin(), retired_now_.end(), task.job_id) !=
            retired_now_.end())
      return;
    if (live_.size() >= config_.max_live_jobs) evict_stalest();
    LiveJob fresh;
    fresh.job_id = task.job_id;
    fresh.first_seen = t;
    fresh.last_update = t;
    it = live_.emplace(task.job_id, fresh).first;
  }
  LiveJob& job = it->second;
  job.task_score = decayed_task_score(job, t);
  job.last_update = std::max(job.last_update, t);
  ++job.tasks_seen;
  if (task.failed()) {
    ++job.tasks_failed;
    job.task_score += config_.task_fail_weight;
    if (job.flagged_at == 0 && job.task_score >= config_.live_flag_threshold)
      job.flagged_at = t;
  }
}

double JobRiskScorer::partition_sum(const LocationPressure& pressure,
                                    const joblog::JobRecord& job,
                                    util::UnixSeconds t) const {
  // A record with no node count has no spatial footprint to read.
  if (job.nodes_used == 0) return 0.0;
  const int first = job.partition_first_midplane;
  const int count = topology::midplanes_for_nodes(job.nodes_used, machine_);
  double sum = 0.0;
  for (int mp = first; mp < first + count; ++mp)
    sum += pressure.value_at(mp, t);
  return sum;
}

RiskAssessment JobRiskScorer::score_job_end(const joblog::JobRecord& job,
                                            util::UnixSeconds t,
                                            const LocationPressure& warn_pressure,
                                            const LocationPressure& health,
                                            const UserHistory& users) {
  RiskAssessment a;

  const auto it = live_.find(job.job_id);
  if (it != live_.end()) {
    const LiveJob& live = it->second;
    a.task_component = config_.w_task * decayed_task_score(live, t);
    if (live.flagged_at != 0) {
      a.flagged_live = true;
      a.flag_lead_seconds = t - live.flagged_at;
    }
  }

  a.warn_component = config_.w_warn * partition_sum(warn_pressure, job, t);
  a.health_component = config_.w_health * partition_sum(health, job, t);
  a.user_component =
      config_.w_user *
      std::max(0.0, users.propensity_ratio(job.user_id) - 1.0);
  a.risk = a.task_component + a.warn_component + a.user_component +
           a.health_component;
  a.flagged = a.flagged_live || a.risk >= config_.flag_threshold;

  if (it != live_.end()) live_.erase(it);
  if (t != last_retired_time_) {
    last_retired_time_ = t;
    retired_now_.clear();
  }
  retired_now_.push_back(job.job_id);
  return a;
}

void JobRiskScorer::record_outcome(const RiskAssessment& assessment,
                                   bool failed) {
  ++jobs_scored_;
  if (failed) {
    ++failed_jobs_;
    risk_sum_failed_ += assessment.risk;
    if (assessment.flagged) {
      ++tp_;
      // Only a live (task-signal) flag carries real advance warning; a
      // risk-threshold flag at the end record has zero lead by design.
      if (assessment.flagged_live)
        flag_leads_.insert(static_cast<double>(assessment.flag_lead_seconds));
    } else {
      ++fn_;
    }
  } else {
    risk_sum_ok_ += assessment.risk;
    if (assessment.flagged)
      ++fp_;
    else
      ++tn_;
  }
}

std::vector<LiveJob> JobRiskScorer::top_live(std::size_t k,
                                             util::UnixSeconds t) const {
  std::vector<LiveJob> jobs;
  jobs.reserve(live_.size());
  for (const auto& [id, job] : live_) {
    LiveJob decayed = job;
    decayed.task_score = decayed_task_score(job, t);
    jobs.push_back(decayed);
  }
  std::sort(jobs.begin(), jobs.end(), [](const LiveJob& a, const LiveJob& b) {
    if (a.task_score != b.task_score) return a.task_score > b.task_score;
    return a.job_id < b.job_id;
  });
  if (jobs.size() > k) jobs.resize(k);
  return jobs;
}

double JobRiskScorer::precision() const {
  const std::uint64_t flagged = tp_ + fp_;
  return flagged > 0
             ? static_cast<double>(tp_) / static_cast<double>(flagged)
             : 0.0;
}

double JobRiskScorer::recall() const {
  const std::uint64_t failed = tp_ + fn_;
  return failed > 0 ? static_cast<double>(tp_) / static_cast<double>(failed)
                    : 0.0;
}

double JobRiskScorer::mean_risk_failed() const {
  return failed_jobs_ > 0
             ? risk_sum_failed_ / static_cast<double>(failed_jobs_)
             : 0.0;
}

double JobRiskScorer::mean_risk_ok() const {
  const std::uint64_t ok = jobs_scored_ - failed_jobs_;
  return ok > 0 ? risk_sum_ok_ / static_cast<double>(ok) : 0.0;
}

}  // namespace failmine::predict
