// failmine/predict/precursor.hpp
//
// Online WARN -> FATAL precursor mining over the watermark-ordered RAS
// stream — the streaming adaptation of core::warning_lead_times (X02)
// and the category co-occurrence study (X07).
//
// The miner keeps three sliding structures:
//  * a WARN ring covering the precursor horizon behind the earliest
//    still-unresolved interruption;
//  * a pending-interruption queue: its own StreamingInterruptions clone
//    of the pipeline's clustering opens a cluster per deduplicated fatal
//    interruption, but the precursor search for a cluster first seen at
//    time T is DEFERRED until the watermark passes T — a WARN stamped at
//    exactly T may still arrive after the fatal under skewed replay, and
//    the batch search window is inclusive (warn.timestamp <= T). This is
//    the watermark-time (not arrival-time) scoring window that makes the
//    streamed lead-time distribution bitwise-equal to X02's batch result
//    even under seeded skew shuffle;
//  * a pending-alert queue: a WARN whose category has proven predictive
//    (chosen-precursor hits / category WARNs >= alert_min_score) raises
//    an alert, graded when the horizon ahead of it has fully streamed
//    past: matched by a similar interruption (true positive, with the
//    achieved lead) or not (false positive). Precision and recall are
//    reported at the configured fixed lead-time horizons.
//
// Single-threaded by contract: driven by the router via PredictOperator
// (see stream/router_operator.hpp).

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iterator>
#include <limits>
#include <vector>

#include "core/lead_time.hpp"
#include "predict/config.hpp"
#include "raslog/event.hpp"
#include "stream/operators.hpp"

namespace failmine::predict {

/// Live per-category precursor statistics.
struct CategoryScore {
  std::uint64_t warns = 0;  ///< WARNs of this category seen so far
  std::uint64_t hits = 0;   ///< times it supplied a cluster's precursor

  double score() const {
    return warns == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(warns);
  }
};

class PrecursorMiner {
 public:
  explicit PrecursorMiner(const PredictConfig& config);

  /// What one RAS event did, for the caller's cross-component wiring.
  struct RasOutcome {
    bool cluster_opened = false;  ///< a new deduplicated interruption
    bool alerted = false;         ///< this WARN raised an alert
  };

  /// Advances the miner's clock to watermark time `t`: resolves every
  /// pending interruption strictly older than `t` (its inclusive WARN
  /// window is then complete), then grades alerts whose match horizon
  /// has fully passed, then prunes the WARN ring. Call before observing
  /// any record stamped `t`.
  void advance(util::UnixSeconds t);

  /// Feeds one RAS event (any severity) in watermark order.
  RasOutcome observe_ras(const raslog::RasEvent& event);

  /// End of stream: resolves and grades everything still pending.
  void finish();

  // -- results ----------------------------------------------------------

  /// The streamed lead-time distribution in core::warning_lead_times's
  /// result shape (identical on the same stream — the parity anchor).
  core::LeadTimeResult lead_time_result() const;

  const std::vector<double>& leads() const { return leads_; }
  std::uint64_t clusters_resolved() const {
    return with_precursor_ + without_precursor_;
  }
  std::uint64_t warns_seen() const { return warns_seen_; }

  const std::array<CategoryScore, std::size(raslog::kAllCategories)>&
  category_scores() const {
    return categories_;
  }

  /// Recall side: interruptions covered by an alert at lead >= L, per
  /// configured horizon (parallel to config.lead_horizons).
  std::uint64_t clusters_alerted() const { return clusters_alerted_; }
  const std::vector<std::uint64_t>& clusters_alerted_at() const {
    return clusters_alerted_at_;
  }

  /// Precision side: graded alerts and how many matched an interruption
  /// (overall and at lead >= L per horizon).
  std::uint64_t alerts_emitted() const { return alerts_emitted_; }
  std::uint64_t alerts_graded() const { return alerts_graded_; }
  std::uint64_t alerts_matched() const { return alerts_matched_; }
  const std::vector<std::uint64_t>& alerts_matched_at() const {
    return alerts_matched_at_;
  }

  std::size_t pending_clusters() const { return pending_.size(); }
  std::size_t pending_alerts() const { return alerts_.size(); }
  std::size_t warn_ring_size() const { return warns_.size(); }

 private:
  /// Slim retained form of a WARN (drops the free text; keeps exactly
  /// what the similarity check and attribution need).
  struct WarnEntry {
    util::UnixSeconds time = 0;
    topology::Location location = topology::Location::rack(0, 0);
    raslog::Category category = raslog::Category::kSoftware;
    std::string message_id;
  };

  struct PendingCluster {
    util::UnixSeconds first_time = 0;
    raslog::RasEvent representative;
  };

  struct PendingAlert {
    util::UnixSeconds time = 0;
    topology::Location location = topology::Location::rack(0, 0);
    std::string message_id;
    std::int64_t best_lead = -1;  ///< best matched lead so far, -1 = none
  };

  void resolve(const PendingCluster& cluster);
  void grade(const PendingAlert& alert);
  bool matches(const topology::Location& location,
               const std::string& message_id,
               const raslog::RasEvent& representative) const;
  util::UnixSeconds earliest_deadline() const;
  void prune_warns(util::UnixSeconds t);

  std::int64_t horizon_;
  double alert_min_score_;
  std::uint64_t alert_min_warns_;
  std::vector<std::int64_t> lead_horizons_;
  core::FilterConfig similarity_;  ///< spatial_level only, as in X02

  stream::StreamingInterruptions clustering_;
  std::deque<WarnEntry> warns_;
  std::deque<PendingCluster> pending_;
  std::deque<PendingAlert> alerts_;

  /// Earliest watermark at which advance() has real work (the minimum
  /// pending-cluster / alert-grading deadline). advance(t) with
  /// t <= wake_at_ is a single compare — the common case on a stream
  /// where most records are not RAS events.
  util::UnixSeconds wake_at_ = std::numeric_limits<util::UnixSeconds>::max();

  std::array<CategoryScore, std::size(raslog::kAllCategories)> categories_{};
  std::uint64_t warns_seen_ = 0;

  std::vector<core::Precursor> per_interruption_;
  std::vector<double> leads_;
  std::uint64_t with_precursor_ = 0;
  std::uint64_t without_precursor_ = 0;

  std::uint64_t clusters_alerted_ = 0;
  std::vector<std::uint64_t> clusters_alerted_at_;
  std::uint64_t alerts_emitted_ = 0;
  std::uint64_t alerts_graded_ = 0;
  std::uint64_t alerts_matched_ = 0;
  std::vector<std::uint64_t> alerts_matched_at_;
};

}  // namespace failmine::predict
