#include "predict/precursor.hpp"

#include <algorithm>

#include "core/event_filter.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::predict {

namespace {

std::size_t category_index(raslog::Category category) {
  return static_cast<std::size_t>(category);
}

}  // namespace

PrecursorMiner::PrecursorMiner(const PredictConfig& config)
    : horizon_(config.horizon_seconds),
      alert_min_score_(config.alert_min_score),
      alert_min_warns_(config.alert_min_category_warns),
      lead_horizons_(config.lead_horizons),
      clustering_(config.filter) {
  if (horizon_ <= 0)
    throw failmine::DomainError("predict horizon must be positive");
  similarity_.spatial_level = config.spatial_level;
  clusters_alerted_at_.assign(lead_horizons_.size(), 0);
  alerts_matched_at_.assign(lead_horizons_.size(), 0);
}

bool PrecursorMiner::matches(const topology::Location& location,
                             const std::string& message_id,
                             const raslog::RasEvent& representative) const {
  // Route through the exact batch predicate (X02 parity), probing with a
  // minimal event carrying the only fields the predicate reads.
  raslog::RasEvent probe;
  probe.message_id = message_id;
  probe.location = location;
  return core::spatially_similar(probe, representative, similarity_);
}

void PrecursorMiner::resolve(const PendingCluster& cluster) {
  // Latest WARN in [first_time - horizon, first_time] spatially similar
  // to the representative — the same "keep the latest match" walk as
  // core::warning_lead_times, run backwards so it can stop at the first
  // hit.
  const util::UnixSeconds window_start = cluster.first_time - horizon_;
  const WarnEntry* best = nullptr;
  for (auto it = warns_.rbegin(); it != warns_.rend(); ++it) {
    if (it->time > cluster.first_time) continue;
    if (it->time < window_start) break;  // ring is time-ordered
    if (matches(it->location, it->message_id, cluster.representative)) {
      best = &*it;
      break;
    }
  }

  core::Precursor p;
  p.interruption_time = cluster.first_time;
  if (best != nullptr) {
    p.lead_seconds = cluster.first_time - best->time;
    p.warn_message_id = best->message_id;
    ++with_precursor_;
    leads_.push_back(static_cast<double>(*p.lead_seconds));
    ++categories_[category_index(best->category)].hits;
  } else {
    ++without_precursor_;
  }
  per_interruption_.push_back(std::move(p));

  // Grade-side bookkeeping: which pending alerts predicted this
  // interruption, and with how much lead? (Every alert whose window
  // covers this cluster is still pending — alerts outlive the clusters
  // they can match, see advance().)
  std::int64_t best_alert_lead = -1;
  for (PendingAlert& alert : alerts_) {
    if (alert.time > cluster.first_time) break;  // queue is time-ordered
    if (alert.time < window_start) continue;
    if (!matches(alert.location, alert.message_id, cluster.representative))
      continue;
    const std::int64_t lead = cluster.first_time - alert.time;
    alert.best_lead = std::max(alert.best_lead, lead);
    best_alert_lead = std::max(best_alert_lead, lead);
  }
  if (best_alert_lead >= 0) {
    ++clusters_alerted_;
    for (std::size_t i = 0; i < lead_horizons_.size(); ++i)
      if (best_alert_lead >= lead_horizons_[i]) ++clusters_alerted_at_[i];
  }
}

void PrecursorMiner::grade(const PendingAlert& alert) {
  ++alerts_graded_;
  if (alert.best_lead < 0) return;
  ++alerts_matched_;
  for (std::size_t i = 0; i < lead_horizons_.size(); ++i)
    if (alert.best_lead >= lead_horizons_[i]) ++alerts_matched_at_[i];
}

util::UnixSeconds PrecursorMiner::earliest_deadline() const {
  util::UnixSeconds wake = std::numeric_limits<util::UnixSeconds>::max();
  if (!pending_.empty()) wake = pending_.front().first_time;
  if (!alerts_.empty())
    wake = std::min(wake, alerts_.front().time + horizon_);
  return wake;
}

void PrecursorMiner::prune_warns(util::UnixSeconds t) {
  // The WARN ring only needs to reach back one horizon behind the
  // earliest unresolved interruption (or behind `t` when idle).
  const util::UnixSeconds keep_from =
      (pending_.empty() ? t : pending_.front().first_time) - horizon_;
  while (!warns_.empty() && warns_.front().time < keep_from)
    warns_.pop_front();
}

void PrecursorMiner::advance(util::UnixSeconds t) {
  // Fast path: nothing pending is due yet. Ring pruning rides on the
  // WARN-arrival path instead, so the whole call is one compare for the
  // vast majority of records.
  if (t <= wake_at_) return;
  // 1. Interruptions first seen strictly before `t` have their inclusive
  //    WARN window complete (any warn stamped at first_time has already
  //    streamed past in watermark order).
  while (!pending_.empty() && pending_.front().first_time < t) {
    resolve(pending_.front());
    pending_.pop_front();
  }
  // 2. Alerts whose whole match horizon lies strictly behind `t` are
  //    final: every interruption they could still match (first_time <=
  //    alert.time + horizon < t) was resolved in step 1.
  while (!alerts_.empty() && alerts_.front().time + horizon_ < t) {
    grade(alerts_.front());
    alerts_.pop_front();
  }
  prune_warns(t);
  wake_at_ = earliest_deadline();
}

PrecursorMiner::RasOutcome PrecursorMiner::observe_ras(
    const raslog::RasEvent& event) {
  RasOutcome outcome;

  if (event.severity == raslog::Severity::kWarn) {
    CategoryScore& cat = categories_[category_index(event.category)];
    ++cat.warns;
    ++warns_seen_;
    // A category only alerts once it has been predictive at least once;
    // a zero-hit score of 0.0 must not clear an alert_min_score of 0.
    if (cat.hits > 0 && cat.warns >= alert_min_warns_ &&
        cat.score() >= alert_min_score_) {
      PendingAlert alert;
      alert.time = event.timestamp;
      alert.location = event.location;
      alert.message_id = event.message_id;
      alerts_.push_back(std::move(alert));
      ++alerts_emitted_;
      outcome.alerted = true;
      wake_at_ = std::min(wake_at_, event.timestamp + horizon_);
    }
    WarnEntry entry;
    entry.time = event.timestamp;
    entry.location = event.location;
    entry.category = event.category;
    entry.message_id = event.message_id;
    warns_.push_back(std::move(entry));
    prune_warns(event.timestamp);
  }

  // The clustering clone ignores non-matching severities itself. A grown
  // cluster count means this event opened a new interruption, whose
  // representative (earliest member) is the event itself.
  const std::uint64_t before = clustering_.interruptions();
  clustering_.add(event);
  if (clustering_.interruptions() > before) {
    PendingCluster cluster;
    cluster.first_time = event.timestamp;
    cluster.representative = event;
    pending_.push_back(std::move(cluster));
    outcome.cluster_opened = true;
    wake_at_ = std::min(wake_at_, event.timestamp);
  }
  return outcome;
}

void PrecursorMiner::finish() {
  while (!pending_.empty()) {
    resolve(pending_.front());
    pending_.pop_front();
  }
  while (!alerts_.empty()) {
    grade(alerts_.front());
    alerts_.pop_front();
  }
  warns_.clear();
  wake_at_ = std::numeric_limits<util::UnixSeconds>::max();
}

core::LeadTimeResult PrecursorMiner::lead_time_result() const {
  core::LeadTimeResult result;
  result.per_interruption = per_interruption_;
  result.with_precursor = with_precursor_;
  result.without_precursor = without_precursor_;
  const std::uint64_t total = with_precursor_ + without_precursor_;
  result.coverage = total > 0 ? static_cast<double>(with_precursor_) /
                                    static_cast<double>(total)
                              : 0.0;
  if (!leads_.empty()) {
    result.median_lead_seconds = stats::median(leads_);
    result.mean_lead_seconds = stats::mean(leads_);
  }
  return result;
}

}  // namespace failmine::predict
