// failmine/predict/policy.hpp
//
// Adaptive checkpoint policy, scored online against the sim twin's
// ground truth.
//
// The static X08 advisor computes one Daly-optimal interval per
// allocation size from the whole log's hazard. The online policy does
// the same computation incrementally — the hazard estimate is the
// running system-kills / node-seconds ratio over jobs scored SO FAR (it
// converges to core::estimate_hazard's batch value at end of stream) —
// and then scales each job's effective MTBF down by its live risk
// multiplier, so high-risk jobs checkpoint more aggressively.
//
// Every job end is scored under three policies with the recorded
// outcome as ground truth:
//   none      lose the whole runtime if the system killed the job;
//   static    checkpoint every tau_s = daly(delta, M_job): pay
//             floor(R/tau_s) writes, lose at most the last segment;
//   adaptive  same, at tau_a = daly(delta, M_job / risk_multiplier),
//             clamped to the configured interval bounds.
// Waste is charged in core-hours (nodes * cores/node * seconds / 3600).
// "Saved vs static" is the P01 headline.
//
// Cold start: until the first system kill is observed the hazard is
// unknown; the policy falls back to the interruption-interval rate from
// the streaming GK sketch of inter-interruption gaps (>= 2 clusters),
// else recommends no checkpoints.

#pragma once

#include <cstdint>

#include "joblog/job.hpp"
#include "predict/config.hpp"
#include "stream/quantile_sketch.hpp"
#include "topology/machine.hpp"

namespace failmine::predict {

/// Accumulated cost of one policy over all scored jobs.
struct PolicyCost {
  std::uint64_t jobs = 0;             ///< jobs scored under the policy
  std::uint64_t checkpointed = 0;     ///< jobs given a finite interval
  double overhead_core_hours = 0.0;   ///< checkpoint writes
  double lost_core_hours = 0.0;       ///< recompute after system kills
  double interval_sum_seconds = 0.0;  ///< over checkpointed jobs

  double waste_core_hours() const {
    return overhead_core_hours + lost_core_hours;
  }
  double mean_interval_seconds() const {
    return checkpointed > 0
               ? interval_sum_seconds / static_cast<double>(checkpointed)
               : 0.0;
  }
};

/// One job's recommendation (what /predict shows for at-risk jobs).
struct PolicyDecision {
  double static_interval_seconds = 0.0;    ///< 0 = no checkpoints
  double adaptive_interval_seconds = 0.0;  ///< 0 = no checkpoints
  double risk_multiplier = 1.0;
  double job_mtbf_seconds = 0.0;  ///< 0 = hazard unknown
};

class CheckpointPolicy {
 public:
  CheckpointPolicy(const PolicyConfig& config,
                   const topology::MachineConfig& machine);

  /// Feeds one deduplicated interruption (cluster open) time.
  void on_interruption(util::UnixSeconds first_time);

  /// Scores one finished job under all three policies and updates the
  /// hazard exposure afterwards (the decision never sees the job's own
  /// outcome).
  PolicyDecision score_job(const joblog::JobRecord& job, bool system_failed,
                           double risk_multiplier);

  // -- scoreboard --------------------------------------------------------
  const PolicyCost& cost_none() const { return none_; }
  const PolicyCost& cost_static() const { return static_; }
  const PolicyCost& cost_adaptive() const { return adaptive_; }
  double saved_vs_static_core_hours() const {
    return static_.waste_core_hours() - adaptive_.waste_core_hours();
  }
  double saved_vs_none_core_hours() const {
    return none_.waste_core_hours() - adaptive_.waste_core_hours();
  }

  // -- hazard state ------------------------------------------------------
  /// Running hazard per node-second (0 until the first system kill; then
  /// identical to core::estimate_hazard over the jobs scored so far, up
  /// to floating-point summation order).
  double hazard_per_node_second() const;
  std::uint64_t system_kills() const { return system_kills_; }
  double node_seconds() const { return node_seconds_; }
  const stream::GkQuantileSketch& interval_sketch() const {
    return intervals_;
  }

 private:
  /// Job MTBF in seconds from the best available hazard source, or 0
  /// when nothing is known yet.
  double job_mtbf(std::uint32_t nodes) const;

  /// Charges `job` run under a fixed interval (0 = none) to `cost`.
  void charge(PolicyCost& cost, const joblog::JobRecord& job,
              double interval_seconds, bool system_failed) const;

  PolicyConfig config_;
  topology::MachineConfig machine_;

  std::uint64_t system_kills_ = 0;
  double node_seconds_ = 0.0;

  stream::GkQuantileSketch intervals_;  ///< inter-interruption gaps, seconds
  std::uint64_t interruptions_ = 0;
  util::UnixSeconds first_interruption_ = 0;
  util::UnixSeconds last_interruption_ = 0;

  PolicyCost none_;
  PolicyCost static_;
  PolicyCost adaptive_;
};

}  // namespace failmine::predict
