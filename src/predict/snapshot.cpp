#include "predict/snapshot.hpp"

#include "obs/json.hpp"

namespace failmine::predict {

namespace {

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true) {
  obs::append_json_string(out, key);
  out += ':';
  out += std::to_string(v);
  if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, double v,
               bool comma = true) {
  obs::append_json_string(out, key);
  out += ':';
  out += obs::json_number(v);
  if (comma) out += ',';
}

}  // namespace

std::string PredictSnapshot::to_json() const {
  std::string out;
  out.reserve(2048);
  out += '{';

  append_kv(out, "records", records);
  append_kv(out, "warns", warns);
  append_kv(out, "interruptions", interruptions);
  append_kv(out, "alerts", alerts);
  obs::append_json_string(out, "finished");
  out += finished ? ":true," : ":false,";

  obs::append_json_string(out, "lead_time");
  out += ":{";
  append_kv(out, "with_precursor", with_precursor);
  append_kv(out, "without_precursor", without_precursor);
  append_kv(out, "coverage", coverage);
  append_kv(out, "median_seconds", median_lead_seconds);
  append_kv(out, "mean_seconds", mean_lead_seconds);
  append_kv(out, "p10_seconds", lead_p10_seconds);
  append_kv(out, "p90_seconds", lead_p90_seconds);
  append_kv(out, "pending_clusters",
            static_cast<std::uint64_t>(pending_clusters));
  append_kv(out, "pending_alerts", static_cast<std::uint64_t>(pending_alerts),
            /*comma=*/false);
  out += "},";

  obs::append_json_string(out, "alerting");
  out += ":{";
  append_kv(out, "emitted", alerts);
  append_kv(out, "graded", alerts_graded);
  append_kv(out, "matched", alerts_matched);
  append_kv(out, "precision", alert_precision);
  append_kv(out, "clusters_alerted", clusters_alerted);
  append_kv(out, "recall", alert_recall);
  obs::append_json_string(out, "horizons");
  out += ":[";
  for (std::size_t i = 0; i < horizons.size(); ++i) {
    const HorizonStat& h = horizons[i];
    out += '{';
    append_kv(out, "horizon_seconds",
              static_cast<std::uint64_t>(h.horizon_seconds));
    append_kv(out, "clusters_predicted", h.clusters_predicted);
    append_kv(out, "recall", h.recall);
    append_kv(out, "alerts_matched", h.alerts_matched);
    append_kv(out, "precision", h.precision, /*comma=*/false);
    out += '}';
    if (i + 1 < horizons.size()) out += ',';
  }
  out += "],";
  obs::append_json_string(out, "categories");
  out += ":[";
  for (std::size_t i = 0; i < categories.size(); ++i) {
    const CategoryStat& c = categories[i];
    out += '{';
    obs::append_json_string(out, "category");
    out += ':';
    obs::append_json_string(out, c.category);
    out += ',';
    append_kv(out, "warns", c.warns);
    append_kv(out, "hits", c.hits);
    append_kv(out, "score", c.score);
    obs::append_json_string(out, "alerting");
    out += c.alerting ? ":true" : ":false";
    out += '}';
    if (i + 1 < categories.size()) out += ',';
  }
  out += "]},";

  obs::append_json_string(out, "risk");
  out += ":{";
  append_kv(out, "jobs_scored", jobs_scored);
  append_kv(out, "true_positives", risk_tp);
  append_kv(out, "false_positives", risk_fp);
  append_kv(out, "false_negatives", risk_fn);
  append_kv(out, "true_negatives", risk_tn);
  append_kv(out, "precision", risk_precision);
  append_kv(out, "recall", risk_recall);
  append_kv(out, "flag_lead_p50_seconds", flag_lead_p50_seconds);
  append_kv(out, "flag_lead_p90_seconds", flag_lead_p90_seconds);
  append_kv(out, "mean_risk_failed", mean_risk_failed);
  append_kv(out, "mean_risk_ok", mean_risk_ok);
  append_kv(out, "live_jobs", live_jobs);
  append_kv(out, "evictions", live_evictions);
  obs::append_json_string(out, "top_at_risk");
  out += ":[";
  for (std::size_t i = 0; i < top_at_risk.size(); ++i) {
    const TopJobStat& j = top_at_risk[i];
    out += '{';
    append_kv(out, "job_id", j.job_id);
    append_kv(out, "task_score", j.task_score);
    append_kv(out, "tasks_seen", static_cast<std::uint64_t>(j.tasks_seen));
    append_kv(out, "tasks_failed", static_cast<std::uint64_t>(j.tasks_failed));
    obs::append_json_string(out, "flagged");
    out += j.flagged ? ":true," : ":false,";
    append_kv(out, "first_seen",
              static_cast<std::uint64_t>(j.first_seen < 0 ? 0 : j.first_seen),
              /*comma=*/false);
    out += '}';
    if (i + 1 < top_at_risk.size()) out += ',';
  }
  out += "]},";

  obs::append_json_string(out, "policy");
  out += ":{";
  append_kv(out, "hazard_per_node_second", hazard_per_node_second);
  append_kv(out, "system_kills", system_kills);
  append_kv(out, "node_seconds", node_seconds);
  append_kv(out, "interval_samples", interval_samples);
  append_kv(out, "interval_p50_days", interval_p50_days);
  append_kv(out, "interval_p90_days", interval_p90_days);
  obs::append_json_string(out, "costs");
  out += ":[";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const PolicyRow& p = policies[i];
    out += '{';
    obs::append_json_string(out, "name");
    out += ':';
    obs::append_json_string(out, p.name);
    out += ',';
    append_kv(out, "jobs", p.jobs);
    append_kv(out, "checkpointed", p.checkpointed);
    append_kv(out, "overhead_core_hours", p.overhead_core_hours);
    append_kv(out, "lost_core_hours", p.lost_core_hours);
    append_kv(out, "waste_core_hours", p.waste_core_hours);
    append_kv(out, "mean_interval_seconds", p.mean_interval_seconds,
              /*comma=*/false);
    out += '}';
    if (i + 1 < policies.size()) out += ',';
  }
  out += "],";
  append_kv(out, "saved_vs_static_core_hours", saved_vs_static_core_hours);
  append_kv(out, "saved_vs_none_core_hours", saved_vs_none_core_hours,
            /*comma=*/false);
  out += "}}";
  return out;
}

}  // namespace failmine::predict
