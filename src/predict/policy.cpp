#include "predict/policy.hpp"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.hpp"
#include "util/error.hpp"

namespace failmine::predict {

CheckpointPolicy::CheckpointPolicy(const PolicyConfig& config,
                                   const topology::MachineConfig& machine)
    : config_(config),
      machine_(machine),
      intervals_(config.quantile_epsilon) {
  if (config_.checkpoint_write_seconds <= 0)
    throw failmine::DomainError("checkpoint write cost must be positive");
  if (config_.min_interval_seconds <= 0 ||
      config_.max_interval_seconds < config_.min_interval_seconds)
    throw failmine::DomainError("policy interval bounds are inverted");
  if (config_.max_risk_multiplier < 1.0)
    throw failmine::DomainError("max risk multiplier must be >= 1");
}

void CheckpointPolicy::on_interruption(util::UnixSeconds first_time) {
  if (interruptions_ == 0)
    first_interruption_ = first_time;
  else
    intervals_.insert(static_cast<double>(first_time - last_interruption_));
  last_interruption_ = first_time;
  ++interruptions_;
}

double CheckpointPolicy::hazard_per_node_second() const {
  if (system_kills_ == 0 || node_seconds_ <= 0) return 0.0;
  return static_cast<double>(system_kills_) / node_seconds_;
}

double CheckpointPolicy::job_mtbf(std::uint32_t nodes) const {
  if (nodes == 0) return 0.0;
  const double hazard = hazard_per_node_second();
  if (hazard > 0) return 1.0 / (hazard * static_cast<double>(nodes));
  // Cold start: derive a machine-level rate from the deduplicated
  // interruption arrivals (needs at least one gap), then scale exposure
  // to the job's share of the machine.
  if (interruptions_ >= 2 && last_interruption_ > first_interruption_) {
    const double mean_gap =
        static_cast<double>(last_interruption_ - first_interruption_) /
        static_cast<double>(interruptions_ - 1);
    const double machine_nodes = static_cast<double>(machine_.total_nodes());
    return mean_gap * machine_nodes / static_cast<double>(nodes);
  }
  return 0.0;
}

void CheckpointPolicy::charge(PolicyCost& cost, const joblog::JobRecord& job,
                              double interval_seconds,
                              bool system_failed) const {
  ++cost.jobs;
  const double runtime = static_cast<double>(job.runtime_seconds());
  const double core_seconds_per_second =
      static_cast<double>(job.nodes_used) *
      static_cast<double>(machine_.cores_per_node);

  double overhead_seconds = 0.0;
  double lost_seconds = 0.0;
  if (interval_seconds > 0 && interval_seconds < runtime) {
    ++cost.checkpointed;
    cost.interval_sum_seconds += interval_seconds;
    const double writes = std::floor(runtime / interval_seconds);
    overhead_seconds = writes * config_.checkpoint_write_seconds;
    if (system_failed)
      lost_seconds = std::fmod(runtime, interval_seconds);
  } else {
    // No checkpoints taken (policy "none", an interval past the runtime,
    // or an unknown hazard): a system kill loses the whole run.
    if (interval_seconds > 0) {
      ++cost.checkpointed;
      cost.interval_sum_seconds += interval_seconds;
    }
    if (system_failed) lost_seconds = runtime;
  }
  cost.overhead_core_hours +=
      overhead_seconds * core_seconds_per_second / 3600.0;
  cost.lost_core_hours += lost_seconds * core_seconds_per_second / 3600.0;
}

PolicyDecision CheckpointPolicy::score_job(const joblog::JobRecord& job,
                                           bool system_failed,
                                           double risk_multiplier) {
  PolicyDecision decision;
  decision.risk_multiplier =
      std::clamp(risk_multiplier, 1.0, config_.max_risk_multiplier);
  decision.job_mtbf_seconds = job_mtbf(job.nodes_used);

  if (decision.job_mtbf_seconds > 0) {
    const double delta = config_.checkpoint_write_seconds;
    decision.static_interval_seconds =
        std::clamp(core::daly_interval(delta, decision.job_mtbf_seconds),
                   config_.min_interval_seconds, config_.max_interval_seconds);
    decision.adaptive_interval_seconds = std::clamp(
        core::daly_interval(
            delta, decision.job_mtbf_seconds / decision.risk_multiplier),
        config_.min_interval_seconds, config_.max_interval_seconds);
  }

  charge(none_, job, 0.0, system_failed);
  charge(static_, job, decision.static_interval_seconds, system_failed);
  charge(adaptive_, job, decision.adaptive_interval_seconds, system_failed);

  // Update the hazard exposure only after deciding, so the decision for
  // this job never used its own outcome.
  node_seconds_ += static_cast<double>(job.nodes_used) *
                   static_cast<double>(job.runtime_seconds());
  if (system_failed) ++system_kills_;

  return decision;
}

}  // namespace failmine::predict
