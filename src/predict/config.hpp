// failmine/predict/config.hpp
//
// Configuration for the online failure-prediction subsystem, plus the
// canonical analysis constants shared between the offline experiment
// benches (X02 lead time, X07 co-occurrence, X08 checkpoint advisor) and
// the streaming predictor. Keeping the horizons / checkpoint-cost
// assumptions in exactly one place is what makes the offline tables and
// the online policy scoreboard comparable apples-to-apples (P01 vs X08).

#pragma once

#include <cstdint>
#include <vector>

#include "core/event_filter.hpp"
#include "topology/machine.hpp"

namespace failmine::predict {

// ---- canonical shared constants ---------------------------------------
// (consumed by bench_x02 / bench_x07 / bench_x08 / bench_p01 and by the
// PredictConfig defaults below)

/// The lead-time horizons the X02 table sweeps.
inline constexpr std::int64_t kLeadTimeHorizonsSeconds[] = {900, 3600, 7200,
                                                            86400};

/// The headline precursor-search horizon (X02's message table and the
/// online miner's default window).
inline constexpr std::int64_t kDefaultPrecursorHorizonSeconds = 7200;

/// Co-occurrence window between category events (X07's lift matrix).
inline constexpr std::int64_t kCooccurrenceWindowSeconds = 600;

/// Assumed checkpoint write cost (full memory dump through the I/O
/// subsystem), X08's delta.
inline constexpr double kCheckpointWriteSeconds = 600.0;

/// Reference runtime for the bare-run comparison in X08 and for the
/// adaptive policy's interval cap.
inline constexpr double kReferenceRuntimeSeconds = 48.0 * 3600.0;

// ---- subsystem configuration ------------------------------------------

/// Per-job risk scoring (see risk.hpp).
struct RiskConfig {
  /// Live task-failure score: weight added per failed task and the
  /// exponential decay constant applied between updates.
  double task_fail_weight = 1.0;
  double task_decay_tau_seconds = 3600.0;

  /// A live job whose decayed task score reaches this is flagged (the
  /// online prediction; lead = job end - first crossing).
  double live_flag_threshold = 1.0;

  /// Decay constants of the per-midplane pressure maps: recent WARNs
  /// (precursor pressure) and recent fatal interruptions (location
  /// health).
  double warn_pressure_tau_seconds =
      static_cast<double>(kDefaultPrecursorHorizonSeconds);
  double health_tau_seconds = 6.0 * 3600.0;

  /// Component weights of the end-of-job risk score
  ///   risk = w_task * task + w_warn * warn_pressure
  ///        + w_user * max(0, propensity - 1) + w_health * health.
  double w_task = 2.0;
  double w_warn = 0.5;
  double w_user = 1.0;
  double w_health = 1.0;

  /// End-of-job risk at or above this counts as "high risk" (also the
  /// normalization scale of the policy's risk multiplier).
  double flag_threshold = 2.0;

  /// Cap on the user-propensity ratio (user failure rate over the global
  /// rate) so one pathological user cannot dominate the score.
  double propensity_cap = 10.0;

  /// Monitored-key budget of the per-user space-saving sketches.
  std::size_t user_capacity = 512;

  /// Live-job table bound; the stalest entry is evicted beyond this.
  std::size_t max_live_jobs = 1 << 16;
};

/// Adaptive checkpoint policy (see policy.hpp).
struct PolicyConfig {
  double checkpoint_write_seconds = kCheckpointWriteSeconds;

  /// Recommended intervals are clamped to [min, max]: never checkpoint
  /// more often than a write takes, never less often than the reference
  /// runtime (beyond which the recommendation is "no checkpoints").
  double min_interval_seconds = kCheckpointWriteSeconds;
  double max_interval_seconds = kReferenceRuntimeSeconds;

  /// Cap of the risk multiplier applied to a job's effective MTBF.
  double max_risk_multiplier = 8.0;

  /// Rank-error bound of the interruption-interval quantile sketch.
  double quantile_epsilon = 0.005;
};

/// Top-level configuration of the PredictOperator.
struct PredictConfig {
  topology::MachineConfig machine = topology::MachineConfig::mira();

  /// Interruption clustering (must match the batch filter / the stream
  /// pipeline's filter for parity).
  core::FilterConfig filter;

  /// Precursor search: how far back from an interruption to look for a
  /// WARN, and how close in space it must be. Defaults match
  /// core::LeadTimeConfig so the streamed distribution equals X02.
  std::int64_t horizon_seconds = kDefaultPrecursorHorizonSeconds;
  topology::Level spatial_level = topology::Level::kMidplane;

  /// Fixed lead-time horizons at which alert precision/recall are
  /// reported (the P01 table).
  std::vector<std::int64_t> lead_horizons = {900, 3600};

  /// A WARN raises an alert when its category has been predictive at
  /// least once (hits > 0) and its live precursor score (chosen-precursor
  /// hits / category WARNs) reaches `alert_min_score` after at least
  /// `alert_min_category_warns` observations. WARNs vastly outnumber the
  /// interruptions they precede, so realistic scores sit well below 1e-2;
  /// the default admits every proven-predictive category and leaves the
  /// threshold as a selectivity knob.
  double alert_min_score = 0.0;
  std::uint64_t alert_min_category_warns = 25;

  RiskConfig risk;
  PolicyConfig policy;
};

}  // namespace failmine::predict
