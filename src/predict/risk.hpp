// failmine/predict/risk.hpp
//
// Per-job failure-risk scoring over the live stream.
//
// Three strictly-causal signal families fold into one score:
//  * task trouble — runjob task completions carry the job id, so a job's
//    own failed tasks are visible while it runs. A decayed per-job score
//    crossing `live_flag_threshold` flags the job online; the flag lead
//    (job end - first crossing) is the predictor's measured warning time
//    against ground truth (a system-caused exit at the end record);
//  * environment — two per-midplane exponentially-decayed pressure maps
//    (recent WARNs; recent fatal interruptions) evaluated over the job's
//    partition at its end record. Job records sort before the fatal
//    burst that kills them at the same timestamp, so end-time evaluation
//    never reads the failure it is predicting;
//  * history — space-saving sketches of jobs and system-caused failures
//    by user (the reused heavy-hitters machinery); a user's failure rate
//    relative to the global rate is their propensity ratio. The sketch
//    is updated AFTER the job is scored, keeping the signal causal.
//
// Single-threaded by contract, driven by PredictOperator.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "joblog/job.hpp"
#include "predict/config.hpp"
#include "stream/heavy_hitters.hpp"
#include "stream/quantile_sketch.hpp"
#include "tasklog/task.hpp"
#include "topology/location.hpp"
#include "topology/machine.hpp"

namespace failmine::predict {

/// Per-midplane exponentially-decayed event pressure. Bounded by the
/// machine's midplane count, so no eviction is needed: cells live in a
/// flat array grown on first touch, keeping the per-job partition scan
/// an index walk instead of hash probes.
class LocationPressure {
 public:
  explicit LocationPressure(double tau_seconds);

  void bump(int midplane, double amount, util::UnixSeconds t);
  double value_at(int midplane, util::UnixSeconds t) const;
  std::size_t tracked() const { return cells_.size(); }

 private:
  struct Cell {
    double value = 0.0;
    util::UnixSeconds last = 0;
  };
  double decayed(const Cell& cell, util::UnixSeconds t) const;

  double tau_;
  std::vector<Cell> cells_;  ///< indexed by global midplane
};

/// Streaming user failure-propensity from the heavy-hitters sketches.
class UserHistory {
 public:
  explicit UserHistory(std::size_t capacity, double propensity_cap);

  /// Accounts one finished job. Call AFTER scoring it.
  void record_job(std::uint32_t user_id, bool system_failed);

  /// User failure rate over the global rate, in [0, cap]. 1.0 when the
  /// user is unmonitored or no global signal exists yet.
  double propensity_ratio(std::uint32_t user_id) const;

  std::uint64_t jobs_total() const { return jobs_total_; }
  std::uint64_t failures_total() const { return failures_total_; }

 private:
  double cap_;
  stream::SpaceSavingSketch jobs_by_user_;
  stream::SpaceSavingSketch failures_by_user_;
  std::uint64_t jobs_total_ = 0;
  std::uint64_t failures_total_ = 0;
};

/// One scored job end.
struct RiskAssessment {
  double risk = 0.0;  ///< weighted component sum
  double task_component = 0.0;
  double warn_component = 0.0;
  double user_component = 0.0;
  double health_component = 0.0;
  bool flagged_live = false;          ///< task score crossed while running
  bool flagged = false;               ///< live flag OR risk >= flag_threshold
  std::int64_t flag_lead_seconds = 0; ///< end - first crossing (if flagged)
};

/// A currently-running job as seen through its task stream.
struct LiveJob {
  std::uint64_t job_id = 0;
  util::UnixSeconds first_seen = 0;
  util::UnixSeconds last_update = 0;
  double task_score = 0.0;  ///< decayed failed-task weight, as of last_update
  util::UnixSeconds flagged_at = 0;  ///< 0 = not flagged
  std::uint32_t tasks_seen = 0;
  std::uint32_t tasks_failed = 0;
};

class JobRiskScorer {
 public:
  JobRiskScorer(const RiskConfig& config,
                const topology::MachineConfig& machine);

  /// One task completion in watermark order.
  void observe_task(const tasklog::TaskRecord& task, util::UnixSeconds t);

  /// Scores a job at its end record and retires its live entry. The
  /// pressure maps and history are read-only here; the caller updates
  /// them afterwards.
  RiskAssessment score_job_end(const joblog::JobRecord& job,
                               util::UnixSeconds t,
                               const LocationPressure& warn_pressure,
                               const LocationPressure& health,
                               const UserHistory& users);

  /// Accounts the scored job against ground truth. The caller passes the
  /// outcome the subsystem predicts: whether the job ended system-caused
  /// (the interruption class checkpointing mitigates), not mere job
  /// failure — user-caused aborts are the user's bug, not the machine's.
  void record_outcome(const RiskAssessment& assessment, bool failed);

  // -- live state --------------------------------------------------------
  std::size_t live_jobs() const { return live_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  /// The `k` riskiest live jobs by decayed task score at time `t`
  /// (descending; job id ascending on ties for determinism).
  std::vector<LiveJob> top_live(std::size_t k, util::UnixSeconds t) const;

  // -- scoreboard --------------------------------------------------------
  std::uint64_t jobs_scored() const { return jobs_scored_; }
  std::uint64_t true_positives() const { return tp_; }
  std::uint64_t false_positives() const { return fp_; }
  std::uint64_t false_negatives() const { return fn_; }
  std::uint64_t true_negatives() const { return tn_; }
  double precision() const;
  double recall() const;
  double mean_risk_failed() const;
  double mean_risk_ok() const;
  const stream::GkQuantileSketch& flag_lead_sketch() const {
    return flag_leads_;
  }

 private:
  double decayed_task_score(const LiveJob& job, util::UnixSeconds t) const;
  double partition_sum(const LocationPressure& pressure,
                       const joblog::JobRecord& job, util::UnixSeconds t) const;
  void evict_stalest();

  RiskConfig config_;
  topology::MachineConfig machine_;
  std::unordered_map<std::uint64_t, LiveJob> live_;
  std::uint64_t evictions_ = 0;

  // Task records stamped at the exact second their job ended sort after
  // the job record (which scores and retires the live entry); remembering
  // the ids retired at the current timestamp keeps those post-mortem
  // tasks from resurrecting dead entries and bloating the live table.
  util::UnixSeconds last_retired_time_ = -1;
  std::vector<std::uint64_t> retired_now_;

  std::uint64_t jobs_scored_ = 0;
  std::uint64_t tp_ = 0, fp_ = 0, fn_ = 0, tn_ = 0;
  double risk_sum_failed_ = 0.0;
  double risk_sum_ok_ = 0.0;
  std::uint64_t failed_jobs_ = 0;
  stream::GkQuantileSketch flag_leads_;  ///< seconds, flagged true positives
};

}  // namespace failmine::predict
