// failmine/raslog/category.hpp
//
// Functional categories of RAS messages, used by the per-category
// breakdowns (E06) and by the fault model's rate tables.

#pragma once

#include <string>
#include <string_view>

namespace failmine::raslog {

enum class Category {
  kMemory,      ///< correctable/uncorrectable DRAM & cache errors
  kProcessor,   ///< core/chip faults, machine checks
  kNetwork,     ///< torus link errors, retransmits, link failures
  kIo,          ///< I/O node, PCIe, filesystem errors
  kSoftware,    ///< kernel/control-system software errors
  kPower,       ///< power domain faults
  kCooling,     ///< coolant flow/temperature faults
  kControl,     ///< control network / service actions
};

/// Canonical name ("MEMORY", "PROCESSOR", ...).
std::string category_name(Category category);

/// Parses the canonical name; throws ParseError.
Category category_from_name(std::string_view name);

inline constexpr Category kAllCategories[] = {
    Category::kMemory, Category::kProcessor, Category::kNetwork,
    Category::kIo,     Category::kSoftware,  Category::kPower,
    Category::kCooling, Category::kControl};

}  // namespace failmine::raslog
