// failmine/raslog/message_catalog.hpp
//
// Catalog of RAS message types.
//
// BG/Q RAS events carry an 8-hex-digit message id (e.g. "00040035") that
// determines the emitting component, the functional category, the severity
// and the hardware level the location code points at. Mira's production
// catalog has a few hundred ids; we model the 64 that dominate the counts
// in studies of this system class, with relative rate weights the fault
// model uses to draw a realistic severity/category mix (INFO-heavy, a thin
// FATAL tail concentrated in memory/network ids).

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "raslog/category.hpp"
#include "raslog/component.hpp"
#include "raslog/severity.hpp"
#include "topology/location.hpp"

namespace failmine::raslog {

/// Static description of one RAS message type.
struct MessageDef {
  std::string_view id;         ///< 8 hex digits, unique
  Component component;
  Category category;
  Severity severity;
  topology::Level level;       ///< hardware level of the location code
  double rate_weight;          ///< relative emission rate in the fault model
  bool job_fatal;              ///< kills jobs overlapping the location
  std::string_view text;       ///< human-readable message template
};

/// The full built-in catalog (stable order, unique ids).
std::span<const MessageDef> message_catalog();

/// Looks up a message definition by id; throws ParseError if unknown.
const MessageDef& message_by_id(std::string_view id);

/// True if the catalog contains `id`.
bool is_known_message(std::string_view id);

/// Number of catalog entries with the given severity.
std::size_t count_by_severity(Severity severity);

}  // namespace failmine::raslog
