// failmine/raslog/event.hpp
//
// One RAS event record plus the RasLog container with CSV round-tripping.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ingest/loader.hpp"
#include "raslog/category.hpp"
#include "raslog/component.hpp"
#include "raslog/severity.hpp"
#include "topology/location.hpp"
#include "topology/machine.hpp"
#include "util/time.hpp"

namespace failmine::util {
class FieldVec;
}  // namespace failmine::util

namespace failmine::raslog {

/// One event from the RAS log.
struct RasEvent {
  std::uint64_t record_id = 0;               ///< unique, ascending
  util::UnixSeconds timestamp = 0;
  std::string message_id;                    ///< 8-hex-digit catalog id
  Severity severity = Severity::kInfo;
  Component component = Component::kCnk;
  Category category = Category::kSoftware;
  topology::Location location = topology::Location::rack(0, 0);
  std::optional<std::uint64_t> job_id;       ///< control-system association
  std::string text;

  friend bool operator==(const RasEvent&, const RasEvent&) = default;
};

/// The RAS log CSV column order.
const std::vector<std::string>& ras_csv_header();

/// Parses one CSV row (ras_csv_header() order) into `out` in place,
/// validating the location against `config`. An empty job_id field
/// clears out.job_id, so a reused record never leaks the previous row's
/// association. Throws failmine::Error on invalid rows; `out` is
/// unspecified afterwards.
void parse_csv_row(const util::FieldVec& row,
                   const topology::MachineConfig& config, RasEvent& out);

/// In-memory RAS log: events in non-decreasing timestamp order.
class RasLog {
 public:
  RasLog() = default;

  /// Takes ownership; sorts by (timestamp, record_id).
  explicit RasLog(std::vector<RasEvent> events);

  const std::vector<RasEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Appends one event (re-sorting deferred until finalize()).
  void append(RasEvent event);

  /// Sorts by (timestamp, record_id); call after a batch of appends.
  void finalize();

  /// Events with the given severity, in time order.
  std::vector<RasEvent> filter_severity(Severity severity) const;

  /// Events in [begin, end).
  std::vector<RasEvent> filter_time(util::UnixSeconds begin,
                                    util::UnixSeconds end) const;

  /// Count per severity (indexed INFO, WARN, FATAL).
  std::array<std::uint64_t, 3> severity_counts() const;

  /// Writes the log as CSV. Throws IoError.
  void write_csv(const std::string& path) const;

  /// Reads a log written by write_csv, validating every field against the
  /// machine config and catalog. Throws ParseError / IoError.
  ///
  /// By default the file is loaded by the parallel mmap ingest engine
  /// (ingest/loader.hpp) with `options.threads` workers; `options.threads
  /// == 1` (or Engine::kSerial) selects the line-oriented serial reader.
  /// Both paths produce identical events, metrics and diagnostics.
  static RasLog read_csv(const std::string& path,
                         const topology::MachineConfig& config,
                         const ingest::LoadOptions& options = {},
                         ingest::Engine engine = ingest::Engine::kAuto);

  /// Streams a CSV log row by row without materializing it: `callback` is
  /// invoked once per event in file order. Returning false stops early.
  /// Memory use is O(1) in the log size — the right entry point for
  /// paper-scale (multi-GB) RAS logs.
  static void for_each_csv(const std::string& path,
                           const topology::MachineConfig& config,
                           const std::function<bool(const RasEvent&)>& callback);

 private:
  std::vector<RasEvent> events_;
};

}  // namespace failmine::raslog
