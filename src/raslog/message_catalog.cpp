#include "raslog/message_catalog.hpp"

#include <array>
#include <unordered_map>

#include "util/error.hpp"

namespace failmine::raslog {

namespace {

using topology::Level;

// Weights are relative emission rates. The catalog is deliberately
// INFO-heavy (correctable errors and state-change chatter dominate real
// RAS logs by orders of magnitude) with FATAL mass concentrated in a small
// number of memory/network/software ids — the property the
// similarity-based filter (core/event_filter) exploits.
constexpr std::array<MessageDef, 64> kCatalog = {{
    // --- Memory (DDR / BQC caches) -------------------------------------
    {"00010001", Component::kDdr, Category::kMemory, Severity::kInfo, Level::kComputeCard, 2600.0, false,
     "DDR correctable error summary on node"},
    {"00010002", Component::kDdr, Category::kMemory, Severity::kInfo, Level::kComputeCard, 900.0, false,
     "DDR single-symbol correctable error"},
    {"00010003", Component::kDdr, Category::kMemory, Severity::kWarn, Level::kComputeCard, 60.0, false,
     "DDR correctable error threshold exceeded"},
    {"00010004", Component::kDdr, Category::kMemory, Severity::kWarn, Level::kComputeCard, 22.0, false,
     "DDR chipkill event corrected"},
    {"00010005", Component::kDdr, Category::kMemory, Severity::kFatal, Level::kComputeCard, 2.2, true,
     "DDR uncorrectable memory error"},
    {"00010006", Component::kDdr, Category::kMemory, Severity::kFatal, Level::kComputeCard, 0.7, true,
     "DDR controller initialization failure"},
    {"00010101", Component::kBqc, Category::kMemory, Severity::kInfo, Level::kCore, 1400.0, false,
     "L2 cache correctable error"},
    {"00010102", Component::kBqc, Category::kMemory, Severity::kWarn, Level::kCore, 35.0, false,
     "L2 cache correctable error threshold"},
    {"00010103", Component::kBqc, Category::kMemory, Severity::kFatal, Level::kCore, 1.1, true,
     "L2 cache uncorrectable error"},
    {"00010104", Component::kBqc, Category::kMemory, Severity::kInfo, Level::kCore, 520.0, false,
     "L1P prefetch parity error corrected"},

    // --- Processor (BQC chip) ------------------------------------------
    {"00020001", Component::kBqc, Category::kProcessor, Severity::kInfo, Level::kCore, 310.0, false,
     "Processor core recoverable machine check"},
    {"00020002", Component::kBqc, Category::kProcessor, Severity::kWarn, Level::kCore, 18.0, false,
     "Processor core repeated recoverable machine checks"},
    {"00020003", Component::kBqc, Category::kProcessor, Severity::kFatal, Level::kCore, 0.9, true,
     "Processor core unrecoverable machine check"},
    {"00020004", Component::kBqc, Category::kProcessor, Severity::kFatal, Level::kComputeCard, 0.5, true,
     "BQC chip fatal condition; node halted"},
    {"00020005", Component::kFirmware, Category::kProcessor, Severity::kWarn, Level::kComputeCard, 9.0, false,
     "Firmware detected DCR parity anomaly"},
    {"00020006", Component::kBqc, Category::kProcessor, Severity::kInfo, Level::kComputeCard, 140.0, false,
     "Thermal throttle engaged on compute chip"},

    // --- Network (5D torus / messaging unit) ---------------------------
    {"00040001", Component::kNd, Category::kNetwork, Severity::kInfo, Level::kComputeCard, 1900.0, false,
     "Torus link correctable CRC retry"},
    {"00040002", Component::kNd, Category::kNetwork, Severity::kInfo, Level::kComputeCard, 650.0, false,
     "Torus receiver resynchronization"},
    {"00040003", Component::kNd, Category::kNetwork, Severity::kWarn, Level::kComputeCard, 48.0, false,
     "Torus link retry threshold exceeded"},
    {"00040004", Component::kNd, Category::kNetwork, Severity::kFatal, Level::kNodeBoard, 1.6, true,
     "Torus link failure; board isolated"},
    {"00040005", Component::kNd, Category::kNetwork, Severity::kFatal, Level::kComputeCard, 1.0, true,
     "Network device fatal error on node"},
    {"00040006", Component::kMudm, Category::kNetwork, Severity::kInfo, Level::kComputeCard, 420.0, false,
     "Messaging unit descriptor retry"},
    {"00040007", Component::kMudm, Category::kNetwork, Severity::kWarn, Level::kComputeCard, 14.0, false,
     "Messaging unit FIFO overflow recovered"},
    {"00040008", Component::kMudm, Category::kNetwork, Severity::kFatal, Level::kComputeCard, 0.6, true,
     "Messaging unit unrecoverable DMA error"},
    {"00040009", Component::kNd, Category::kNetwork, Severity::kInfo, Level::kNodeBoard, 230.0, false,
     "Optical module power adjusted"},
    {"0004000A", Component::kNd, Category::kNetwork, Severity::kWarn, Level::kNodeBoard, 11.0, false,
     "Optical module degraded signal"},

    // --- I/O (PCIe, ION Linux, GPFS) ------------------------------------
    {"00080001", Component::kPci, Category::kIo, Severity::kInfo, Level::kNodeBoard, 240.0, false,
     "PCIe correctable error on I/O link"},
    {"00080002", Component::kPci, Category::kIo, Severity::kWarn, Level::kNodeBoard, 13.0, false,
     "PCIe link retrain"},
    {"00080003", Component::kPci, Category::kIo, Severity::kFatal, Level::kNodeBoard, 0.7, true,
     "PCIe unrecoverable error; I/O path lost"},
    {"00080101", Component::kLinux, Category::kIo, Severity::kInfo, Level::kNodeBoard, 310.0, false,
     "I/O node kernel message"},
    {"00080102", Component::kLinux, Category::kIo, Severity::kWarn, Level::kNodeBoard, 17.0, false,
     "I/O node memory pressure"},
    {"00080103", Component::kLinux, Category::kIo, Severity::kFatal, Level::kNodeBoard, 0.8, true,
     "I/O node kernel panic"},
    {"00080201", Component::kGpfs, Category::kIo, Severity::kInfo, Level::kRack, 180.0, false,
     "GPFS client reconnect"},
    {"00080202", Component::kGpfs, Category::kIo, Severity::kWarn, Level::kRack, 16.0, false,
     "GPFS long waiter detected"},
    {"00080203", Component::kGpfs, Category::kIo, Severity::kFatal, Level::kRack, 0.9, true,
     "GPFS filesystem unmounted under load"},

    // --- Software (CNK / MMCS / firmware) -------------------------------
    {"00100001", Component::kCnk, Category::kSoftware, Severity::kInfo, Level::kComputeCard, 2100.0, false,
     "Application exited with nonzero status"},
    {"00100002", Component::kCnk, Category::kSoftware, Severity::kInfo, Level::kComputeCard, 860.0, false,
     "Application received signal"},
    {"00100003", Component::kCnk, Category::kSoftware, Severity::kWarn, Level::kComputeCard, 90.0, false,
     "CNK detected stuck thread"},
    {"00100004", Component::kCnk, Category::kSoftware, Severity::kFatal, Level::kComputeCard, 1.4, true,
     "CNK kernel assertion failure"},
    {"00100005", Component::kMmcs, Category::kSoftware, Severity::kWarn, Level::kMidplane, 24.0, false,
     "MMCS lost heartbeat to node; retrying"},
    {"00100006", Component::kMmcs, Category::kSoftware, Severity::kFatal, Level::kMidplane, 1.0, true,
     "MMCS declared midplane in error state"},
    {"00100007", Component::kMc, Category::kSoftware, Severity::kInfo, Level::kRack, 260.0, false,
     "Machine controller state transition"},
    {"00100008", Component::kMc, Category::kSoftware, Severity::kWarn, Level::kRack, 12.0, false,
     "Machine controller command timeout"},
    {"00100009", Component::kFirmware, Category::kSoftware, Severity::kFatal, Level::kComputeCard, 0.6, true,
     "Firmware boot verification failure"},
    {"0010000A", Component::kCnk, Category::kSoftware, Severity::kInfo, Level::kComputeCard, 540.0, false,
     "Job start on compute node"},
    {"0010000B", Component::kCnk, Category::kSoftware, Severity::kInfo, Level::kComputeCard, 540.0, false,
     "Job end on compute node"},

    // --- Power ----------------------------------------------------------
    {"00200001", Component::kBulkPower, Category::kPower, Severity::kInfo, Level::kRack, 150.0, false,
     "Bulk power module status report"},
    {"00200002", Component::kBulkPower, Category::kPower, Severity::kWarn, Level::kRack, 10.0, false,
     "Bulk power module degraded output"},
    {"00200003", Component::kBulkPower, Category::kPower, Severity::kFatal, Level::kRack, 0.5, true,
     "Bulk power module failure; rack on redundant supply"},
    {"00200004", Component::kCard, Category::kPower, Severity::kWarn, Level::kNodeBoard, 19.0, false,
     "Node board power domain voltage deviation"},
    {"00200005", Component::kCard, Category::kPower, Severity::kFatal, Level::kNodeBoard, 0.8, true,
     "Node board power domain fault; board powered off"},
    {"00200006", Component::kCard, Category::kPower, Severity::kInfo, Level::kNodeBoard, 120.0, false,
     "Node board power-on sequence complete"},

    // --- Cooling ---------------------------------------------------------
    {"00400001", Component::kCoolant, Category::kCooling, Severity::kInfo, Level::kRack, 130.0, false,
     "Coolant temperature report"},
    {"00400002", Component::kCoolant, Category::kCooling, Severity::kWarn, Level::kRack, 9.0, false,
     "Coolant flow below threshold"},
    {"00400003", Component::kCoolant, Category::kCooling, Severity::kFatal, Level::kRack, 0.4, true,
     "Coolant failure; emergency power-down of rack"},
    {"00400004", Component::kCoolant, Category::kCooling, Severity::kWarn, Level::kMidplane, 8.0, false,
     "Midplane inlet temperature high"},

    // --- Control ----------------------------------------------------------
    {"00800001", Component::kMc, Category::kControl, Severity::kInfo, Level::kRack, 420.0, false,
     "Service action started on hardware"},
    {"00800002", Component::kMc, Category::kControl, Severity::kInfo, Level::kRack, 410.0, false,
     "Service action completed on hardware"},
    {"00800003", Component::kMmcs, Category::kControl, Severity::kInfo, Level::kMidplane, 380.0, false,
     "Block boot initiated"},
    {"00800004", Component::kMmcs, Category::kControl, Severity::kInfo, Level::kMidplane, 370.0, false,
     "Block freed"},
    {"00800005", Component::kMmcs, Category::kControl, Severity::kWarn, Level::kMidplane, 21.0, false,
     "Block boot retry"},
    {"00800006", Component::kMmcs, Category::kControl, Severity::kFatal, Level::kMidplane, 0.5, true,
     "Block boot failed after retries"},
    {"00800007", Component::kMc, Category::kControl, Severity::kWarn, Level::kRack, 10.0, false,
     "Control network packet loss to rack"},
    {"00800008", Component::kMc, Category::kControl, Severity::kFatal, Level::kRack, 0.3, true,
     "Control network connection to rack lost"},
}};

const std::unordered_map<std::string_view, const MessageDef*>& catalog_index() {
  static const auto* index = [] {
    auto* map = new std::unordered_map<std::string_view, const MessageDef*>();
    for (const auto& def : kCatalog) (*map)[def.id] = &def;
    return map;
  }();
  return *index;
}

}  // namespace

std::span<const MessageDef> message_catalog() { return kCatalog; }

const MessageDef& message_by_id(std::string_view id) {
  const auto& index = catalog_index();
  const auto it = index.find(id);
  if (it == index.end())
    throw failmine::ParseError("unknown RAS message id: '" + std::string(id) + "'");
  return *it->second;
}

bool is_known_message(std::string_view id) {
  return catalog_index().contains(id);
}

std::size_t count_by_severity(Severity severity) {
  std::size_t n = 0;
  for (const auto& def : kCatalog)
    if (def.severity == severity) ++n;
  return n;
}

}  // namespace failmine::raslog
