// failmine/raslog/severity.hpp
//
// RAS event severities. BG/Q RAS events are INFO, WARN or FATAL; only
// FATAL events can kill the jobs running on the affected hardware.

#pragma once

#include <string>
#include <string_view>

namespace failmine::raslog {

enum class Severity {
  kInfo,
  kWarn,
  kFatal,
};

/// "INFO" / "WARN" / "FATAL".
std::string severity_name(Severity severity);

/// Parses the canonical name (case-insensitive); throws ParseError.
Severity severity_from_name(std::string_view name);

/// All severities in ascending order of seriousness.
inline constexpr Severity kAllSeverities[] = {Severity::kInfo, Severity::kWarn,
                                              Severity::kFatal};

}  // namespace failmine::raslog
