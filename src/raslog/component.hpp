// failmine/raslog/component.hpp
//
// Hardware/software components that emit RAS events on a BG/Q system.
// The set mirrors the component field of Mira's RAS log: the compute-node
// kernel, the control system, the compute chip and its memory, the 5D
// torus network, I/O subsystem, power/cooling infrastructure, and so on.

#pragma once

#include <string>
#include <string_view>

namespace failmine::raslog {

enum class Component {
  kCnk,        ///< compute node kernel
  kMmcs,       ///< midplane monitoring and control system
  kMc,         ///< machine controller
  kBqc,        ///< BG/Q compute chip
  kDdr,        ///< DDR3 memory subsystem
  kNd,         ///< 5D torus network device
  kMudm,       ///< messaging unit data mover
  kPci,        ///< PCIe on I/O nodes
  kCard,       ///< node/link card power domain
  kFirmware,   ///< common node firmware
  kLinux,      ///< I/O node Linux
  kGpfs,       ///< parallel filesystem client
  kCoolant,    ///< coolant monitors
  kBulkPower,  ///< bulk power modules
};

/// Canonical upper-case component token ("CNK", "MMCS", ...).
std::string component_name(Component component);

/// Parses the canonical token; throws ParseError.
Component component_from_name(std::string_view name);

/// All components in declaration order.
inline constexpr Component kAllComponents[] = {
    Component::kCnk,  Component::kMmcs,     Component::kMc,
    Component::kBqc,  Component::kDdr,      Component::kNd,
    Component::kMudm, Component::kPci,      Component::kCard,
    Component::kFirmware, Component::kLinux, Component::kGpfs,
    Component::kCoolant,  Component::kBulkPower};

}  // namespace failmine::raslog
