#include "raslog/category.hpp"
#include "raslog/component.hpp"
#include "raslog/severity.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::raslog {

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "INFO";
    case Severity::kWarn: return "WARN";
    case Severity::kFatal: return "FATAL";
  }
  throw failmine::DomainError("unknown severity");
}

Severity severity_from_name(std::string_view name) {
  const std::string up = util::to_lower(name);
  if (up == "info") return Severity::kInfo;
  if (up == "warn" || up == "warning") return Severity::kWarn;
  if (up == "fatal") return Severity::kFatal;
  throw failmine::ParseError("unknown severity: '" + std::string(name) + "'");
}

std::string component_name(Component component) {
  switch (component) {
    case Component::kCnk: return "CNK";
    case Component::kMmcs: return "MMCS";
    case Component::kMc: return "MC";
    case Component::kBqc: return "BQC";
    case Component::kDdr: return "DDR";
    case Component::kNd: return "ND";
    case Component::kMudm: return "MUDM";
    case Component::kPci: return "PCI";
    case Component::kCard: return "CARD";
    case Component::kFirmware: return "FIRMWARE";
    case Component::kLinux: return "LINUX";
    case Component::kGpfs: return "GPFS";
    case Component::kCoolant: return "COOLANT";
    case Component::kBulkPower: return "BULKPOWER";
  }
  throw failmine::DomainError("unknown component");
}

Component component_from_name(std::string_view name) {
  for (Component c : kAllComponents)
    if (component_name(c) == name) return c;
  throw failmine::ParseError("unknown component: '" + std::string(name) + "'");
}

std::string category_name(Category category) {
  switch (category) {
    case Category::kMemory: return "MEMORY";
    case Category::kProcessor: return "PROCESSOR";
    case Category::kNetwork: return "NETWORK";
    case Category::kIo: return "IO";
    case Category::kSoftware: return "SOFTWARE";
    case Category::kPower: return "POWER";
    case Category::kCooling: return "COOLING";
    case Category::kControl: return "CONTROL";
  }
  throw failmine::DomainError("unknown category");
}

Category category_from_name(std::string_view name) {
  for (Category c : kAllCategories)
    if (category_name(c) == name) return c;
  throw failmine::ParseError("unknown category: '" + std::string(name) + "'");
}

}  // namespace failmine::raslog
