#include "raslog/event.hpp"

#include <algorithm>
#include <array>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::raslog {

const std::vector<std::string>& ras_csv_header() {
  static const std::vector<std::string> header = {
      "record_id", "timestamp", "message_id", "severity", "component",
      "category",  "location",  "job_id",     "text"};
  return header;
}

RasLog::RasLog(std::vector<RasEvent> events) : events_(std::move(events)) {
  finalize();
}

void RasLog::append(RasEvent event) { events_.push_back(std::move(event)); }

void RasLog::finalize() {
  std::sort(events_.begin(), events_.end(),
            [](const RasEvent& a, const RasEvent& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.record_id < b.record_id;
            });
}

std::vector<RasEvent> RasLog::filter_severity(Severity severity) const {
  std::vector<RasEvent> out;
  for (const auto& e : events_)
    if (e.severity == severity) out.push_back(e);
  return out;
}

std::vector<RasEvent> RasLog::filter_time(util::UnixSeconds begin,
                                          util::UnixSeconds end) const {
  std::vector<RasEvent> out;
  for (const auto& e : events_)
    if (e.timestamp >= begin && e.timestamp < end) out.push_back(e);
  return out;
}

std::array<std::uint64_t, 3> RasLog::severity_counts() const {
  std::array<std::uint64_t, 3> counts{};
  for (const auto& e : events_) ++counts[static_cast<std::size_t>(e.severity)];
  return counts;
}

void RasLog::write_csv(const std::string& path) const {
  util::CsvWriter writer(path, ras_csv_header());
  for (const auto& e : events_) {
    writer.write_row({
        std::to_string(e.record_id),
        util::format_timestamp(e.timestamp),
        e.message_id,
        severity_name(e.severity),
        component_name(e.component),
        category_name(e.category),
        e.location.to_string(),
        e.job_id ? std::to_string(*e.job_id) : "",
        e.text,
    });
  }
  writer.close();
}

namespace {

// Row is std::vector<std::string> (serial reader) or util::FieldVec
// (ingest engine); both index to something convertible to string_view.
template <class Row>
void parse_row_into(const Row& row, const topology::MachineConfig& config,
                    RasEvent& e) {
  e.record_id = util::parse_uint(row[0]);
  e.timestamp = util::parse_timestamp(row[1]);
  e.message_id = std::string_view(row[2]);
  e.severity = severity_from_name(row[3]);
  e.component = component_from_name(row[4]);
  e.category = category_from_name(row[5]);
  e.location = topology::Location::parse(row[6], config);
  if (!row[7].empty())
    e.job_id = util::parse_uint(row[7]);
  else
    e.job_id.reset();
  e.text = std::string_view(row[8]);
}

template <class Row>
raslog::RasEvent parse_row(const Row& row,
                           const topology::MachineConfig& config) {
  RasEvent e;
  parse_row_into(row, config, e);
  return e;
}

}  // namespace

void parse_csv_row(const util::FieldVec& row,
                   const topology::MachineConfig& config, RasEvent& out) {
  parse_row_into(row, config, out);
}

RasLog RasLog::read_csv(const std::string& path,
                        const topology::MachineConfig& config,
                        const ingest::LoadOptions& options,
                        ingest::Engine engine) {
  if (ingest::use_serial_reader(options, engine)) {
    std::vector<RasEvent> events;
    for_each_csv(path, config, [&](const RasEvent& e) {
      events.push_back(e);
      return true;
    });
    return RasLog(std::move(events));
  }
  FAILMINE_TRACE_SPAN("raslog.read_csv");
  return RasLog(ingest::load_csv<RasEvent>(
      path, ras_csv_header(), "raslog", "RAS log", "parse.raslog.records",
      [&config](const util::FieldVec& row) { return parse_row(row, config); },
      options));
}

void RasLog::for_each_csv(const std::string& path,
                          const topology::MachineConfig& config,
                          const std::function<bool(const RasEvent&)>& callback) {
  FAILMINE_TRACE_SPAN("raslog.read_csv");
  util::CsvReader reader(path);
  if (reader.header() != ras_csv_header())
    throw failmine::ParseError("unexpected RAS log header in " + path);
  obs::Counter& records = obs::metrics().counter("parse.raslog.records");
  std::vector<std::string> row;
  while (reader.next(row)) {
    RasEvent e;
    try {
      e = parse_row(row, config);
    } catch (const failmine::Error& err) {
      obs::metrics().counter("parse.lines_rejected").add();
      obs::logger().warn("parse.record_rejected",
                         {{"source", "raslog"},
                          {"file", path},
                          {"row", reader.rows_read() + 1},
                          {"error", err.what()}});
      throw;
    }
    records.add();
    if (!callback(e)) break;
  }
}

}  // namespace failmine::raslog
