#include "distfit/normal_dist.hpp"

#include <cmath>
#include <numbers>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

NormalDist::NormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma <= 0) throw failmine::DomainError("normal sigma must be positive");
}

double NormalDist::pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double NormalDist::cdf(double x) const {
  return stats::normal_cdf((x - mu_) / sigma_);
}

double NormalDist::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("quantile requires p in (0,1)");
  return mu_ + sigma_ * stats::normal_quantile(p);
}

double NormalDist::sample(util::Rng& rng) const {
  return rng.normal(mu_, sigma_);
}

}  // namespace failmine::distfit
