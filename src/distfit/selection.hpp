// failmine/distfit/selection.hpp
//
// Fit-all + model-selection driver for the distribution study (E05, E13).
//
// For a given positive sample, fits every requested family, computes the
// log-likelihood, AIC, BIC and the KS distance/p-value of each fit, and
// ranks them by a chosen criterion. The paper reports the best-fitting
// family per exit-code class; the ablation in DESIGN.md compares criteria.

#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "distfit/distribution.hpp"
#include "stats/hypothesis.hpp"

namespace failmine::distfit {

/// Candidate families the driver knows how to fit.
enum class Family {
  kExponential,
  kWeibull,
  kPareto,
  kLogNormal,
  kGamma,
  kErlang,
  kInverseGaussian,
  kNormal,
  kRayleigh,
  kLogLogistic,
};

/// All families, in a stable order.
std::vector<Family> all_families();

/// Canonical name of a family (matches Distribution::name()).
std::string family_name(Family family);

/// Parses the canonical name back to the enum; throws ParseError.
Family family_from_name(const std::string& name);

/// Metric used to rank fits.
enum class Criterion {
  kKsDistance,      ///< smaller D wins (paper's primary instrument)
  kLogLikelihood,   ///< larger wins
  kAic,             ///< smaller wins
  kBic,             ///< smaller wins
};

/// One family's fit on a sample with every quality metric attached.
struct FitResult {
  Family family{};
  std::unique_ptr<Distribution> dist;
  double log_lik = 0.0;
  double aic = 0.0;
  double bic = 0.0;
  stats::TestResult ks;

  FitResult() = default;
  FitResult(FitResult&&) = default;
  FitResult& operator=(FitResult&&) = default;
};

/// Fits one family; returns nullopt if the fitter rejects the sample
/// (e.g. Pareto on a constant sample) rather than throwing, so the driver
/// can keep going with the remaining candidates.
std::optional<FitResult> fit_family(Family family, std::span<const double> sample);

/// Fits every requested family; families whose fitter rejects the sample
/// are omitted from the result.
std::vector<FitResult> fit_all(std::span<const double> sample,
                               const std::vector<Family>& families = all_families());

/// Index of the best fit under `criterion`; throws DomainError if empty.
std::size_t best_fit_index(const std::vector<FitResult>& fits, Criterion criterion);

/// Convenience: fit all and return the winning result directly.
FitResult select_best(std::span<const double> sample,
                      Criterion criterion = Criterion::kKsDistance,
                      const std::vector<Family>& families = all_families());

}  // namespace failmine::distfit
