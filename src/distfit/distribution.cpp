#include "distfit/distribution.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace failmine::distfit {

double Distribution::quantile(double p) const { return quantile_by_bisection(p); }

double Distribution::log_likelihood(std::span<const double> sample) const {
  if (sample.empty())
    throw failmine::DomainError("log_likelihood requires a non-empty sample");
  double ll = 0.0;
  for (double x : sample) {
    const double d = pdf(x);
    if (d <= 0.0) return -std::numeric_limits<double>::infinity();
    ll += std::log(d);
  }
  return ll;
}

std::vector<double> Distribution::sample_many(util::Rng& rng, std::size_t n) const {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

double Distribution::quantile_by_bisection(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("quantile requires p in (0,1)");
  double lo = support_lower();
  double hi = lo + 1.0;
  // Expand upper bracket geometrically.
  int guard = 0;
  while (cdf(hi) < p) {
    hi = lo + (hi - lo) * 2.0;
    if (++guard > 400) throw failmine::DomainError("quantile bracket failed to expand");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-12 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace failmine::distfit
