// failmine/distfit/fit.hpp
//
// Maximum-likelihood fitters for every family in the candidate set.
//
// All fitters require strictly positive samples (runtimes, intervals)
// except fit_normal, and throw DomainError on violations. Closed forms are
// used where they exist; Weibull and Gamma use Newton iterations on the
// profile-likelihood equations.

#pragma once

#include <memory>
#include <span>

#include "distfit/erlang.hpp"
#include "distfit/exponential.hpp"
#include "distfit/gamma_dist.hpp"
#include "distfit/inverse_gaussian.hpp"
#include "distfit/lognormal.hpp"
#include "distfit/normal_dist.hpp"
#include "distfit/pareto.hpp"
#include "distfit/rayleigh.hpp"
#include "distfit/weibull.hpp"

namespace failmine::distfit {

/// MLE: rate = 1 / mean.
Exponential fit_exponential(std::span<const double> sample);

/// MLE via Newton on the profile shape equation
///   1/k = sum(x^k log x)/sum(x^k) - mean(log x).
Weibull fit_weibull(std::span<const double> sample);

/// MLE: xm = min(sample), alpha = n / sum log(x / xm).
/// Points equal to xm contribute 0 to the sum; requires at least one
/// sample value strictly above xm.
Pareto fit_pareto(std::span<const double> sample);

/// MLE on logs: mu = mean(log x), sigma^2 = (1/n) sum (log x - mu)^2.
LogNormal fit_lognormal(std::span<const double> sample);

/// MLE via Newton on log(k) - digamma(k) = log(mean) - mean(log).
GammaDist fit_gamma(std::span<const double> sample);

/// Profile MLE over integer k in [1, k_max], rate = k / mean for each k;
/// picks the k with the highest likelihood.
Erlang fit_erlang(std::span<const double> sample, int k_max = 50);

/// MLE: mu = mean, 1/lambda = (1/n) sum (1/x - 1/mu).
InverseGaussian fit_inverse_gaussian(std::span<const double> sample);

/// MLE: mu = mean, sigma^2 = (1/n) sum (x - mu)^2 (biased MLE variant).
NormalDist fit_normal(std::span<const double> sample);

/// MLE: sigma^2 = (1/2n) sum x^2.
Rayleigh fit_rayleigh(std::span<const double> sample);

}  // namespace failmine::distfit
