// failmine/distfit/loglogistic.hpp
//
// Log-logistic (Fisk) distribution — a standard extra candidate in
// failure-time studies: heavier tail than log-normal, closed-form CDF.

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Log-logistic with scale alpha > 0 and shape beta > 0; support (0, inf).
/// CDF F(x) = 1 / (1 + (x/alpha)^-beta).
class LogLogistic final : public Distribution {
 public:
  LogLogistic(double alpha, double beta);

  std::string name() const override { return "loglogistic"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;      ///< +inf for beta <= 1
  double variance() const override;  ///< +inf for beta <= 2
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 2; }
  std::vector<Param> params() const override {
    return {{"alpha", alpha_}, {"beta", beta_}};
  }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<LogLogistic>(*this);
  }

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  double alpha_;
  double beta_;
};

/// MLE via Nelder-Mead on the negative log-likelihood (no closed form).
LogLogistic fit_loglogistic(std::span<const double> sample);

}  // namespace failmine::distfit
