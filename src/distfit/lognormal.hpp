// failmine/distfit/lognormal.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Log-normal: log X ~ N(mu, sigma^2), sigma > 0; support (0, inf).
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);

  std::string name() const override { return "lognormal"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 2; }
  std::vector<Param> params() const override {
    return {{"mu", mu_}, {"sigma", sigma_}};
  }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<LogNormal>(*this);
  }

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace failmine::distfit
