// failmine/distfit/optimize.hpp
//
// Derivative-free minimization (Nelder-Mead) for fitters whose likelihood
// equations have no closed form or stable Newton iteration (log-logistic,
// and any future family a user plugs in).

#pragma once

#include <functional>
#include <vector>

namespace failmine::distfit {

struct NelderMeadOptions {
  double initial_step = 0.5;     ///< relative simplex size around the start
  double tolerance = 1e-10;      ///< spread of simplex values at convergence
  int max_iterations = 2000;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes `f` starting from `start`. The objective may return +inf to
/// reject infeasible points (e.g. non-positive parameters).
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, const NelderMeadOptions& options = {});

}  // namespace failmine::distfit
