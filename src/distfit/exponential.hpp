// failmine/distfit/exponential.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Exponential distribution with rate lambda > 0; support [0, inf).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);

  std::string name() const override { return "exponential"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return 1.0 / rate_; }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 1; }
  std::vector<Param> params() const override { return {{"rate", rate_}}; }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<Exponential>(*this);
  }

  double rate() const { return rate_; }

 private:
  double rate_;
};

}  // namespace failmine::distfit
