#include "distfit/lognormal.hpp"

#include <cmath>
#include <numbers>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma <= 0) throw failmine::DomainError("lognormal sigma must be positive");
}

double LogNormal::pdf(double x) const {
  if (x <= 0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (x * sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double LogNormal::cdf(double x) const {
  if (x <= 0) return 0.0;
  return stats::normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("quantile requires p in (0,1)");
  return std::exp(mu_ + sigma_ * stats::normal_quantile(p));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::sample(util::Rng& rng) const {
  return rng.lognormal(mu_, sigma_);
}

}  // namespace failmine::distfit
