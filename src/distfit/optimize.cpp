#include "distfit/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, const NelderMeadOptions& options) {
  const std::size_t n = start.size();
  if (n == 0) throw failmine::DomainError("nelder_mead requires >= 1 dimension");
  if (options.max_iterations < 1)
    throw failmine::DomainError("nelder_mead requires >= 1 iteration");

  // Standard coefficients.
  constexpr double kReflect = 1.0;
  constexpr double kExpand = 2.0;
  constexpr double kContract = 0.5;
  constexpr double kShrink = 0.5;

  // Initial simplex: start plus one perturbed vertex per dimension.
  std::vector<std::vector<double>> simplex;
  simplex.push_back(start);
  for (std::size_t d = 0; d < n; ++d) {
    auto vertex = start;
    const double step =
        options.initial_step * (std::fabs(vertex[d]) > 1e-12
                                    ? std::fabs(vertex[d])
                                    : 1.0);
    vertex[d] += step;
    simplex.push_back(std::move(vertex));
  }
  std::vector<double> values(simplex.size());
  for (std::size_t i = 0; i < simplex.size(); ++i) values[i] = f(simplex[i]);

  NelderMeadResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Order vertices by value.
    std::vector<std::size_t> order(simplex.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[order.size() - 2];

    result.iterations = iter + 1;
    if (std::isfinite(values[best]) &&
        std::fabs(values[worst] - values[best]) <
            options.tolerance * (1.0 + std::fabs(values[best]))) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < simplex.size(); ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d)
        p[d] = centroid[d] + coeff * (centroid[d] - simplex[worst][d]);
      return p;
    };

    const auto reflected = blend(kReflect);
    const double f_reflected = f(reflected);
    if (f_reflected < values[best]) {
      const auto expanded = blend(kExpand);
      const double f_expanded = f(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
    } else if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
    } else {
      const auto contracted = blend(-kContract);
      const double f_contracted = f(contracted);
      if (f_contracted < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = f_contracted;
      } else {
        // Shrink towards the best vertex.
        for (std::size_t i = 0; i < simplex.size(); ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d)
            simplex[i][d] = simplex[best][d] +
                            kShrink * (simplex[i][d] - simplex[best][d]);
          values[i] = f(simplex[i]);
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < simplex.size(); ++i)
    if (values[i] < values[best]) best = i;
  result.x = simplex[best];
  result.value = values[best];
  obs::metrics().counter("distfit.nm_calls").add();
  obs::metrics()
      .histogram("distfit.nm_iterations", {10, 20, 50, 100, 200, 500, 1000})
      .observe(result.iterations);
  if (!result.converged) obs::metrics().counter("distfit.nm_unconverged").add();
  return result;
}

}  // namespace failmine::distfit
