#include "distfit/pareto.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace failmine::distfit {

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  if (xm <= 0 || alpha <= 0)
    throw failmine::DomainError("pareto parameters must be positive");
}

double Pareto::pdf(double x) const {
  if (x < xm_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::cdf(double x) const {
  if (x <= xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double Pareto::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("quantile requires p in (0,1)");
  return xm_ / std::pow(1.0 - p, 1.0 / alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double Pareto::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  return xm_ * xm_ * alpha_ / ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

double Pareto::sample(util::Rng& rng) const { return rng.pareto(xm_, alpha_); }

}  // namespace failmine::distfit
