// failmine/distfit/distribution.hpp
//
// Abstract interface for the parametric families used in the paper's
// execution-length / interruption-interval fitting study. The abstract's
// claim (T-C) is that the best-fit family depends on the exit-code type:
// Weibull, Pareto, inverse Gaussian and Erlang/exponential all appear.
//
// Concrete families implement pdf/cdf/sampling analytically; `quantile`
// has a generic bisection fallback that concrete classes may override
// with a closed form.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace failmine::distfit {

/// A named parameter of a fitted distribution.
struct Param {
  std::string name;
  double value = 0.0;
};

/// Interface for a univariate continuous distribution on (part of) the
/// real line. All families used here are supported on [0, inf) except
/// Normal.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Family name ("weibull", "pareto", ...).
  virtual std::string name() const = 0;

  /// Probability density at x.
  virtual double pdf(double x) const = 0;

  /// Cumulative distribution function at x.
  virtual double cdf(double x) const = 0;

  /// Inverse CDF for p in (0,1). Default: bisection over cdf().
  virtual double quantile(double p) const;

  /// Distribution mean. May be +inf (e.g. Pareto with alpha <= 1).
  virtual double mean() const = 0;

  /// Distribution variance. May be +inf.
  virtual double variance() const = 0;

  /// Draws one variate.
  virtual double sample(util::Rng& rng) const = 0;

  /// Number of free parameters (for AIC/BIC).
  virtual std::size_t param_count() const = 0;

  /// Named parameter values, for report printing.
  virtual std::vector<Param> params() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Distribution> clone() const = 0;

  /// Sum of log pdf over the sample; -inf if any point has zero density.
  double log_likelihood(std::span<const double> sample) const;

  /// Draws n variates.
  std::vector<double> sample_many(util::Rng& rng, std::size_t n) const;

  /// Lower end of the support (used by the generic quantile bisection).
  virtual double support_lower() const { return 0.0; }

 protected:
  /// Bisection solve of cdf(x) = p on [lo, expanding-hi].
  double quantile_by_bisection(double p) const;
};

}  // namespace failmine::distfit
