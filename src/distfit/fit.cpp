#include "distfit/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "stats/special.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

namespace {

/// Newton/profile-likelihood iteration counts from the iterative fitters.
obs::Histogram& iterations_histogram() {
  static obs::Histogram& h = obs::metrics().histogram(
      "distfit.iterations", {1, 2, 5, 10, 20, 50, 100, 200});
  return h;
}

void require_positive(std::span<const double> sample, const char* who) {
  if (sample.empty())
    throw failmine::DomainError(std::string(who) + " requires a non-empty sample");
  for (double x : sample)
    if (x <= 0)
      throw failmine::DomainError(std::string(who) +
                                  " requires strictly positive values");
}

double mean_log(std::span<const double> sample) {
  double s = 0.0;
  for (double x : sample) s += std::log(x);
  return s / static_cast<double>(sample.size());
}

}  // namespace

Exponential fit_exponential(std::span<const double> sample) {
  require_positive(sample, "fit_exponential");
  return Exponential(1.0 / stats::mean(sample));
}

Weibull fit_weibull(std::span<const double> sample) {
  require_positive(sample, "fit_weibull");
  if (sample.size() < 2)
    throw failmine::DomainError("fit_weibull requires >= 2 observations");
  const double mlog = mean_log(sample);
  const double n = static_cast<double>(sample.size());

  // Profile equation g(k) = sum(x^k log x)/sum(x^k) - 1/k - mlog = 0.
  // Start from the method-of-moments-ish guess via log variance.
  double var_log = 0.0;
  for (double x : sample) {
    const double d = std::log(x) - mlog;
    var_log += d * d;
  }
  var_log /= n;
  double k = var_log > 0 ? 1.2 / std::sqrt(var_log) : 1.0;
  k = std::clamp(k, 1e-3, 1e3);

  int iterations = 0;
  for (int iter = 0; iter < 200; ++iter) {
    iterations = iter + 1;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    // Normalize by the max to avoid overflow of x^k for large k.
    double xmax = 0.0;
    for (double x : sample) xmax = std::max(xmax, x);
    for (double x : sample) {
      const double lx = std::log(x);
      const double w = std::pow(x / xmax, k);
      s0 += w;
      s1 += w * lx;
      s2 += w * lx * lx;
    }
    const double g = s1 / s0 - 1.0 / k - mlog;
    const double gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    if (gp == 0.0) break;
    double next = k - g / gp;
    if (!(next > 0)) next = k / 2.0;  // damped fallback
    if (std::fabs(next - k) < 1e-12 * (1.0 + k)) {
      k = next;
      break;
    }
    k = std::clamp(next, 1e-6, 1e6);
  }
  iterations_histogram().observe(iterations);
  double sum_pow = 0.0;
  for (double x : sample) sum_pow += std::pow(x, k);
  const double scale = std::pow(sum_pow / n, 1.0 / k);
  return Weibull(k, scale);
}

Pareto fit_pareto(std::span<const double> sample) {
  require_positive(sample, "fit_pareto");
  const double xm = *std::min_element(sample.begin(), sample.end());
  double s = 0.0;
  for (double x : sample) s += std::log(x / xm);
  if (s <= 0)
    throw failmine::DomainError(
        "fit_pareto requires at least one value above the minimum");
  const double alpha = static_cast<double>(sample.size()) / s;
  return Pareto(xm, alpha);
}

LogNormal fit_lognormal(std::span<const double> sample) {
  require_positive(sample, "fit_lognormal");
  if (sample.size() < 2)
    throw failmine::DomainError("fit_lognormal requires >= 2 observations");
  const double mu = mean_log(sample);
  double s2 = 0.0;
  for (double x : sample) {
    const double d = std::log(x) - mu;
    s2 += d * d;
  }
  s2 /= static_cast<double>(sample.size());
  if (s2 <= 0)
    throw failmine::DomainError("fit_lognormal requires non-constant values");
  return LogNormal(mu, std::sqrt(s2));
}

GammaDist fit_gamma(std::span<const double> sample) {
  require_positive(sample, "fit_gamma");
  if (sample.size() < 2)
    throw failmine::DomainError("fit_gamma requires >= 2 observations");
  const double m = stats::mean(sample);
  const double s = std::log(m) - mean_log(sample);
  if (s <= 0)
    throw failmine::DomainError("fit_gamma requires non-constant values");
  // Initial guess (Minka 2002), then Newton on log(k) - digamma(k) = s.
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
  k = std::clamp(k, 1e-6, 1e6);
  int iterations = 0;
  for (int iter = 0; iter < 100; ++iter) {
    iterations = iter + 1;
    const double f = std::log(k) - stats::digamma(k) - s;
    const double fp = 1.0 / k - stats::trigamma(k);
    if (fp == 0.0) break;
    double next = k - f / fp;
    if (!(next > 0)) next = k / 2.0;
    if (std::fabs(next - k) < 1e-12 * (1.0 + k)) {
      k = next;
      break;
    }
    k = std::clamp(next, 1e-9, 1e9);
  }
  iterations_histogram().observe(iterations);
  return GammaDist(k, m / k);
}

Erlang fit_erlang(std::span<const double> sample, int k_max) {
  require_positive(sample, "fit_erlang");
  if (k_max < 1) throw failmine::DomainError("fit_erlang requires k_max >= 1");
  const double m = stats::mean(sample);
  double best_ll = -std::numeric_limits<double>::infinity();
  int best_k = 1;
  for (int k = 1; k <= k_max; ++k) {
    const Erlang candidate(k, static_cast<double>(k) / m);
    const double ll = candidate.log_likelihood(sample);
    if (ll > best_ll) {
      best_ll = ll;
      best_k = k;
    }
  }
  return Erlang(best_k, static_cast<double>(best_k) / m);
}

InverseGaussian fit_inverse_gaussian(std::span<const double> sample) {
  require_positive(sample, "fit_inverse_gaussian");
  if (sample.size() < 2)
    throw failmine::DomainError("fit_inverse_gaussian requires >= 2 observations");
  const double mu = stats::mean(sample);
  double s = 0.0;
  for (double x : sample) s += 1.0 / x - 1.0 / mu;
  if (s <= 0)
    throw failmine::DomainError(
        "fit_inverse_gaussian requires non-constant values");
  const double lambda = static_cast<double>(sample.size()) / s;
  return InverseGaussian(mu, lambda);
}

NormalDist fit_normal(std::span<const double> sample) {
  if (sample.size() < 2)
    throw failmine::DomainError("fit_normal requires >= 2 observations");
  const double mu = stats::mean(sample);
  double s2 = 0.0;
  for (double x : sample) s2 += (x - mu) * (x - mu);
  s2 /= static_cast<double>(sample.size());
  if (s2 <= 0) throw failmine::DomainError("fit_normal requires non-constant values");
  return NormalDist(mu, std::sqrt(s2));
}

Rayleigh fit_rayleigh(std::span<const double> sample) {
  require_positive(sample, "fit_rayleigh");
  double s2 = 0.0;
  for (double x : sample) s2 += x * x;
  s2 /= 2.0 * static_cast<double>(sample.size());
  return Rayleigh(std::sqrt(s2));
}

}  // namespace failmine::distfit
