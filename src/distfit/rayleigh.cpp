#include "distfit/rayleigh.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace failmine::distfit {

Rayleigh::Rayleigh(double sigma) : sigma_(sigma) {
  if (sigma <= 0) throw failmine::DomainError("rayleigh sigma must be positive");
}

double Rayleigh::pdf(double x) const {
  if (x < 0) return 0.0;
  const double s2 = sigma_ * sigma_;
  return (x / s2) * std::exp(-x * x / (2.0 * s2));
}

double Rayleigh::cdf(double x) const {
  if (x <= 0) return 0.0;
  return 1.0 - std::exp(-x * x / (2.0 * sigma_ * sigma_));
}

double Rayleigh::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("quantile requires p in (0,1)");
  return sigma_ * std::sqrt(-2.0 * std::log(1.0 - p));
}

double Rayleigh::mean() const {
  return sigma_ * std::sqrt(std::numbers::pi / 2.0);
}

double Rayleigh::variance() const {
  return (2.0 - std::numbers::pi / 2.0) * sigma_ * sigma_;
}

double Rayleigh::sample(util::Rng& rng) const {
  return quantile(std::fmax(1e-16, std::fmin(1.0 - 1e-16, rng.uniform())));
}

}  // namespace failmine::distfit
