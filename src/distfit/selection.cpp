#include "distfit/selection.hpp"

#include <cmath>

#include "distfit/fit.hpp"
#include "distfit/loglogistic.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

std::vector<Family> all_families() {
  return {Family::kExponential, Family::kWeibull,   Family::kPareto,
          Family::kLogNormal,   Family::kGamma,     Family::kErlang,
          Family::kInverseGaussian, Family::kNormal, Family::kRayleigh,
          Family::kLogLogistic};
}

std::string family_name(Family family) {
  switch (family) {
    case Family::kExponential: return "exponential";
    case Family::kWeibull: return "weibull";
    case Family::kPareto: return "pareto";
    case Family::kLogNormal: return "lognormal";
    case Family::kGamma: return "gamma";
    case Family::kErlang: return "erlang";
    case Family::kInverseGaussian: return "inverse_gaussian";
    case Family::kNormal: return "normal";
    case Family::kRayleigh: return "rayleigh";
    case Family::kLogLogistic: return "loglogistic";
  }
  throw failmine::DomainError("unknown family");
}

Family family_from_name(const std::string& name) {
  for (Family f : all_families())
    if (family_name(f) == name) return f;
  throw failmine::ParseError("unknown distribution family: '" + name + "'");
}

namespace {

std::unique_ptr<Distribution> fit_dispatch(Family family,
                                           std::span<const double> sample) {
  switch (family) {
    case Family::kExponential:
      return std::make_unique<Exponential>(fit_exponential(sample));
    case Family::kWeibull:
      return std::make_unique<Weibull>(fit_weibull(sample));
    case Family::kPareto:
      return std::make_unique<Pareto>(fit_pareto(sample));
    case Family::kLogNormal:
      return std::make_unique<LogNormal>(fit_lognormal(sample));
    case Family::kGamma:
      return std::make_unique<GammaDist>(fit_gamma(sample));
    case Family::kErlang:
      return std::make_unique<Erlang>(fit_erlang(sample));
    case Family::kInverseGaussian:
      return std::make_unique<InverseGaussian>(fit_inverse_gaussian(sample));
    case Family::kNormal:
      return std::make_unique<NormalDist>(fit_normal(sample));
    case Family::kRayleigh:
      return std::make_unique<Rayleigh>(fit_rayleigh(sample));
    case Family::kLogLogistic:
      return std::make_unique<LogLogistic>(fit_loglogistic(sample));
  }
  throw failmine::DomainError("unknown family");
}

}  // namespace

std::optional<FitResult> fit_family(Family family, std::span<const double> sample) {
  std::unique_ptr<Distribution> dist;
  obs::metrics().counter("distfit.fits_total").add();
  try {
    dist = fit_dispatch(family, sample);
  } catch (const failmine::DomainError& e) {
    // Fitter rejected this sample; skip the family — but say why, so a
    // surprising hole in a fit table can be traced back to its cause.
    obs::metrics().counter("distfit.fit_failures").add();
    obs::logger().info("distfit.family_rejected",
                       {{"family", family_name(family)},
                        {"sample_size", sample.size()},
                        {"error", e.what()}});
    return std::nullopt;
  }
  FitResult r;
  r.family = family;
  r.log_lik = dist->log_likelihood(sample);
  const double k = static_cast<double>(dist->param_count());
  const double n = static_cast<double>(sample.size());
  r.aic = 2.0 * k - 2.0 * r.log_lik;
  r.bic = k * std::log(n) - 2.0 * r.log_lik;
  const Distribution* raw = dist.get();
  r.ks = stats::ks_test(sample, [raw](double x) { return raw->cdf(x); });
  r.dist = std::move(dist);
  return r;
}

std::vector<FitResult> fit_all(std::span<const double> sample,
                               const std::vector<Family>& families) {
  FAILMINE_TRACE_SPAN("distfit.fit_all");
  std::vector<FitResult> results;
  for (Family f : families) {
    auto r = fit_family(f, sample);
    if (r.has_value()) results.push_back(std::move(*r));
  }
  return results;
}

std::size_t best_fit_index(const std::vector<FitResult>& fits, Criterion criterion) {
  if (fits.empty()) throw failmine::DomainError("best_fit_index on empty fit list");
  std::size_t best = 0;
  auto better = [criterion](const FitResult& a, const FitResult& b) {
    switch (criterion) {
      case Criterion::kKsDistance: return a.ks.statistic < b.ks.statistic;
      case Criterion::kLogLikelihood: return a.log_lik > b.log_lik;
      case Criterion::kAic: return a.aic < b.aic;
      case Criterion::kBic: return a.bic < b.bic;
    }
    return false;
  };
  for (std::size_t i = 1; i < fits.size(); ++i)
    if (better(fits[i], fits[best])) best = i;
  return best;
}

FitResult select_best(std::span<const double> sample, Criterion criterion,
                      const std::vector<Family>& families) {
  auto fits = fit_all(sample, families);
  if (fits.empty())
    throw failmine::DomainError("no candidate family could fit the sample");
  const std::size_t idx = best_fit_index(fits, criterion);
  return std::move(fits[idx]);
}

}  // namespace failmine::distfit
