#include "distfit/loglogistic.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "distfit/optimize.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

LogLogistic::LogLogistic(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  if (alpha <= 0 || beta <= 0)
    throw failmine::DomainError("loglogistic parameters must be positive");
}

double LogLogistic::pdf(double x) const {
  if (x <= 0) return 0.0;
  const double z = std::pow(x / alpha_, beta_);
  const double denom = (1.0 + z) * (1.0 + z);
  return (beta_ / alpha_) * std::pow(x / alpha_, beta_ - 1.0) / denom;
}

double LogLogistic::cdf(double x) const {
  if (x <= 0) return 0.0;
  return 1.0 / (1.0 + std::pow(x / alpha_, -beta_));
}

double LogLogistic::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("quantile requires p in (0,1)");
  return alpha_ * std::pow(p / (1.0 - p), 1.0 / beta_);
}

double LogLogistic::mean() const {
  if (beta_ <= 1.0) return std::numeric_limits<double>::infinity();
  const double b = std::numbers::pi / beta_;
  return alpha_ * b / std::sin(b);
}

double LogLogistic::variance() const {
  if (beta_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double b = std::numbers::pi / beta_;
  const double m = b / std::sin(b);
  return alpha_ * alpha_ * (2.0 * b / std::sin(2.0 * b) - m * m);
}

double LogLogistic::sample(util::Rng& rng) const {
  double u;
  do {
    u = rng.uniform();
  } while (u <= 0.0 || u >= 1.0);
  return quantile(u);
}

LogLogistic fit_loglogistic(std::span<const double> sample) {
  if (sample.size() < 2)
    throw failmine::DomainError("fit_loglogistic requires >= 2 observations");
  for (double x : sample)
    if (x <= 0)
      throw failmine::DomainError(
          "fit_loglogistic requires strictly positive values");

  // Start from the log-space moment estimates: log X is logistic with
  // location log(alpha) and scale 1/beta; Var = pi^2 / (3 beta^2).
  std::vector<double> logs;
  logs.reserve(sample.size());
  for (double x : sample) logs.push_back(std::log(x));
  const double mu = stats::mean(logs);
  const double sd = stats::stddev(logs);
  if (sd <= 0)
    throw failmine::DomainError("fit_loglogistic requires non-constant values");
  const double beta0 = std::numbers::pi / (sd * std::sqrt(3.0));

  // Optimize in log-parameter space so positivity is built in.
  const auto neg_log_lik = [&](const std::vector<double>& p) {
    const double alpha = std::exp(p[0]);
    const double beta = std::exp(p[1]);
    if (!std::isfinite(alpha) || !std::isfinite(beta) || alpha <= 0 || beta <= 0)
      return std::numeric_limits<double>::infinity();
    const LogLogistic candidate(alpha, beta);
    double nll = 0.0;
    for (double x : sample) {
      const double d = candidate.pdf(x);
      if (d <= 0) return std::numeric_limits<double>::infinity();
      nll -= std::log(d);
    }
    return nll;
  };
  const auto result = nelder_mead(neg_log_lik, {mu, std::log(beta0)});
  return LogLogistic(std::exp(result.x[0]), std::exp(result.x[1]));
}

}  // namespace failmine::distfit
