// failmine/distfit/gamma_dist.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Gamma distribution with shape k > 0 and scale theta > 0.
class GammaDist final : public Distribution {
 public:
  GammaDist(double shape, double scale);

  std::string name() const override { return "gamma"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double mean() const override { return shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 2; }
  std::vector<Param> params() const override {
    return {{"shape", shape_}, {"scale", scale_}};
  }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<GammaDist>(*this);
  }

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace failmine::distfit
