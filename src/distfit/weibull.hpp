// failmine/distfit/weibull.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Weibull distribution with shape k > 0 and scale lambda > 0.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  std::string name() const override { return "weibull"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 2; }
  std::vector<Param> params() const override {
    return {{"shape", shape_}, {"scale", scale_}};
  }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<Weibull>(*this);
  }

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace failmine::distfit
