#include "distfit/gamma_dist.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

GammaDist::GammaDist(double shape, double scale) : shape_(shape), scale_(scale) {
  if (shape <= 0 || scale <= 0)
    throw failmine::DomainError("gamma parameters must be positive");
}

double GammaDist::pdf(double x) const {
  if (x < 0) return 0.0;
  if (x == 0) return shape_ < 1.0 ? 0.0 : (shape_ == 1.0 ? 1.0 / scale_ : 0.0);
  return std::exp((shape_ - 1.0) * std::log(x) - x / scale_ -
                  std::lgamma(shape_) - shape_ * std::log(scale_));
}

double GammaDist::cdf(double x) const {
  if (x <= 0) return 0.0;
  return stats::gamma_p(shape_, x / scale_);
}

double GammaDist::sample(util::Rng& rng) const {
  return rng.gamma(shape_, scale_);
}

}  // namespace failmine::distfit
