// failmine/distfit/erlang.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Erlang distribution: Gamma with integer shape k >= 1 and rate lambda > 0.
/// Kept distinct from GammaDist because the paper treats "Erlang/exponential"
/// as its own candidate family for some exit-code classes.
class Erlang final : public Distribution {
 public:
  Erlang(int k, double rate);

  std::string name() const override { return "erlang"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double mean() const override { return static_cast<double>(k_) / rate_; }
  double variance() const override {
    return static_cast<double>(k_) / (rate_ * rate_);
  }
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 2; }
  std::vector<Param> params() const override {
    return {{"k", static_cast<double>(k_)}, {"rate", rate_}};
  }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<Erlang>(*this);
  }

  int k() const { return k_; }
  double rate() const { return rate_; }

 private:
  int k_;
  double rate_;
};

}  // namespace failmine::distfit
