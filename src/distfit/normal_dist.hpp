// failmine/distfit/normal_dist.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Normal distribution with mean mu and stddev sigma > 0.
/// Included as a sanity baseline in the fitting study (heavy-tailed
/// runtimes should reject it).
class NormalDist final : public Distribution {
 public:
  NormalDist(double mu, double sigma);

  std::string name() const override { return "normal"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return mu_; }
  double variance() const override { return sigma_ * sigma_; }
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 2; }
  std::vector<Param> params() const override {
    return {{"mu", mu_}, {"sigma", sigma_}};
  }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<NormalDist>(*this);
  }
  double support_lower() const override { return mu_ - 40.0 * sigma_; }

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace failmine::distfit
