// failmine/distfit/rayleigh.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Rayleigh distribution with scale sigma > 0 (Weibull with shape 2).
class Rayleigh final : public Distribution {
 public:
  explicit Rayleigh(double sigma);

  std::string name() const override { return "rayleigh"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 1; }
  std::vector<Param> params() const override { return {{"sigma", sigma_}}; }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<Rayleigh>(*this);
  }

  double sigma() const { return sigma_; }

 private:
  double sigma_;
};

}  // namespace failmine::distfit
