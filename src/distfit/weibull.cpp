#include "distfit/weibull.hpp"

#include <cmath>

#include "util/error.hpp"

namespace failmine::distfit {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  if (shape <= 0 || scale <= 0)
    throw failmine::DomainError("weibull parameters must be positive");
}

double Weibull::pdf(double x) const {
  if (x < 0) return 0.0;
  if (x == 0) return shape_ < 1.0 ? 0.0 : (shape_ == 1.0 ? 1.0 / scale_ : 0.0);
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const {
  if (x <= 0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("quantile requires p in (0,1)");
  return scale_ * std::pow(-std::log(1.0 - p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

double Weibull::sample(util::Rng& rng) const {
  return rng.weibull(shape_, scale_);
}

}  // namespace failmine::distfit
