#include "distfit/erlang.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

Erlang::Erlang(int k, double rate) : k_(k), rate_(rate) {
  if (k < 1) throw failmine::DomainError("erlang k must be >= 1");
  if (rate <= 0) throw failmine::DomainError("erlang rate must be positive");
}

double Erlang::pdf(double x) const {
  if (x < 0) return 0.0;
  if (x == 0) return k_ == 1 ? rate_ : 0.0;
  const double k = static_cast<double>(k_);
  return std::exp(k * std::log(rate_) + (k - 1.0) * std::log(x) - rate_ * x -
                  std::lgamma(k));
}

double Erlang::cdf(double x) const {
  if (x <= 0) return 0.0;
  return stats::gamma_p(static_cast<double>(k_), rate_ * x);
}

double Erlang::sample(util::Rng& rng) const { return rng.erlang(k_, rate_); }

}  // namespace failmine::distfit
