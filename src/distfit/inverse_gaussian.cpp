#include "distfit/inverse_gaussian.hpp"

#include <cmath>
#include <numbers>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace failmine::distfit {

InverseGaussian::InverseGaussian(double mu, double lambda)
    : mu_(mu), lambda_(lambda) {
  if (mu <= 0 || lambda <= 0)
    throw failmine::DomainError("inverse gaussian parameters must be positive");
}

double InverseGaussian::pdf(double x) const {
  if (x <= 0) return 0.0;
  const double d = x - mu_;
  return std::sqrt(lambda_ / (2.0 * std::numbers::pi * x * x * x)) *
         std::exp(-lambda_ * d * d / (2.0 * mu_ * mu_ * x));
}

double InverseGaussian::cdf(double x) const {
  if (x <= 0) return 0.0;
  const double s = std::sqrt(lambda_ / x);
  const double a = stats::normal_cdf(s * (x / mu_ - 1.0));
  const double b = stats::normal_cdf(-s * (x / mu_ + 1.0));
  // The second term underflows to 0 for large lambda/mu; exp guard below.
  const double log_corr = 2.0 * lambda_ / mu_;
  const double corr = log_corr < 700.0 ? std::exp(log_corr) * b : 0.0;
  return std::fmin(1.0, a + corr);
}

double InverseGaussian::sample(util::Rng& rng) const {
  return rng.inverse_gaussian(mu_, lambda_);
}

}  // namespace failmine::distfit
