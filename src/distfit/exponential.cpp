#include "distfit/exponential.hpp"

#include <cmath>

#include "util/error.hpp"

namespace failmine::distfit {

Exponential::Exponential(double rate) : rate_(rate) {
  if (rate <= 0) throw failmine::DomainError("exponential rate must be positive");
}

double Exponential::pdf(double x) const {
  if (x < 0) return 0.0;
  return rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const {
  if (x <= 0) return 0.0;
  return 1.0 - std::exp(-rate_ * x);
}

double Exponential::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("quantile requires p in (0,1)");
  return -std::log(1.0 - p) / rate_;
}

double Exponential::sample(util::Rng& rng) const { return rng.exponential(rate_); }

}  // namespace failmine::distfit
