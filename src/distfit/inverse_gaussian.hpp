// failmine/distfit/inverse_gaussian.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Inverse Gaussian (Wald) distribution with mean mu > 0 and shape
/// lambda > 0; support (0, inf).
class InverseGaussian final : public Distribution {
 public:
  InverseGaussian(double mu, double lambda);

  std::string name() const override { return "inverse_gaussian"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double mean() const override { return mu_; }
  double variance() const override { return mu_ * mu_ * mu_ / lambda_; }
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 2; }
  std::vector<Param> params() const override {
    return {{"mu", mu_}, {"lambda", lambda_}};
  }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<InverseGaussian>(*this);
  }

  double mu() const { return mu_; }
  double lambda() const { return lambda_; }

 private:
  double mu_;
  double lambda_;
};

}  // namespace failmine::distfit
