// failmine/distfit/pareto.hpp

#pragma once

#include "distfit/distribution.hpp"

namespace failmine::distfit {

/// Classic (type I) Pareto with scale xm > 0 and shape alpha > 0;
/// support [xm, inf).
class Pareto final : public Distribution {
 public:
  Pareto(double xm, double alpha);

  std::string name() const override { return "pareto"; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;      ///< +inf when alpha <= 1
  double variance() const override;  ///< +inf when alpha <= 2
  double sample(util::Rng& rng) const override;
  std::size_t param_count() const override { return 2; }
  std::vector<Param> params() const override {
    return {{"xm", xm_}, {"alpha", alpha_}};
  }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<Pareto>(*this);
  }
  double support_lower() const override { return xm_; }

  double xm() const { return xm_; }
  double alpha() const { return alpha_; }

 private:
  double xm_;
  double alpha_;
};

}  // namespace failmine::distfit
