// failmine/columnar/engine.hpp
//
// One query surface over either representation.
//
// A QueryEngine borrows either the four AoS logs (row backend) or a
// ColumnarDataset (columnar backend) and exposes the shared analyses —
// E01/E02/E03/E06/E11 — with identical result types and, by the
// kernel contracts in columnar/analyses.hpp, bit-identical results.
// The CLI and the benches pick the backend with --columnar; everything
// downstream of the engine is representation-agnostic.

#pragma once

#include <cstdint>
#include <vector>

#include "analysis/ras_breakdown.hpp"
#include "analysis/temporal.hpp"
#include "analysis/user_stats.hpp"
#include "columnar/table.hpp"
#include "core/joint_analyzer.hpp"
#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "tasklog/task.hpp"
#include "topology/machine.hpp"
#include "util/time.hpp"

namespace failmine::columnar {

class QueryEngine {
 public:
  /// Row backend: borrows the four logs (they must outlive the engine).
  QueryEngine(const joblog::JobLog& jobs, const tasklog::TaskLog& tasks,
              const raslog::RasLog& ras, const iolog::IoLog& io,
              const topology::MachineConfig& machine);

  /// Columnar backend: borrows the dataset.
  QueryEngine(const ColumnarDataset& dataset,
              const topology::MachineConfig& machine);

  bool is_columnar() const { return dataset_ != nullptr; }
  const topology::MachineConfig& machine() const { return machine_; }

  core::DatasetSummary dataset_summary() const;
  core::ExitBreakdown exit_breakdown() const;
  std::vector<analysis::GroupStats> per_user_stats() const;
  std::vector<analysis::GroupStats> per_project_stats() const;
  analysis::RasBreakdown ras_breakdown() const;
  analysis::HourlyProfile submissions_by_hour() const;
  analysis::WeekdayProfile submissions_by_weekday() const;
  analysis::HourlyProfile failures_by_hour() const;
  analysis::HourlyProfile events_by_hour() const;
  std::vector<std::uint64_t> monthly_submissions(util::UnixSeconds origin) const;
  std::vector<std::uint64_t> monthly_failures(util::UnixSeconds origin) const;
  std::vector<std::uint64_t> monthly_fatal_events(
      util::UnixSeconds origin) const;

 private:
  const joblog::JobLog* jobs_ = nullptr;
  const tasklog::TaskLog* tasks_ = nullptr;
  const raslog::RasLog* ras_ = nullptr;
  const iolog::IoLog* io_ = nullptr;
  const ColumnarDataset* dataset_ = nullptr;
  topology::MachineConfig machine_;
};

}  // namespace failmine::columnar
