#include "columnar/table.hpp"

namespace failmine::columnar {

namespace {

template <class T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

joblog::JobRecord JobTable::row(std::size_t i) const {
  joblog::JobRecord j;
  j.job_id = job_id[i];
  j.user_id = user_id[i];
  j.project_id = project_id[i];
  j.queue = queue_dict.name(queue_code[i]);
  j.start_time = start_time.at(i);
  j.submit_time = j.start_time - wait_seconds[i];
  j.end_time = j.start_time + runtime_seconds[i];
  j.nodes_used = nodes_used[i];
  j.task_count = task_count[i];
  j.requested_walltime = requested_walltime[i];
  j.exit_code = exit_code[i];
  j.exit_signal = exit_signal[i];
  j.exit_class = static_cast<joblog::ExitClass>(exit_class_code[i]);
  j.partition_first_midplane = partition_first_midplane[i];
  return j;
}

std::vector<joblog::JobRecord> JobTable::to_records() const {
  std::vector<joblog::JobRecord> out(rows());
  start_time.for_each([&](std::size_t i, util::UnixSeconds start) {
    joblog::JobRecord& j = out[i];
    j.job_id = job_id[i];
    j.user_id = user_id[i];
    j.project_id = project_id[i];
    j.queue = queue_dict.name(queue_code[i]);
    j.start_time = start;
    j.submit_time = start - wait_seconds[i];
    j.end_time = start + runtime_seconds[i];
    j.nodes_used = nodes_used[i];
    j.task_count = task_count[i];
    j.requested_walltime = requested_walltime[i];
    j.exit_code = exit_code[i];
    j.exit_signal = exit_signal[i];
    j.exit_class = static_cast<joblog::ExitClass>(exit_class_code[i]);
    j.partition_first_midplane = partition_first_midplane[i];
  });
  return out;
}

std::size_t JobTable::bytes() const {
  return vec_bytes(job_id) + vec_bytes(user_id) + vec_bytes(project_id) +
         vec_bytes(queue_code) + queue_dict.bytes() + start_time.bytes() +
         vec_bytes(wait_seconds) + vec_bytes(runtime_seconds) +
         vec_bytes(nodes_used) + vec_bytes(task_count) +
         vec_bytes(requested_walltime) + vec_bytes(exit_code) +
         vec_bytes(exit_signal) + vec_bytes(exit_class_code) +
         vec_bytes(partition_first_midplane) + failed.bytes();
}

raslog::RasEvent RasTable::row(std::size_t i) const {
  raslog::RasEvent e;
  e.record_id = record_id[i];
  e.timestamp = timestamp.at(i);
  e.message_id = message_dict.name(message_code[i]);
  e.severity = static_cast<raslog::Severity>(severity_code[i]);
  e.component = static_cast<raslog::Component>(component_code[i]);
  e.category = static_cast<raslog::Category>(category_code[i]);
  e.location = locations[location_code[i]];
  if (has_job.test(i)) e.job_id = job_id[i];
  e.text = std::string(text.view(i));
  return e;
}

std::vector<raslog::RasEvent> RasTable::to_records() const {
  std::vector<raslog::RasEvent> out(rows());
  timestamp.for_each([&](std::size_t i, util::UnixSeconds t) {
    raslog::RasEvent& e = out[i];
    e.record_id = record_id[i];
    e.timestamp = t;
    e.message_id = message_dict.name(message_code[i]);
    e.severity = static_cast<raslog::Severity>(severity_code[i]);
    e.component = static_cast<raslog::Component>(component_code[i]);
    e.category = static_cast<raslog::Category>(category_code[i]);
    e.location = locations[location_code[i]];
    if (has_job.test(i)) e.job_id = job_id[i];
    e.text = std::string(text.view(i));
  });
  return out;
}

std::size_t RasTable::bytes() const {
  std::size_t total = vec_bytes(record_id) + timestamp.bytes() +
                      vec_bytes(message_code) + message_dict.bytes() +
                      vec_bytes(severity_code) + vec_bytes(component_code) +
                      vec_bytes(category_code) + vec_bytes(location_code) +
                      location_dict.bytes() +
                      vec_bytes(locations) + has_job.bytes() +
                      vec_bytes(job_id) + text.bytes();
  for (const Bitmap& b : severity_bits) total += b.bytes();
  return total;
}

tasklog::TaskRecord TaskTable::row(std::size_t i) const {
  tasklog::TaskRecord t;
  t.task_id = task_id[i];
  t.job_id = job_id[i];
  t.sequence = sequence[i];
  t.start_time = start_time.at(i);
  t.end_time = t.start_time + runtime_seconds[i];
  t.nodes_used = nodes_used[i];
  t.ranks_per_node = ranks_per_node[i];
  t.exit_code = exit_code[i];
  t.exit_signal = exit_signal[i];
  return t;
}

std::vector<tasklog::TaskRecord> TaskTable::to_records() const {
  std::vector<tasklog::TaskRecord> out(rows());
  start_time.for_each([&](std::size_t i, util::UnixSeconds start) {
    tasklog::TaskRecord& t = out[i];
    t.task_id = task_id[i];
    t.job_id = job_id[i];
    t.sequence = sequence[i];
    t.start_time = start;
    t.end_time = start + runtime_seconds[i];
    t.nodes_used = nodes_used[i];
    t.ranks_per_node = ranks_per_node[i];
    t.exit_code = exit_code[i];
    t.exit_signal = exit_signal[i];
  });
  return out;
}

std::size_t TaskTable::bytes() const {
  return vec_bytes(task_id) + vec_bytes(job_id) + vec_bytes(sequence) +
         start_time.bytes() + vec_bytes(runtime_seconds) +
         vec_bytes(nodes_used) + vec_bytes(ranks_per_node) +
         vec_bytes(exit_code) + vec_bytes(exit_signal) + failed.bytes();
}

iolog::IoRecord IoTable::row(std::size_t i) const {
  iolog::IoRecord r;
  r.job_id = job_id[i];
  r.bytes_read = bytes_read[i];
  r.bytes_written = bytes_written[i];
  r.read_time_seconds = read_time_seconds[i];
  r.write_time_seconds = write_time_seconds[i];
  r.files_accessed = files_accessed[i];
  r.ranks_doing_io = ranks_doing_io[i];
  return r;
}

std::vector<iolog::IoRecord> IoTable::to_records() const {
  std::vector<iolog::IoRecord> out(rows());
  for (std::size_t i = 0; i < rows(); ++i) out[i] = row(i);
  return out;
}

std::size_t IoTable::bytes() const {
  return vec_bytes(job_id) + vec_bytes(bytes_read) + vec_bytes(bytes_written) +
         vec_bytes(read_time_seconds) + vec_bytes(write_time_seconds) +
         vec_bytes(files_accessed) + vec_bytes(ranks_doing_io);
}

}  // namespace failmine::columnar
