// failmine/columnar/dictionary.hpp
//
// Dictionary encoding for low-cardinality string columns.
//
// A Dictionary maps distinct strings to dense uint32 codes in first-seen
// order. Columnar tables store the codes (4 bytes per row) and keep one
// Dictionary per string column; group-bys over the column become dense
// histogram kernels over the codes (columnar/kernels.hpp).
//
// Code stability across parallel builds: the ingest engine parses chunks
// concurrently, each into its own builder with its own local dictionary,
// and the deterministic chunk-order merge remaps every chunk's codes into
// the first builder's dictionary. Because chunks are merged in file
// order, the final code assignment is exactly what a serial first-seen
// pass over the whole file would produce — for any thread count.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace failmine::columnar {

class Dictionary {
 public:
  /// Code for `name`, appending a new entry on first sight.
  std::uint32_t encode(std::string_view name);

  /// Code for `name` if already present.
  std::optional<std::uint32_t> find(std::string_view name) const;

  /// The string behind a code; throws DomainError on an unknown code.
  const std::string& name(std::uint32_t code) const;

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  bool empty() const { return names_.empty(); }

  /// All entries in code order.
  const std::vector<std::string>& names() const { return names_; }

  /// Appends `other`'s entries (in other's code order, skipping ones
  /// already present) and fills `remap` so that
  /// `remap[other_code] == this->encode(other.name(other_code))`.
  void merge_from(const Dictionary& other, std::vector<std::uint32_t>& remap);

  /// Heap bytes held (entry strings + index).
  std::size_t bytes() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

}  // namespace failmine::columnar
