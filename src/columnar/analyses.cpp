#include "columnar/analyses.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "columnar/kernels.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::columnar {

namespace {

constexpr std::size_t kNumExitClasses = std::size(joblog::kAllExitClasses);
constexpr std::size_t kNumSeverities = std::size(raslog::kAllSeverities);
constexpr std::size_t kNumComponents = std::size(raslog::kAllComponents);
constexpr std::size_t kNumCategories = std::size(raslog::kAllCategories);

/// Same expression, same evaluation order as JobRecord::core_hours.
double core_hours_of_row(const JobTable& t, std::size_t i, double cores) {
  return static_cast<double>(t.nodes_used[i]) * cores *
         (static_cast<double>(t.runtime_seconds[i]) / 3600.0);
}

/// Dense group accumulation over a u32 id column. Ids are dense small
/// integers in practice; past this many slots the scan falls back to a
/// hash map rather than allocating a huge sparse array.
constexpr std::size_t kMaxDenseGroups = 16u << 20;

/// Per-class flags, indexed by exit-class code. The scan adds the flag
/// values unconditionally instead of branching on is_failure /
/// is_user_caused — those branches are data-dependent on a skewed exit
/// mix and mispredict badly at scan scale. `fail_mult` preserves the
/// row path's f64 bit parity: `x += ch * 0.0` leaves a non-negative
/// accumulator bit-identical (the sum never goes through -0.0), and
/// `ch * 1.0 == ch` exactly.
struct ClassFlags {
  std::array<std::uint64_t, kNumExitClasses> fail{};
  std::array<std::uint64_t, kNumExitClasses> user{};
  std::array<std::uint64_t, kNumExitClasses> system{};
  std::array<double, kNumExitClasses> fail_mult{};
};

const ClassFlags& class_flags() {
  static const ClassFlags flags = [] {
    ClassFlags f;
    for (std::size_t c = 0; c < kNumExitClasses; ++c) {
      const joblog::ExitClass cls = joblog::kAllExitClasses[c];
      f.fail[c] = joblog::is_failure(cls) ? 1 : 0;
      f.user[c] = joblog::is_failure(cls) && joblog::is_user_caused(cls) ? 1 : 0;
      f.system[c] =
          joblog::is_failure(cls) && joblog::is_system_caused(cls) ? 1 : 0;
      f.fail_mult[c] = joblog::is_failure(cls) ? 1.0 : 0.0;
    }
    return f;
  }();
  return flags;
}

std::vector<analysis::GroupStats> group_stats(
    const JobTable& t, const topology::MachineConfig& machine,
    const std::vector<std::uint32_t>& ids) {
  const double cores = static_cast<double>(machine.cores_per_node);
  const std::size_t n = t.rows();
  const std::size_t slots = static_cast<std::size_t>(kernels::max_u32(ids)) + 1;
  const ClassFlags& fl = class_flags();

  // slot_of must have set g.group_id by the time the slot is emitted;
  // the hot loop itself never writes it.
  auto accumulate = [&](auto&& slot_of) {
    for (std::size_t i = 0; i < n; ++i) {
      analysis::GroupStats& g = slot_of(ids[i]);
      ++g.jobs;
      const double ch = core_hours_of_row(t, i, cores);
      const std::uint8_t c = t.exit_class_code[i];
      g.core_hours += ch;
      g.failed_core_hours += ch * fl.fail_mult[c];
      g.failures += fl.fail[c];
      g.user_caused_failures += fl.user[c];
      g.system_caused_failures += fl.system[c];
    }
  };

  std::vector<analysis::GroupStats> out;
  if (n == 0) return out;
  if (slots <= kMaxDenseGroups) {
    std::vector<analysis::GroupStats> dense(slots);
    accumulate([&](std::uint32_t id) -> analysis::GroupStats& {
      return dense[id];
    });
    for (std::size_t id = 0; id < slots; ++id) {
      if (dense[id].jobs == 0) continue;
      dense[id].group_id = static_cast<std::uint32_t>(id);
      out.push_back(dense[id]);
    }
    // dense emission is already ascending by group id
    return out;
  }
  std::unordered_map<std::uint32_t, analysis::GroupStats> sparse;
  accumulate([&](std::uint32_t id) -> analysis::GroupStats& {
    analysis::GroupStats& g = sparse[id];
    g.group_id = id;
    return g;
  });
  out.reserve(sparse.size());
  for (const auto& [id, g] : sparse) out.push_back(g);
  std::sort(out.begin(), out.end(),
            [](const analysis::GroupStats& a, const analysis::GroupStats& b) {
              return a.group_id < b.group_id;
            });
  return out;
}

}  // namespace

core::DatasetSummary dataset_summary(const ColumnarDataset& ds,
                                     const topology::MachineConfig& machine) {
  FAILMINE_TRACE_SPAN("columnar.e01.dataset_summary");
  const JobTable& jobs = ds.jobs;
  if (jobs.rows() == 0)
    throw failmine::DomainError("dataset summary needs jobs");
  // Observation window: first submit to last end, widened by the RAS
  // span — the same rule as the JointAnalyzer constructor.
  util::UnixSeconds lo = jobs.start_time.front() - jobs.wait_seconds.front();
  util::UnixSeconds hi = lo;
  double total_core_hours = 0.0;
  const double cores = static_cast<double>(machine.cores_per_node);
  jobs.start_time.for_each([&](std::size_t i, util::UnixSeconds start) {
    lo = std::min(lo, start - jobs.wait_seconds[i]);
    hi = std::max(hi, start + jobs.runtime_seconds[i]);
    total_core_hours += core_hours_of_row(jobs, i, cores);
  });
  if (ds.ras.rows() > 0) {
    lo = std::min(lo, ds.ras.timestamp.front());
    hi = std::max(hi, ds.ras.timestamp.back() + 1);
  }

  core::DatasetSummary s;
  s.span_days = static_cast<double>(hi - lo) /
                static_cast<double>(util::kSecondsPerDay);
  s.jobs = jobs.rows();
  s.tasks = ds.tasks.rows();
  s.ras_events = ds.ras.rows();
  for (std::size_t sev = 0; sev < kNumSeverities; ++sev)
    s.ras_by_severity[sev] = ds.ras.severity_bits[sev].count();
  s.io_records = ds.io.rows();
  s.total_core_hours = total_core_hours;
  return s;
}

core::ExitBreakdown exit_breakdown(const JobTable& jobs,
                                   const topology::MachineConfig& machine) {
  FAILMINE_TRACE_SPAN("columnar.e02.exit_breakdown");
  core::ExitBreakdown b;
  b.total_jobs = jobs.rows();
  const std::vector<std::uint64_t> counts =
      kernels::count_by_key(jobs.exit_class_code, kNumExitClasses);
  const double cores = static_cast<double>(machine.cores_per_node);
  const std::vector<double> hours = kernels::sum_by_key(
      jobs.exit_class_code, kNumExitClasses,
      [&](std::size_t i) { return core_hours_of_row(jobs, i, cores); });

  std::uint64_t user_caused = 0;
  std::uint64_t system_caused = 0;
  for (std::size_t c = 0; c < kNumExitClasses; ++c) {
    const auto cls = joblog::kAllExitClasses[c];
    if (!joblog::is_failure(cls)) continue;
    b.total_failures += counts[c];
    if (joblog::is_user_caused(cls)) user_caused += counts[c];
    if (joblog::is_system_caused(cls)) system_caused += counts[c];
  }
  for (std::size_t c = 0; c < kNumExitClasses; ++c) {
    const auto cls = joblog::kAllExitClasses[c];
    if (counts[c] == 0) continue;
    core::ExitBreakdownRow row;
    row.exit_class = cls;
    row.jobs = counts[c];
    row.core_hours = hours[c];
    row.share_of_jobs =
        static_cast<double>(row.jobs) / static_cast<double>(b.total_jobs);
    row.share_of_failures =
        joblog::is_failure(cls) && b.total_failures > 0
            ? static_cast<double>(row.jobs) /
                  static_cast<double>(b.total_failures)
            : 0.0;
    b.rows.push_back(row);
  }
  if (b.total_failures > 0) {
    b.user_caused_share = static_cast<double>(user_caused) /
                          static_cast<double>(b.total_failures);
    b.system_caused_share = static_cast<double>(system_caused) /
                            static_cast<double>(b.total_failures);
  }
  return b;
}

std::vector<analysis::GroupStats> per_user_stats(
    const JobTable& jobs, const topology::MachineConfig& machine) {
  FAILMINE_TRACE_SPAN("columnar.e03.per_user");
  return group_stats(jobs, machine, jobs.user_id);
}

std::vector<analysis::GroupStats> per_project_stats(
    const JobTable& jobs, const topology::MachineConfig& machine) {
  FAILMINE_TRACE_SPAN("columnar.e03.per_project");
  return group_stats(jobs, machine, jobs.project_id);
}

analysis::RasBreakdown ras_breakdown(const RasTable& ras) {
  FAILMINE_TRACE_SPAN("columnar.e06.ras_breakdown");
  analysis::RasBreakdown b;
  b.total_events = ras.rows();
  const std::vector<std::uint64_t> by_sev =
      kernels::count_by_key(ras.severity_code, kNumSeverities);
  for (std::size_t sev = 0; sev < kNumSeverities; ++sev)
    b.by_severity[sev] = by_sev[sev];

  const std::vector<std::uint64_t> comp_sev = kernels::count_by_key_pair(
      ras.component_code, kNumComponents, ras.severity_code, kNumSeverities);
  for (std::size_t c = 0; c < kNumComponents; ++c) {
    analysis::SeverityCounts counts{};
    std::uint64_t total = 0;
    for (std::size_t sev = 0; sev < kNumSeverities; ++sev) {
      counts[sev] = comp_sev[c * kNumSeverities + sev];
      total += counts[sev];
    }
    if (total > 0) b.by_component[raslog::kAllComponents[c]] = counts;
  }
  const std::vector<std::uint64_t> cat_sev = kernels::count_by_key_pair(
      ras.category_code, kNumCategories, ras.severity_code, kNumSeverities);
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    analysis::SeverityCounts counts{};
    std::uint64_t total = 0;
    for (std::size_t sev = 0; sev < kNumSeverities; ++sev) {
      counts[sev] = cat_sev[c * kNumSeverities + sev];
      total += counts[sev];
    }
    if (total > 0) b.by_category[raslog::kAllCategories[c]] = counts;
  }
  return b;
}

analysis::HourlyProfile submissions_by_hour(const JobTable& jobs) {
  FAILMINE_TRACE_SPAN("columnar.e11.submissions_by_hour");
  analysis::HourlyProfile p{};
  jobs.start_time.for_each([&](std::size_t i, util::UnixSeconds start) {
    ++p[static_cast<std::size_t>(
        util::hour_of_day(start - jobs.wait_seconds[i]))];
  });
  return p;
}

analysis::WeekdayProfile submissions_by_weekday(const JobTable& jobs) {
  FAILMINE_TRACE_SPAN("columnar.e11.submissions_by_weekday");
  analysis::WeekdayProfile p{};
  jobs.start_time.for_each([&](std::size_t i, util::UnixSeconds start) {
    ++p[static_cast<std::size_t>(
        util::day_of_week(start - jobs.wait_seconds[i]))];
  });
  return p;
}

analysis::HourlyProfile failures_by_hour(const JobTable& jobs) {
  FAILMINE_TRACE_SPAN("columnar.e11.failures_by_hour");
  analysis::HourlyProfile p{};
  jobs.start_time.for_each([&](std::size_t i, util::UnixSeconds start) {
    if (jobs.failed.test(i))
      ++p[static_cast<std::size_t>(
          util::hour_of_day(start + jobs.runtime_seconds[i]))];
  });
  return p;
}

analysis::HourlyProfile events_by_hour(const RasTable& ras) {
  FAILMINE_TRACE_SPAN("columnar.e11.events_by_hour");
  analysis::HourlyProfile p{};
  ras.timestamp.for_each([&](std::size_t, util::UnixSeconds t) {
    ++p[static_cast<std::size_t>(util::hour_of_day(t))];
  });
  return p;
}

namespace {

void bump_month(std::vector<std::uint64_t>& series, util::UnixSeconds origin,
                util::UnixSeconds t) {
  const int idx = util::month_index(origin, t);
  if (idx < 0) return;
  if (static_cast<std::size_t>(idx) >= series.size())
    series.resize(static_cast<std::size_t>(idx) + 1, 0);
  ++series[static_cast<std::size_t>(idx)];
}

}  // namespace

std::vector<std::uint64_t> monthly_submissions(const JobTable& jobs,
                                               util::UnixSeconds origin) {
  std::vector<std::uint64_t> series;
  jobs.start_time.for_each([&](std::size_t i, util::UnixSeconds start) {
    bump_month(series, origin, start - jobs.wait_seconds[i]);
  });
  return series;
}

std::vector<std::uint64_t> monthly_failures(const JobTable& jobs,
                                            util::UnixSeconds origin) {
  std::vector<std::uint64_t> series;
  jobs.start_time.for_each([&](std::size_t i, util::UnixSeconds start) {
    if (jobs.failed.test(i))
      bump_month(series, origin, start + jobs.runtime_seconds[i]);
  });
  return series;
}

std::vector<std::uint64_t> monthly_fatal_events(const RasTable& ras,
                                                util::UnixSeconds origin) {
  std::vector<std::uint64_t> series;
  constexpr auto kFatal = static_cast<std::size_t>(raslog::Severity::kFatal);
  ras.timestamp.for_each([&](std::size_t i, util::UnixSeconds t) {
    if (ras.severity_bits[kFatal].test(i)) bump_month(series, origin, t);
  });
  return series;
}

}  // namespace failmine::columnar
