// failmine/columnar/load.hpp
//
// CSV → columnar table loaders.
//
// Each loader runs the shared ingest engine (ingest::load_csv_fold)
// with a per-chunk table builder as the accumulator: worker threads
// parse rows straight into chunk-local column vectors — no intermediate
// AoS record vector, no second pass over the file bytes — and the
// deterministic chunk-order merge (columnar/builder.hpp) produces the
// sealed table. Header validation, rejected-row diagnostics, parse.*
// counters and the thrown error on malformed input are identical to the
// row-path read_csv loaders for any thread count.
//
// Contract difference from the row path: the AoS containers' finalize()
// detects duplicate job / I/O record ids (via their lookup indexes);
// the columnar tables carry no id index, so these loaders do not reject
// duplicates. Inputs written by write_csv never contain them.

#pragma once

#include <string>

#include "columnar/builder.hpp"
#include "columnar/table.hpp"
#include "ingest/loader.hpp"
#include "topology/machine.hpp"

namespace failmine::columnar {

/// Loads a job log CSV (joblog::job_csv_header() layout).
JobTable load_job_table(const std::string& path,
                        const ingest::LoadOptions& options = {});

/// Loads a RAS log CSV, validating locations against `config`.
RasTable load_ras_table(const std::string& path,
                        const topology::MachineConfig& config,
                        const ingest::LoadOptions& options = {});

/// Loads a task log CSV.
TaskTable load_task_table(const std::string& path,
                          const ingest::LoadOptions& options = {});

/// Loads an I/O log CSV.
IoTable load_io_table(const std::string& path,
                      const ingest::LoadOptions& options = {});

/// Loads the four standard files of a dataset directory (jobs.csv,
/// tasks.csv, ras.csv, io.csv — the sim::write_dataset layout).
ColumnarDataset load_dataset(const std::string& directory,
                             const topology::MachineConfig& config,
                             const ingest::LoadOptions& options = {});

}  // namespace failmine::columnar
