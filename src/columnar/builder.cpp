#include "columnar/builder.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "raslog/event.hpp"
#include "tasklog/task.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace failmine::columnar {

namespace {

std::uint32_t checked_u32_span(std::int64_t seconds, const char* what) {
  if (seconds < 0 || seconds > static_cast<std::int64_t>(UINT32_MAX))
    throw failmine::DomainError(std::string(what) +
                                " outside the columnar u32 range: " +
                                std::to_string(seconds));
  return static_cast<std::uint32_t>(seconds);
}

template <class T>
void append_vec(std::vector<T>& dst, std::vector<T>& src) {
  dst.insert(dst.end(), std::make_move_iterator(src.begin()),
             std::make_move_iterator(src.end()));
  src.clear();
  src.shrink_to_fit();
}

/// Stable permutation that sorts rows by `less` (row indices compared).
template <class Less>
std::vector<std::size_t> sort_permutation(std::size_t n, Less&& less) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(), less);
  return perm;
}

template <class T>
void apply_permutation(std::vector<T>& v,
                       const std::vector<std::size_t>& perm) {
  std::vector<T> out;
  out.reserve(v.size());
  for (const std::size_t i : perm) out.push_back(std::move(v[i]));
  v = std::move(out);
}

void flush_build_metrics(std::size_t rows, std::size_t bytes,
                         std::size_t dict_entries) {
  obs::metrics().counter("columnar.rows").add(rows);
  obs::metrics().counter("columnar.bytes").add(bytes);
  obs::metrics().counter("columnar.dict_entries").add(dict_entries);
}

}  // namespace

// ---- JobTableBuilder ---------------------------------------------------

void JobTableBuilder::reserve(std::size_t n) {
  job_id_.reserve(n);
  user_id_.reserve(n);
  project_id_.reserve(n);
  queue_code_.reserve(n);
  start_time_.reserve(n);
  wait_seconds_.reserve(n);
  runtime_seconds_.reserve(n);
  nodes_used_.reserve(n);
  task_count_.reserve(n);
  requested_walltime_.reserve(n);
  exit_code_.reserve(n);
  exit_signal_.reserve(n);
  exit_class_code_.reserve(n);
  partition_first_midplane_.reserve(n);
}

void JobTableBuilder::add(const joblog::JobRecord& j) {
  wait_seconds_.push_back(
      checked_u32_span(j.start_time - j.submit_time, "job queue wait"));
  runtime_seconds_.push_back(
      checked_u32_span(j.end_time - j.start_time, "job runtime"));
  job_id_.push_back(j.job_id);
  user_id_.push_back(j.user_id);
  project_id_.push_back(j.project_id);
  queue_code_.push_back(queue_dict_.encode(j.queue));
  start_time_.push_back(j.start_time);
  nodes_used_.push_back(j.nodes_used);
  task_count_.push_back(j.task_count);
  requested_walltime_.push_back(j.requested_walltime);
  exit_code_.push_back(j.exit_code);
  exit_signal_.push_back(j.exit_signal);
  exit_class_code_.push_back(static_cast<std::uint8_t>(j.exit_class));
  partition_first_midplane_.push_back(j.partition_first_midplane);
}

void JobTableBuilder::add_csv_row(const util::FieldVec& row) {
  joblog::parse_csv_row(row, scratch_);
  add(scratch_);
}

JobTable JobTableBuilder::merge(std::vector<JobTableBuilder> chunks) {
  FAILMINE_TRACE_SPAN("columnar.build");
  JobTable t;
  std::vector<util::UnixSeconds> start_time;
  if (!chunks.empty()) {
    JobTableBuilder& first = chunks.front();
    t.queue_dict = std::move(first.queue_dict_);
    t.job_id = std::move(first.job_id_);
    t.user_id = std::move(first.user_id_);
    t.project_id = std::move(first.project_id_);
    t.queue_code = std::move(first.queue_code_);
    start_time = std::move(first.start_time_);
    t.wait_seconds = std::move(first.wait_seconds_);
    t.runtime_seconds = std::move(first.runtime_seconds_);
    t.nodes_used = std::move(first.nodes_used_);
    t.task_count = std::move(first.task_count_);
    t.requested_walltime = std::move(first.requested_walltime_);
    t.exit_code = std::move(first.exit_code_);
    t.exit_signal = std::move(first.exit_signal_);
    t.exit_class_code = std::move(first.exit_class_code_);
    t.partition_first_midplane = std::move(first.partition_first_midplane_);
    std::vector<std::uint32_t> remap;
    for (std::size_t ci = 1; ci < chunks.size(); ++ci) {
      JobTableBuilder& c = chunks[ci];
      t.queue_dict.merge_from(c.queue_dict_, remap);
      t.queue_code.reserve(t.queue_code.size() + c.queue_code_.size());
      for (const std::uint32_t code : c.queue_code_)
        t.queue_code.push_back(remap[code]);
      append_vec(t.job_id, c.job_id_);
      append_vec(t.user_id, c.user_id_);
      append_vec(t.project_id, c.project_id_);
      append_vec(start_time, c.start_time_);
      append_vec(t.wait_seconds, c.wait_seconds_);
      append_vec(t.runtime_seconds, c.runtime_seconds_);
      append_vec(t.nodes_used, c.nodes_used_);
      append_vec(t.task_count, c.task_count_);
      append_vec(t.requested_walltime, c.requested_walltime_);
      append_vec(t.exit_code, c.exit_code_);
      append_vec(t.exit_signal, c.exit_signal_);
      append_vec(t.exit_class_code, c.exit_class_code_);
      append_vec(t.partition_first_midplane, c.partition_first_midplane_);
    }
  }
  const std::size_t n = t.job_id.size();
  const auto key_less = [&](std::size_t a, std::size_t b) {
    if (start_time[a] != start_time[b]) return start_time[a] < start_time[b];
    return t.job_id[a] < t.job_id[b];
  };
  bool sorted = true;
  for (std::size_t i = 1; i < n && sorted; ++i) sorted = !key_less(i, i - 1);
  if (!sorted) {
    const auto perm = sort_permutation(n, key_less);
    apply_permutation(t.job_id, perm);
    apply_permutation(t.user_id, perm);
    apply_permutation(t.project_id, perm);
    apply_permutation(t.queue_code, perm);
    apply_permutation(start_time, perm);
    apply_permutation(t.wait_seconds, perm);
    apply_permutation(t.runtime_seconds, perm);
    apply_permutation(t.nodes_used, perm);
    apply_permutation(t.task_count, perm);
    apply_permutation(t.requested_walltime, perm);
    apply_permutation(t.exit_code, perm);
    apply_permutation(t.exit_signal, perm);
    apply_permutation(t.exit_class_code, perm);
    apply_permutation(t.partition_first_midplane, perm);
  }
  t.start_time = TimestampColumn(std::move(start_time));
  t.start_time.seal();
  t.failed.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    if (joblog::is_failure(static_cast<joblog::ExitClass>(t.exit_class_code[i])))
      t.failed.set(i);
  flush_build_metrics(n, t.bytes(), t.queue_dict.size());
  return t;
}

// ---- RasTableBuilder ---------------------------------------------------

void RasTableBuilder::reserve(std::size_t n) {
  record_id_.reserve(n);
  timestamp_.reserve(n);
  message_code_.reserve(n);
  severity_code_.reserve(n);
  component_code_.reserve(n);
  category_code_.reserve(n);
  location_code_.reserve(n);
  has_job_.reserve(n);
  job_id_.reserve(n);
}

std::uint32_t RasTableBuilder::encode_location(const topology::Location& loc) {
  const std::string name = loc.to_string();
  if (const auto code = location_dict_.find(name)) return *code;
  const std::uint32_t code = location_dict_.encode(name);
  locations_.push_back(loc);
  return code;
}

void RasTableBuilder::add(const raslog::RasEvent& e) {
  record_id_.push_back(e.record_id);
  timestamp_.push_back(e.timestamp);
  message_code_.push_back(message_dict_.encode(e.message_id));
  severity_code_.push_back(static_cast<std::uint8_t>(e.severity));
  component_code_.push_back(static_cast<std::uint8_t>(e.component));
  category_code_.push_back(static_cast<std::uint8_t>(e.category));
  location_code_.push_back(encode_location(e.location));
  has_job_.push_back(e.job_id.has_value() ? 1 : 0);
  job_id_.push_back(e.job_id.value_or(0));
  text_.push_back(e.text);
}

void RasTableBuilder::add_csv_row(const util::FieldVec& row) {
  // Field order (and so the first thrown error on a bad row) matches the
  // raslog row parser exactly.
  record_id_.push_back(util::parse_uint(row[0]));
  struct Rollback {
    std::vector<std::uint64_t>& ids;
    bool armed = true;
    ~Rollback() {
      if (armed) ids.pop_back();
    }
  } rollback{record_id_};
  timestamp_.push_back(util::parse_timestamp(row[1]));
  struct RollbackTs {
    std::vector<util::UnixSeconds>& ts;
    bool armed = true;
    ~RollbackTs() {
      if (armed) ts.pop_back();
    }
  } rollback_ts{timestamp_};
  const std::uint8_t severity =
      static_cast<std::uint8_t>(raslog::severity_from_name(row[3]));
  const std::uint8_t component =
      static_cast<std::uint8_t>(raslog::component_from_name(row[4]));
  const std::uint8_t category =
      static_cast<std::uint8_t>(raslog::category_from_name(row[5]));
  // Location strings repeat heavily; a dictionary hit skips the parse
  // entirely (the same string always parses to the same location).
  std::uint32_t location;
  if (const auto code = location_dict_.find(row[6])) {
    location = *code;
  } else {
    const topology::Location loc = topology::Location::parse(row[6], *config_);
    location = location_dict_.encode(row[6]);
    locations_.push_back(loc);
  }
  const bool has_job = !row[7].empty();
  const std::uint64_t job = has_job ? util::parse_uint(row[7]) : 0;
  // All throwing parses are done; commit the row.
  rollback.armed = false;
  rollback_ts.armed = false;
  message_code_.push_back(message_dict_.encode(row[2]));
  severity_code_.push_back(severity);
  component_code_.push_back(component);
  category_code_.push_back(category);
  location_code_.push_back(location);
  has_job_.push_back(has_job ? 1 : 0);
  job_id_.push_back(job);
  text_.push_back(row[8]);
}

RasTable RasTableBuilder::merge(std::vector<RasTableBuilder> chunks) {
  FAILMINE_TRACE_SPAN("columnar.build");
  RasTable t;
  std::vector<util::UnixSeconds> timestamp;
  std::vector<std::uint8_t> has_job;
  if (!chunks.empty()) {
    RasTableBuilder& first = chunks.front();
    t.message_dict = std::move(first.message_dict_);
    t.location_dict = std::move(first.location_dict_);
    t.locations = std::move(first.locations_);
    t.record_id = std::move(first.record_id_);
    timestamp = std::move(first.timestamp_);
    t.message_code = std::move(first.message_code_);
    t.severity_code = std::move(first.severity_code_);
    t.component_code = std::move(first.component_code_);
    t.category_code = std::move(first.category_code_);
    t.location_code = std::move(first.location_code_);
    has_job = std::move(first.has_job_);
    t.job_id = std::move(first.job_id_);
    t.text = std::move(first.text_);
    std::vector<std::uint32_t> message_remap;
    std::vector<std::uint32_t> location_remap;
    for (std::size_t ci = 1; ci < chunks.size(); ++ci) {
      RasTableBuilder& c = chunks[ci];
      t.message_dict.merge_from(c.message_dict_, message_remap);
      t.location_dict.merge_from(c.location_dict_, location_remap);
      for (std::size_t code = 0; code < location_remap.size(); ++code)
        if (location_remap[code] == t.locations.size())
          t.locations.push_back(c.locations_[code]);
      t.message_code.reserve(t.message_code.size() + c.message_code_.size());
      for (const std::uint32_t code : c.message_code_)
        t.message_code.push_back(message_remap[code]);
      t.location_code.reserve(t.location_code.size() + c.location_code_.size());
      for (const std::uint32_t code : c.location_code_)
        t.location_code.push_back(location_remap[code]);
      append_vec(t.record_id, c.record_id_);
      append_vec(timestamp, c.timestamp_);
      append_vec(t.severity_code, c.severity_code_);
      append_vec(t.component_code, c.component_code_);
      append_vec(t.category_code, c.category_code_);
      append_vec(has_job, c.has_job_);
      append_vec(t.job_id, c.job_id_);
      t.text.append(c.text_);
    }
  }
  const std::size_t n = t.record_id.size();
  const auto key_less = [&](std::size_t a, std::size_t b) {
    if (timestamp[a] != timestamp[b]) return timestamp[a] < timestamp[b];
    return t.record_id[a] < t.record_id[b];
  };
  bool sorted = true;
  for (std::size_t i = 1; i < n && sorted; ++i) sorted = !key_less(i, i - 1);
  if (!sorted) {
    const auto perm = sort_permutation(n, key_less);
    apply_permutation(t.record_id, perm);
    apply_permutation(timestamp, perm);
    apply_permutation(t.message_code, perm);
    apply_permutation(t.severity_code, perm);
    apply_permutation(t.component_code, perm);
    apply_permutation(t.category_code, perm);
    apply_permutation(t.location_code, perm);
    apply_permutation(has_job, perm);
    apply_permutation(t.job_id, perm);
    StringArena text;
    for (const std::size_t i : perm) text.push_back(t.text.view(i));
    t.text = std::move(text);
  }
  t.timestamp = TimestampColumn(std::move(timestamp));
  t.timestamp.seal();
  t.has_job.resize(n);
  for (auto& bits : t.severity_bits) bits.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (has_job[i]) t.has_job.set(i);
    t.severity_bits[t.severity_code[i]].set(i);
  }
  flush_build_metrics(n, t.bytes(),
                      t.message_dict.size() + t.location_dict.size());
  return t;
}

// ---- TaskTableBuilder --------------------------------------------------

void TaskTableBuilder::reserve(std::size_t n) {
  task_id_.reserve(n);
  job_id_.reserve(n);
  sequence_.reserve(n);
  start_time_.reserve(n);
  runtime_seconds_.reserve(n);
  nodes_used_.reserve(n);
  ranks_per_node_.reserve(n);
  exit_code_.reserve(n);
  exit_signal_.reserve(n);
}

void TaskTableBuilder::add(const tasklog::TaskRecord& t) {
  runtime_seconds_.push_back(
      checked_u32_span(t.end_time - t.start_time, "task runtime"));
  task_id_.push_back(t.task_id);
  job_id_.push_back(t.job_id);
  sequence_.push_back(t.sequence);
  start_time_.push_back(t.start_time);
  nodes_used_.push_back(t.nodes_used);
  ranks_per_node_.push_back(t.ranks_per_node);
  exit_code_.push_back(t.exit_code);
  exit_signal_.push_back(t.exit_signal);
}

void TaskTableBuilder::add_csv_row(const util::FieldVec& row) {
  tasklog::parse_csv_row(row, scratch_);
  add(scratch_);
}

TaskTable TaskTableBuilder::merge(std::vector<TaskTableBuilder> chunks) {
  FAILMINE_TRACE_SPAN("columnar.build");
  TaskTable t;
  std::vector<util::UnixSeconds> start_time;
  if (!chunks.empty()) {
    TaskTableBuilder& first = chunks.front();
    t.task_id = std::move(first.task_id_);
    t.job_id = std::move(first.job_id_);
    t.sequence = std::move(first.sequence_);
    start_time = std::move(first.start_time_);
    t.runtime_seconds = std::move(first.runtime_seconds_);
    t.nodes_used = std::move(first.nodes_used_);
    t.ranks_per_node = std::move(first.ranks_per_node_);
    t.exit_code = std::move(first.exit_code_);
    t.exit_signal = std::move(first.exit_signal_);
    for (std::size_t ci = 1; ci < chunks.size(); ++ci) {
      TaskTableBuilder& c = chunks[ci];
      append_vec(t.task_id, c.task_id_);
      append_vec(t.job_id, c.job_id_);
      append_vec(t.sequence, c.sequence_);
      append_vec(start_time, c.start_time_);
      append_vec(t.runtime_seconds, c.runtime_seconds_);
      append_vec(t.nodes_used, c.nodes_used_);
      append_vec(t.ranks_per_node, c.ranks_per_node_);
      append_vec(t.exit_code, c.exit_code_);
      append_vec(t.exit_signal, c.exit_signal_);
    }
  }
  const std::size_t n = t.task_id.size();
  const auto key_less = [&](std::size_t a, std::size_t b) {
    if (t.job_id[a] != t.job_id[b]) return t.job_id[a] < t.job_id[b];
    return t.sequence[a] < t.sequence[b];
  };
  bool sorted = true;
  for (std::size_t i = 1; i < n && sorted; ++i) sorted = !key_less(i, i - 1);
  if (!sorted) {
    const auto perm = sort_permutation(n, key_less);
    apply_permutation(t.task_id, perm);
    apply_permutation(t.job_id, perm);
    apply_permutation(t.sequence, perm);
    apply_permutation(start_time, perm);
    apply_permutation(t.runtime_seconds, perm);
    apply_permutation(t.nodes_used, perm);
    apply_permutation(t.ranks_per_node, perm);
    apply_permutation(t.exit_code, perm);
    apply_permutation(t.exit_signal, perm);
  }
  t.start_time = TimestampColumn(std::move(start_time));
  t.start_time.seal();
  t.failed.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    if (t.exit_code[i] != 0 || t.exit_signal[i] != 0) t.failed.set(i);
  flush_build_metrics(n, t.bytes(), 0);
  return t;
}

// ---- IoTableBuilder ----------------------------------------------------

void IoTableBuilder::reserve(std::size_t n) {
  job_id_.reserve(n);
  bytes_read_.reserve(n);
  bytes_written_.reserve(n);
  read_time_seconds_.reserve(n);
  write_time_seconds_.reserve(n);
  files_accessed_.reserve(n);
  ranks_doing_io_.reserve(n);
}

void IoTableBuilder::add(const iolog::IoRecord& r) {
  job_id_.push_back(r.job_id);
  bytes_read_.push_back(r.bytes_read);
  bytes_written_.push_back(r.bytes_written);
  read_time_seconds_.push_back(r.read_time_seconds);
  write_time_seconds_.push_back(r.write_time_seconds);
  files_accessed_.push_back(r.files_accessed);
  ranks_doing_io_.push_back(r.ranks_doing_io);
}

void IoTableBuilder::add_csv_row(const util::FieldVec& row) {
  iolog::parse_csv_row(row, scratch_);
  add(scratch_);
}

IoTable IoTableBuilder::merge(std::vector<IoTableBuilder> chunks) {
  FAILMINE_TRACE_SPAN("columnar.build");
  IoTable t;
  if (!chunks.empty()) {
    IoTableBuilder& first = chunks.front();
    t.job_id = std::move(first.job_id_);
    t.bytes_read = std::move(first.bytes_read_);
    t.bytes_written = std::move(first.bytes_written_);
    t.read_time_seconds = std::move(first.read_time_seconds_);
    t.write_time_seconds = std::move(first.write_time_seconds_);
    t.files_accessed = std::move(first.files_accessed_);
    t.ranks_doing_io = std::move(first.ranks_doing_io_);
    for (std::size_t ci = 1; ci < chunks.size(); ++ci) {
      IoTableBuilder& c = chunks[ci];
      append_vec(t.job_id, c.job_id_);
      append_vec(t.bytes_read, c.bytes_read_);
      append_vec(t.bytes_written, c.bytes_written_);
      append_vec(t.read_time_seconds, c.read_time_seconds_);
      append_vec(t.write_time_seconds, c.write_time_seconds_);
      append_vec(t.files_accessed, c.files_accessed_);
      append_vec(t.ranks_doing_io, c.ranks_doing_io_);
    }
  }
  const std::size_t n = t.job_id.size();
  bool sorted = true;
  for (std::size_t i = 1; i < n && sorted; ++i)
    sorted = t.job_id[i - 1] <= t.job_id[i];
  if (!sorted) {
    const auto perm = sort_permutation(
        n, [&](std::size_t a, std::size_t b) { return t.job_id[a] < t.job_id[b]; });
    apply_permutation(t.job_id, perm);
    apply_permutation(t.bytes_read, perm);
    apply_permutation(t.bytes_written, perm);
    apply_permutation(t.read_time_seconds, perm);
    apply_permutation(t.write_time_seconds, perm);
    apply_permutation(t.files_accessed, perm);
    apply_permutation(t.ranks_doing_io, perm);
  }
  flush_build_metrics(n, t.bytes(), 0);
  return t;
}

}  // namespace failmine::columnar
