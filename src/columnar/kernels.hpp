// failmine/columnar/kernels.hpp
//
// Vectorized scan primitives over dense key columns.
//
// These are the inner loops of the columnar analyses: plain chunked
// passes over contiguous u8/u32 code columns with no branches in the
// hot path, written so the compiler can keep them in registers and
// autovectorize. The u8 histogram splits into four sub-histograms to
// break the serial dependency on a single counter slot when neighboring
// rows share a key (the common case for skewed exit classes and
// severities), then folds them at the end.
//
// Precondition everywhere: every key is < num_keys. The callers pass
// enum codes and dictionary codes, both dense by construction.
//
// sum_by_key accumulates each key's f64 partial sum in forward row
// order — exactly the order a row-at-a-time scan adds that key's
// records — which is what keeps the columnar analyses bit-identical to
// the AoS ones.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "columnar/bitmap.hpp"

namespace failmine::columnar::kernels {

/// Histogram of a u8 code column (4-way unrolled sub-histograms).
std::vector<std::uint64_t> count_by_key(const std::vector<std::uint8_t>& keys,
                                        std::size_t num_keys);

/// Histogram of a u32 code column (dictionary codes, user/project ids).
std::vector<std::uint64_t> count_by_key(const std::vector<std::uint32_t>& keys,
                                        std::size_t num_keys);

/// Joint histogram of two u8 code columns: result[a*num_b + b].
std::vector<std::uint64_t> count_by_key_pair(
    const std::vector<std::uint8_t>& a, std::size_t num_a,
    const std::vector<std::uint8_t>& b, std::size_t num_b);

/// Histogram restricted to rows whose mask bit is set.
std::vector<std::uint64_t> count_by_key_masked(
    const std::vector<std::uint8_t>& keys, std::size_t num_keys,
    const Bitmap& mask);

/// Largest value of a u32 column (0 when empty).
std::uint32_t max_u32(const std::vector<std::uint32_t>& v);

/// Keyed f64 reduction: sums[keys[i]] += value(i) in forward row order.
/// `value` is a callable double(std::size_t row).
template <class Key, class ValueFn>
std::vector<double> sum_by_key(const std::vector<Key>& keys,
                               std::size_t num_keys, ValueFn&& value) {
  std::vector<double> sums(num_keys, 0.0);
  for (std::size_t i = 0; i < keys.size(); ++i)
    sums[keys[i]] += value(i);
  return sums;
}

}  // namespace failmine::columnar::kernels
