#include "columnar/dictionary.hpp"

#include "util/error.hpp"

namespace failmine::columnar {

std::uint32_t Dictionary::encode(std::string_view name) {
  // Transparent lookup would avoid this temporary, but unordered_map's
  // heterogeneous find needs a custom hash; the string is tiny and the
  // hit path below dominates on real columns.
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const auto code = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), code);
  return code;
}

std::optional<std::uint32_t> Dictionary::find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::name(std::uint32_t code) const {
  if (code >= names_.size())
    throw failmine::DomainError("unknown dictionary code " +
                                std::to_string(code));
  return names_[code];
}

void Dictionary::merge_from(const Dictionary& other,
                            std::vector<std::uint32_t>& remap) {
  remap.clear();
  remap.reserve(other.names_.size());
  for (const std::string& name : other.names_)
    remap.push_back(encode(name));
}

std::size_t Dictionary::bytes() const {
  std::size_t total = 0;
  for (const std::string& name : names_)
    total += sizeof(std::string) + name.capacity();
  // The index holds a copy of every entry plus node/bucket overhead.
  for (const auto& [name, code] : index_)
    total += sizeof(std::string) + name.capacity() + sizeof(code) +
             2 * sizeof(void*);
  return total;
}

}  // namespace failmine::columnar
