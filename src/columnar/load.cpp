#include "columnar/load.hpp"

#include <utility>

#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "obs/trace.hpp"
#include "raslog/event.hpp"
#include "tasklog/task.hpp"

namespace failmine::columnar {

JobTable load_job_table(const std::string& path,
                        const ingest::LoadOptions& options) {
  FAILMINE_TRACE_SPAN("columnar.load_jobs");
  auto chunks = ingest::load_csv_fold<JobTableBuilder>(
      path, joblog::job_csv_header(), "joblog", "job log",
      "parse.joblog.records", [] { return JobTableBuilder(); },
      [](JobTableBuilder& b, const util::FieldVec& row) { b.add_csv_row(row); },
      options);
  return JobTableBuilder::merge(std::move(chunks));
}

RasTable load_ras_table(const std::string& path,
                        const topology::MachineConfig& config,
                        const ingest::LoadOptions& options) {
  FAILMINE_TRACE_SPAN("columnar.load_ras");
  auto chunks = ingest::load_csv_fold<RasTableBuilder>(
      path, raslog::ras_csv_header(), "raslog", "RAS log",
      "parse.raslog.records", [&config] { return RasTableBuilder(config); },
      [](RasTableBuilder& b, const util::FieldVec& row) { b.add_csv_row(row); },
      options);
  return RasTableBuilder::merge(std::move(chunks));
}

TaskTable load_task_table(const std::string& path,
                          const ingest::LoadOptions& options) {
  FAILMINE_TRACE_SPAN("columnar.load_tasks");
  auto chunks = ingest::load_csv_fold<TaskTableBuilder>(
      path, tasklog::task_csv_header(), "tasklog", "task log",
      "parse.tasklog.records", [] { return TaskTableBuilder(); },
      [](TaskTableBuilder& b, const util::FieldVec& row) { b.add_csv_row(row); },
      options);
  return TaskTableBuilder::merge(std::move(chunks));
}

IoTable load_io_table(const std::string& path,
                      const ingest::LoadOptions& options) {
  FAILMINE_TRACE_SPAN("columnar.load_io");
  auto chunks = ingest::load_csv_fold<IoTableBuilder>(
      path, iolog::io_csv_header(), "iolog", "I/O log", "parse.iolog.records",
      [] { return IoTableBuilder(); },
      [](IoTableBuilder& b, const util::FieldVec& row) { b.add_csv_row(row); },
      options);
  return IoTableBuilder::merge(std::move(chunks));
}

ColumnarDataset load_dataset(const std::string& directory,
                             const topology::MachineConfig& config,
                             const ingest::LoadOptions& options) {
  FAILMINE_TRACE_SPAN("columnar.load_dataset");
  ColumnarDataset ds;
  ds.ras = load_ras_table(directory + "/ras.csv", config, options);
  ds.jobs = load_job_table(directory + "/jobs.csv", options);
  ds.tasks = load_task_table(directory + "/tasks.csv", options);
  ds.io = load_io_table(directory + "/io.csv", options);
  return ds;
}

}  // namespace failmine::columnar
