#include "columnar/engine.hpp"

#include "analysis/temporal.hpp"
#include "columnar/analyses.hpp"

namespace failmine::columnar {

QueryEngine::QueryEngine(const joblog::JobLog& jobs,
                         const tasklog::TaskLog& tasks,
                         const raslog::RasLog& ras, const iolog::IoLog& io,
                         const topology::MachineConfig& machine)
    : jobs_(&jobs), tasks_(&tasks), ras_(&ras), io_(&io), machine_(machine) {}

QueryEngine::QueryEngine(const ColumnarDataset& dataset,
                         const topology::MachineConfig& machine)
    : dataset_(&dataset), machine_(machine) {}

core::DatasetSummary QueryEngine::dataset_summary() const {
  if (dataset_) return columnar::dataset_summary(*dataset_, machine_);
  return core::JointAnalyzer(*jobs_, *tasks_, *ras_, *io_, machine_)
      .dataset_summary();
}

core::ExitBreakdown QueryEngine::exit_breakdown() const {
  if (dataset_) return columnar::exit_breakdown(dataset_->jobs, machine_);
  return core::JointAnalyzer(*jobs_, *tasks_, *ras_, *io_, machine_)
      .exit_breakdown();
}

std::vector<analysis::GroupStats> QueryEngine::per_user_stats() const {
  if (dataset_) return columnar::per_user_stats(dataset_->jobs, machine_);
  return analysis::per_user_stats(*jobs_, machine_);
}

std::vector<analysis::GroupStats> QueryEngine::per_project_stats() const {
  if (dataset_) return columnar::per_project_stats(dataset_->jobs, machine_);
  return analysis::per_project_stats(*jobs_, machine_);
}

analysis::RasBreakdown QueryEngine::ras_breakdown() const {
  if (dataset_) return columnar::ras_breakdown(dataset_->ras);
  return analysis::ras_breakdown(*ras_);
}

analysis::HourlyProfile QueryEngine::submissions_by_hour() const {
  if (dataset_) return columnar::submissions_by_hour(dataset_->jobs);
  return analysis::submissions_by_hour(*jobs_);
}

analysis::WeekdayProfile QueryEngine::submissions_by_weekday() const {
  if (dataset_) return columnar::submissions_by_weekday(dataset_->jobs);
  return analysis::submissions_by_weekday(*jobs_);
}

analysis::HourlyProfile QueryEngine::failures_by_hour() const {
  if (dataset_) return columnar::failures_by_hour(dataset_->jobs);
  return analysis::failures_by_hour(*jobs_);
}

analysis::HourlyProfile QueryEngine::events_by_hour() const {
  if (dataset_) return columnar::events_by_hour(dataset_->ras);
  return analysis::events_by_hour(*ras_);
}

std::vector<std::uint64_t> QueryEngine::monthly_submissions(
    util::UnixSeconds origin) const {
  if (dataset_) return columnar::monthly_submissions(dataset_->jobs, origin);
  return analysis::monthly_submissions(*jobs_, origin);
}

std::vector<std::uint64_t> QueryEngine::monthly_failures(
    util::UnixSeconds origin) const {
  if (dataset_) return columnar::monthly_failures(dataset_->jobs, origin);
  return analysis::monthly_failures(*jobs_, origin);
}

std::vector<std::uint64_t> QueryEngine::monthly_fatal_events(
    util::UnixSeconds origin) const {
  if (dataset_) return columnar::monthly_fatal_events(dataset_->ras, origin);
  return analysis::monthly_fatal_events(*ras_, origin);
}

}  // namespace failmine::columnar
