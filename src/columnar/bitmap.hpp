// failmine/columnar/bitmap.hpp
//
// Dense bitmap index over row numbers: one bit per row, 64 rows per
// word. The columnar tables precompute bitmaps for the hot predicates
// (job failed, RAS severity) at seal time, so filters become word-wise
// AND/popcount loops instead of per-row branches.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace failmine::columnar {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t size) { resize(size); }

  /// Resizes to `size` bits, all clear.
  void resize(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  std::size_t size() const { return size_; }

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits (autovectorizable popcount loop).
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t w : words_) total += std::popcount(w);
    return total;
  }

  /// Calls fn(row) for every set bit, ascending.
  template <class Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Bitwise AND of two same-sized bitmaps; throws DomainError otherwise.
  static Bitmap logical_and(const Bitmap& a, const Bitmap& b) {
    if (a.size_ != b.size_)
      throw failmine::DomainError("bitmap size mismatch in logical_and");
    Bitmap out(a.size_);
    for (std::size_t i = 0; i < out.words_.size(); ++i)
      out.words_[i] = a.words_[i] & b.words_[i];
    return out;
  }

  const std::vector<std::uint64_t>& words() const { return words_; }

  std::size_t bytes() const { return words_.capacity() * sizeof(std::uint64_t); }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace failmine::columnar
