// failmine/columnar/builder.hpp
//
// Per-chunk column builders and the deterministic chunk-order merge.
//
// A builder accumulates one ingest chunk's records as raw SoA vectors
// with chunk-local dictionaries; workers fill builders concurrently
// without sharing state. merge() then combines the chunk builders in
// file order: dictionary codes of every later chunk are remapped into
// the first chunk's dictionary (so the final code assignment equals a
// serial first-seen pass — see columnar/dictionary.hpp), the columns are
// concatenated, rows are put into the table's canonical order if the
// concatenation is not already sorted, timestamps are delta-sealed and
// the predicate bitmaps are built. The result is a sealed table from
// columnar/table.hpp.
//
// add_csv_row() parses a raw ingest FieldVec straight into the columns
// through one reused scratch record (no per-row allocation once the
// string capacities warm up), which is what lets the columnar load path
// build tables with no extra pass over the file bytes.
//
// merge() flushes the columnar.rows / columnar.bytes /
// columnar.dict_entries counters and runs under a "columnar.build" span.
//
// Range contract: jobs and tasks store queue wait and runtime as u32
// seconds (the CSV validators already guarantee they are non-negative);
// a span over ~136 years throws DomainError instead of wrapping.

#pragma once

#include <cstdint>
#include <vector>

#include "columnar/table.hpp"
#include "topology/machine.hpp"
#include "util/csv.hpp"

namespace failmine::columnar {

class JobTableBuilder {
 public:
  void reserve(std::size_t n);
  void add(const joblog::JobRecord& job);
  /// Parses one CSV row (joblog column order) and adds it. Throws
  /// failmine::Error on invalid rows, like the row-path parser.
  void add_csv_row(const util::FieldVec& row);
  std::size_t rows() const { return job_id_.size(); }

  /// Combines chunk builders (file order) into one sealed table.
  static JobTable merge(std::vector<JobTableBuilder> chunks);

 private:
  std::vector<std::uint64_t> job_id_;
  std::vector<std::uint32_t> user_id_;
  std::vector<std::uint32_t> project_id_;
  std::vector<std::uint32_t> queue_code_;
  Dictionary queue_dict_;
  std::vector<util::UnixSeconds> start_time_;
  std::vector<std::uint32_t> wait_seconds_;
  std::vector<std::uint32_t> runtime_seconds_;
  std::vector<std::uint32_t> nodes_used_;
  std::vector<std::uint32_t> task_count_;
  std::vector<std::int64_t> requested_walltime_;
  std::vector<std::int32_t> exit_code_;
  std::vector<std::int32_t> exit_signal_;
  std::vector<std::uint8_t> exit_class_code_;
  std::vector<std::int32_t> partition_first_midplane_;
  joblog::JobRecord scratch_;
};

class RasTableBuilder {
 public:
  /// RAS rows validate locations against the machine config; the config
  /// must outlive the builder.
  explicit RasTableBuilder(const topology::MachineConfig& config)
      : config_(&config) {}

  void reserve(std::size_t n);
  void add(const raslog::RasEvent& event);
  /// Parses one CSV row (raslog column order) and adds it. Repeated
  /// location strings hit the dictionary and skip re-parsing; the field
  /// parse order (and so the first thrown error) matches the row path.
  void add_csv_row(const util::FieldVec& row);
  std::size_t rows() const { return record_id_.size(); }

  static RasTable merge(std::vector<RasTableBuilder> chunks);

 private:
  std::uint32_t encode_location(const topology::Location& loc);

  const topology::MachineConfig* config_;
  std::vector<std::uint64_t> record_id_;
  std::vector<util::UnixSeconds> timestamp_;
  std::vector<std::uint32_t> message_code_;
  Dictionary message_dict_;
  std::vector<std::uint8_t> severity_code_;
  std::vector<std::uint8_t> component_code_;
  std::vector<std::uint8_t> category_code_;
  std::vector<std::uint32_t> location_code_;
  Dictionary location_dict_;
  std::vector<topology::Location> locations_;
  std::vector<std::uint8_t> has_job_;
  std::vector<std::uint64_t> job_id_;
  StringArena text_;
};

class TaskTableBuilder {
 public:
  void reserve(std::size_t n);
  void add(const tasklog::TaskRecord& task);
  void add_csv_row(const util::FieldVec& row);
  std::size_t rows() const { return task_id_.size(); }

  static TaskTable merge(std::vector<TaskTableBuilder> chunks);

 private:
  std::vector<std::uint64_t> task_id_;
  std::vector<std::uint64_t> job_id_;
  std::vector<std::uint32_t> sequence_;
  std::vector<util::UnixSeconds> start_time_;
  std::vector<std::uint32_t> runtime_seconds_;
  std::vector<std::uint32_t> nodes_used_;
  std::vector<std::uint32_t> ranks_per_node_;
  std::vector<std::int32_t> exit_code_;
  std::vector<std::int32_t> exit_signal_;
  tasklog::TaskRecord scratch_;
};

class IoTableBuilder {
 public:
  void reserve(std::size_t n);
  void add(const iolog::IoRecord& record);
  void add_csv_row(const util::FieldVec& row);
  std::size_t rows() const { return job_id_.size(); }

  static IoTable merge(std::vector<IoTableBuilder> chunks);

 private:
  std::vector<std::uint64_t> job_id_;
  std::vector<std::uint64_t> bytes_read_;
  std::vector<std::uint64_t> bytes_written_;
  std::vector<double> read_time_seconds_;
  std::vector<double> write_time_seconds_;
  std::vector<std::uint32_t> files_accessed_;
  std::vector<std::uint32_t> ranks_doing_io_;
  iolog::IoRecord scratch_;
};

}  // namespace failmine::columnar
