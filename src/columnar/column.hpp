// failmine/columnar/column.hpp
//
// Timestamp column with delta compression.
//
// Log timestamps are 64-bit Unix seconds, but both sorted logs (jobs by
// start time, RAS by timestamp) advance by small steps, so a sealed
// column stores an i64 base plus one u32 forward delta per row — half
// the bytes and exactly reconstructible. seal() falls back to the plain
// i64 representation when the column is not non-decreasing or a step
// exceeds 32 bits, so the encoding is lossless for any input.
//
// While building, values accumulate in the plain representation;
// sequential reads go through for_each(), which decodes deltas with one
// running add per row (an autovectorizable prefix walk the group-by
// kernels fuse into their scan loops).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/time.hpp"

namespace failmine::columnar {

class TimestampColumn {
 public:
  TimestampColumn() = default;

  /// Takes ownership of already-collected values (unsealed).
  explicit TimestampColumn(std::vector<util::UnixSeconds> values)
      : plain_(std::move(values)) {}

  void reserve(std::size_t n) { plain_.reserve(n); }

  void push_back(util::UnixSeconds t) {
    if (sealed_)
      throw failmine::DomainError("push_back on a sealed timestamp column");
    plain_.push_back(t);
  }

  /// Appends another unsealed column (chunk merge).
  void append(const TimestampColumn& other) {
    if (sealed_ || other.sealed_)
      throw failmine::DomainError("append on a sealed timestamp column");
    plain_.insert(plain_.end(), other.plain_.begin(), other.plain_.end());
  }

  std::size_t size() const {
    // A sealed column may still be plain (fallback) — pick by encoding,
    // not by sealed state.
    return delta_encoded() ? deltas_.size() : plain_.size();
  }
  bool empty() const { return size() == 0; }

  /// Switches to the delta representation when the values are
  /// non-decreasing with 32-bit steps; otherwise keeps them plain.
  void seal() {
    if (sealed_) return;
    sealed_ = true;
    bool delta_ok = true;
    for (std::size_t i = 1; i < plain_.size(); ++i) {
      const std::int64_t step = plain_[i] - plain_[i - 1];
      if (step < 0 || step > static_cast<std::int64_t>(UINT32_MAX)) {
        delta_ok = false;
        break;
      }
    }
    if (!delta_ok || plain_.empty()) {
      plain_.shrink_to_fit();
      return;
    }
    base_ = plain_.front();
    deltas_.resize(plain_.size());
    deltas_[0] = 0;
    for (std::size_t i = 1; i < plain_.size(); ++i)
      deltas_[i] = static_cast<std::uint32_t>(plain_[i] - plain_[i - 1]);
    plain_.clear();
    plain_.shrink_to_fit();
  }

  bool sealed() const { return sealed_; }
  bool delta_encoded() const { return sealed_ && !deltas_.empty(); }

  /// Value at row i. O(1) plain, O(i) delta — use for_each for scans.
  util::UnixSeconds at(std::size_t i) const {
    if (!delta_encoded()) return plain_.at(i);
    if (i >= deltas_.size())
      throw failmine::DomainError("timestamp column index out of range");
    util::UnixSeconds t = base_;
    for (std::size_t k = 1; k <= i; ++k) t += deltas_[k];
    return t;
  }

  /// Sequential decode: fn(row, value) for every row in order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    if (!delta_encoded()) {
      for (std::size_t i = 0; i < plain_.size(); ++i) fn(i, plain_[i]);
      return;
    }
    util::UnixSeconds t = base_;
    for (std::size_t i = 0; i < deltas_.size(); ++i) {
      t += deltas_[i];
      fn(i, t);
    }
  }

  /// Full materialization (tests, row reconstruction at scale).
  std::vector<util::UnixSeconds> decode_all() const {
    std::vector<util::UnixSeconds> out(size());
    for_each([&](std::size_t i, util::UnixSeconds t) { out[i] = t; });
    return out;
  }

  util::UnixSeconds front() const { return at(0); }
  util::UnixSeconds back() const {
    if (empty()) throw failmine::DomainError("back() on empty column");
    if (!delta_encoded()) return plain_.back();
    util::UnixSeconds t = base_;
    for (std::size_t i = 1; i < deltas_.size(); ++i) t += deltas_[i];
    return t;
  }

  std::size_t bytes() const {
    return plain_.capacity() * sizeof(util::UnixSeconds) +
           deltas_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<util::UnixSeconds> plain_;
  util::UnixSeconds base_ = 0;
  std::vector<std::uint32_t> deltas_;
  bool sealed_ = false;
};

}  // namespace failmine::columnar
