// failmine/columnar/table.hpp
//
// Sealed structure-of-arrays tables for the four log types.
//
// Each table stores one dense column per record field: dictionary codes
// for strings (columnar/dictionary.hpp), delta-compressed timestamps
// (columnar/column.hpp), u8 codes for small enums, and precomputed
// bitmaps (columnar/bitmap.hpp) for the hot predicates. Rows follow the
// same order invariants as the AoS containers — jobs by (start_time,
// job_id), RAS by (timestamp, record_id), tasks by (job_id, sequence),
// I/O by job_id — so a forward column scan visits records in exactly the
// order the row-path analyses do, which is what makes the columnar
// analyses (columnar/analyses.hpp) bit-exact.
//
// Timestamps are normalized at build time: a job stores start_time plus
// u32 wait/runtime (submit = start - wait, end = start + runtime; the
// CSV parsers already enforce submit <= start <= end), so the E02-class
// scans read 4 bytes of runtime instead of two 8-byte absolute times.
//
// Tables are produced by the builders in columnar/builder.hpp and are
// immutable afterwards. row(i) materializes one AoS record for
// interop/spot checks; bulk work should stay on the columns.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "columnar/bitmap.hpp"
#include "columnar/column.hpp"
#include "columnar/dictionary.hpp"
#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "tasklog/task.hpp"
#include "topology/location.hpp"

namespace failmine::columnar {

/// Concatenated variable-length strings: offsets[i]..offsets[i+1] into
/// one byte arena. Used for the RAS free-text column, which is too
/// high-cardinality to dictionary-encode.
class StringArena {
 public:
  void push_back(std::string_view s) {
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    offsets_.push_back(bytes_.size());
  }

  void append(const StringArena& other) {
    const std::size_t base = bytes_.size();
    bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
    offsets_.reserve(offsets_.size() + other.size());
    for (std::size_t i = 0; i < other.size(); ++i)
      offsets_.push_back(base + other.offsets_[i + 1]);
  }

  std::string_view view(std::size_t i) const {
    return std::string_view(bytes_.data() + offsets_[i],
                            offsets_[i + 1] - offsets_[i]);
  }

  std::size_t size() const { return offsets_.size() - 1; }

  std::size_t bytes() const {
    return bytes_.capacity() + offsets_.capacity() * sizeof(std::size_t);
  }

 private:
  std::vector<char> bytes_;
  std::vector<std::size_t> offsets_{0};
};

/// SoA job log. Order: (start_time, job_id) ascending.
struct JobTable {
  std::vector<std::uint64_t> job_id;
  std::vector<std::uint32_t> user_id;
  std::vector<std::uint32_t> project_id;
  std::vector<std::uint32_t> queue_code;
  Dictionary queue_dict;
  TimestampColumn start_time;
  std::vector<std::uint32_t> wait_seconds;     ///< start - submit
  std::vector<std::uint32_t> runtime_seconds;  ///< end - start
  std::vector<std::uint32_t> nodes_used;
  std::vector<std::uint32_t> task_count;
  std::vector<std::int64_t> requested_walltime;
  std::vector<std::int32_t> exit_code;
  std::vector<std::int32_t> exit_signal;
  std::vector<std::uint8_t> exit_class_code;  ///< joblog::ExitClass
  std::vector<std::int32_t> partition_first_midplane;
  Bitmap failed;  ///< is_failure(exit_class)

  std::size_t rows() const { return job_id.size(); }
  joblog::JobRecord row(std::size_t i) const;
  /// All rows in table order (one linear timestamp decode, unlike
  /// repeated row(i) calls on a delta-encoded column).
  std::vector<joblog::JobRecord> to_records() const;
  std::size_t bytes() const;
};

/// SoA RAS log. Order: (timestamp, record_id) ascending.
struct RasTable {
  std::vector<std::uint64_t> record_id;
  TimestampColumn timestamp;
  std::vector<std::uint32_t> message_code;
  Dictionary message_dict;
  std::vector<std::uint8_t> severity_code;   ///< raslog::Severity
  std::vector<std::uint8_t> component_code;  ///< raslog::Component
  std::vector<std::uint8_t> category_code;   ///< raslog::Category
  std::vector<std::uint32_t> location_code;
  Dictionary location_dict;
  /// Parsed location per dictionary code (aligned with location_dict) —
  /// repeated locations validate and parse once, not once per row.
  std::vector<topology::Location> locations;
  Bitmap has_job;
  std::vector<std::uint64_t> job_id;  ///< 0 where has_job is clear
  StringArena text;
  std::array<Bitmap, 3> severity_bits;  ///< INFO / WARN / FATAL rows

  std::size_t rows() const { return record_id.size(); }
  raslog::RasEvent row(std::size_t i) const;
  std::vector<raslog::RasEvent> to_records() const;
  std::size_t bytes() const;
};

/// SoA task log. Order: (job_id, sequence) ascending.
struct TaskTable {
  std::vector<std::uint64_t> task_id;
  std::vector<std::uint64_t> job_id;
  std::vector<std::uint32_t> sequence;
  TimestampColumn start_time;  ///< plain (rows are job-ordered, not time-ordered)
  std::vector<std::uint32_t> runtime_seconds;  ///< end - start
  std::vector<std::uint32_t> nodes_used;
  std::vector<std::uint32_t> ranks_per_node;
  std::vector<std::int32_t> exit_code;
  std::vector<std::int32_t> exit_signal;
  Bitmap failed;  ///< exit_code != 0 || exit_signal != 0

  std::size_t rows() const { return task_id.size(); }
  tasklog::TaskRecord row(std::size_t i) const;
  std::vector<tasklog::TaskRecord> to_records() const;
  std::size_t bytes() const;
};

/// SoA I/O log. Order: job_id ascending.
struct IoTable {
  std::vector<std::uint64_t> job_id;
  std::vector<std::uint64_t> bytes_read;
  std::vector<std::uint64_t> bytes_written;
  std::vector<double> read_time_seconds;
  std::vector<double> write_time_seconds;
  std::vector<std::uint32_t> files_accessed;
  std::vector<std::uint32_t> ranks_doing_io;

  std::size_t rows() const { return job_id.size(); }
  iolog::IoRecord row(std::size_t i) const;
  std::vector<iolog::IoRecord> to_records() const;
  std::size_t bytes() const;
};

/// The four columnar tables of one dataset.
struct ColumnarDataset {
  JobTable jobs;
  TaskTable tasks;
  RasTable ras;
  IoTable io;

  std::size_t rows() const {
    return jobs.rows() + tasks.rows() + ras.rows() + io.rows();
  }
  std::size_t bytes() const {
    return jobs.bytes() + tasks.bytes() + ras.bytes() + io.bytes();
  }
};

}  // namespace failmine::columnar
