// failmine/columnar/analyses.hpp
//
// Columnar backends for the hot JointAnalyzer paths: E02 exit
// breakdown, E03 user/project concentration, E06 RAS breakdown and E11
// temporal rates. Each returns the same result type as its row-path
// counterpart (core::ExitBreakdown, analysis::GroupStats, ...) and is
// bit-exact against it: counts are exact, and every f64 accumulator
// receives the same addends in the same order as the row scan (forward
// row order per key — see columnar/kernels.hpp), so even the
// floating-point sums match to the last bit.
//
// The scans touch only the columns an analysis needs: E02 reads 9
// bytes per job (exit class u8, runtime u32, nodes u32) instead of a
// ~100-byte JobRecord; E06 reads 2 code bytes per RAS event.

#pragma once

#include <cstdint>
#include <vector>

#include "analysis/ras_breakdown.hpp"
#include "analysis/temporal.hpp"
#include "analysis/user_stats.hpp"
#include "columnar/table.hpp"
#include "core/joint_analyzer.hpp"
#include "topology/machine.hpp"
#include "util/time.hpp"

namespace failmine::columnar {

/// E01: totals across the four tables. Throws DomainError when the job
/// table is empty, like the row-path JointAnalyzer.
core::DatasetSummary dataset_summary(const ColumnarDataset& ds,
                                     const topology::MachineConfig& machine);

/// E02: jobs and core-hours per exit class, with cause attribution.
core::ExitBreakdown exit_breakdown(const JobTable& jobs,
                                   const topology::MachineConfig& machine);

/// E03: per-user / per-project aggregates, ascending group id.
std::vector<analysis::GroupStats> per_user_stats(
    const JobTable& jobs, const topology::MachineConfig& machine);
std::vector<analysis::GroupStats> per_project_stats(
    const JobTable& jobs, const topology::MachineConfig& machine);

/// E06: events by severity, component and category.
analysis::RasBreakdown ras_breakdown(const RasTable& ras);

/// E11: temporal profiles and monthly series.
analysis::HourlyProfile submissions_by_hour(const JobTable& jobs);
analysis::WeekdayProfile submissions_by_weekday(const JobTable& jobs);
analysis::HourlyProfile failures_by_hour(const JobTable& jobs);
analysis::HourlyProfile events_by_hour(const RasTable& ras);
std::vector<std::uint64_t> monthly_submissions(const JobTable& jobs,
                                               util::UnixSeconds origin);
std::vector<std::uint64_t> monthly_failures(const JobTable& jobs,
                                            util::UnixSeconds origin);
std::vector<std::uint64_t> monthly_fatal_events(const RasTable& ras,
                                                util::UnixSeconds origin);

}  // namespace failmine::columnar
