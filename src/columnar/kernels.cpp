#include "columnar/kernels.hpp"

namespace failmine::columnar::kernels {

std::vector<std::uint64_t> count_by_key(const std::vector<std::uint8_t>& keys,
                                        std::size_t num_keys) {
  std::vector<std::uint64_t> sub(num_keys * 4, 0);
  std::uint64_t* h0 = sub.data();
  std::uint64_t* h1 = h0 + num_keys;
  std::uint64_t* h2 = h1 + num_keys;
  std::uint64_t* h3 = h2 + num_keys;
  const std::size_t n = keys.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++h0[keys[i]];
    ++h1[keys[i + 1]];
    ++h2[keys[i + 2]];
    ++h3[keys[i + 3]];
  }
  for (; i < n; ++i) ++h0[keys[i]];
  std::vector<std::uint64_t> out(num_keys, 0);
  for (std::size_t k = 0; k < num_keys; ++k)
    out[k] = h0[k] + h1[k] + h2[k] + h3[k];
  return out;
}

std::vector<std::uint64_t> count_by_key(const std::vector<std::uint32_t>& keys,
                                        std::size_t num_keys) {
  std::vector<std::uint64_t> out(num_keys, 0);
  for (const std::uint32_t k : keys) ++out[k];
  return out;
}

std::vector<std::uint64_t> count_by_key_pair(
    const std::vector<std::uint8_t>& a, std::size_t num_a,
    const std::vector<std::uint8_t>& b, std::size_t num_b) {
  std::vector<std::uint64_t> out(num_a * num_b, 0);
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i)
    ++out[static_cast<std::size_t>(a[i]) * num_b + b[i]];
  return out;
}

std::vector<std::uint64_t> count_by_key_masked(
    const std::vector<std::uint8_t>& keys, std::size_t num_keys,
    const Bitmap& mask) {
  std::vector<std::uint64_t> out(num_keys, 0);
  mask.for_each_set([&](std::size_t i) { ++out[keys[i]]; });
  return out;
}

std::uint32_t max_u32(const std::vector<std::uint32_t>& v) {
  std::uint32_t mx = 0;
  for (const std::uint32_t x : v)
    if (x > mx) mx = x;
  return mx;
}

}  // namespace failmine::columnar::kernels
