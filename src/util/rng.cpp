#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace failmine::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw DomainError("uniform_index requires n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw DomainError("uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

double Rng::exponential(double lambda) {
  if (lambda <= 0) throw DomainError("exponential rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::weibull(double shape, double scale) {
  if (shape <= 0 || scale <= 0) throw DomainError("weibull parameters must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0 || alpha <= 0) throw DomainError("pareto parameters must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::gamma(double shape, double scale) {
  if (shape <= 0 || scale <= 0) throw DomainError("gamma parameters must be positive");
  if (shape < 1.0) {
    // Johnk/boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return scale * d * v;
  }
}

double Rng::erlang(int k, double rate) {
  if (k <= 0) throw DomainError("erlang shape must be a positive integer");
  return gamma(static_cast<double>(k), 1.0 / rate);
}

double Rng::inverse_gaussian(double mu, double lambda) {
  if (mu <= 0 || lambda <= 0)
    throw DomainError("inverse gaussian parameters must be positive");
  // Michael, Schucany & Haas (1976).
  const double v = normal();
  const double y = v * v;
  const double x = mu + (mu * mu * y) / (2.0 * lambda) -
                   (mu / (2.0 * lambda)) *
                       std::sqrt(4.0 * mu * lambda * y + mu * mu * y * y);
  const double u = uniform();
  if (u <= mu / (mu + x)) return x;
  return mu * mu / x;
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda < 0) throw DomainError("poisson mean must be non-negative");
  if (lambda == 0) return 0;
  if (lambda < 30.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // workload-arrival counts the simulator draws (lambda up to ~1e5).
  const double x = normal(lambda, std::sqrt(lambda));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) throw DomainError("zipf requires n > 0");
  if (s <= 0) throw DomainError("zipf exponent must be positive");
  // Rejection-inversion (Hormann & Derflinger) is overkill here; the
  // populations we draw from are small (<= ~1000 users), so inversion over
  // the exact CDF with a cached normalizer is simpler and exact.
  // To stay O(1) amortized for repeated draws callers should prefer
  // AliasTable; this method recomputes the normalizer per call only for
  // small n.
  double h = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double u = uniform() * h;
  double acc = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= acc) return i;
  }
  return n;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw DomainError("categorical requires weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw DomainError("categorical weight must be non-negative");
    total += w;
  }
  if (total <= 0) throw DomainError("categorical weights must sum to > 0");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0) return i;
  }
  return weights.size() - 1;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  if (weights.empty()) throw DomainError("alias table requires weights");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw DomainError("alias weight must be non-negative");
    total += w;
  }
  if (total <= 0) throw DomainError("alias weights must sum to > 0");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(i);

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t column = static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace failmine::util
