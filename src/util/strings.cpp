#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace failmine::util {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::int64_t parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw ParseError("not an integer: '" + std::string(s) + "'");
  return value;
}

std::uint64_t parse_uint(std::string_view s) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw ParseError("not an unsigned integer: '" + std::string(s) + "'");
  return value;
}

double parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) throw ParseError("empty numeric field");
  // std::from_chars<double> is not universally available; strtod on a
  // bounded copy is portable and still validates the whole field.
  std::string copy(s);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size())
    throw ParseError("not a number: '" + copy + "'");
  return value;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace failmine::util
