// failmine/util/time.hpp
//
// Minimal civil-time layer used by every log library.
//
// All log records carry timestamps as `UnixSeconds` (seconds since the Unix
// epoch, UTC). The helpers here convert to and from the human-readable
// format used in the simulated logs ("YYYY-MM-DD hh:mm:ss") and expose the
// calendar decompositions the temporal analyses need (hour of day, day of
// week, month index). The civil<->absolute conversion uses the classic
// days-from-civil algorithm so the library has no dependency on the system
// timezone database.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace failmine::util {

/// Seconds since 1970-01-01T00:00:00 UTC. Signed so intervals are natural.
using UnixSeconds = std::int64_t;

constexpr std::int64_t kSecondsPerMinute = 60;
constexpr std::int64_t kSecondsPerHour = 3600;
constexpr std::int64_t kSecondsPerDay = 86400;

/// A broken-down UTC calendar time.
struct CivilTime {
  int year = 1970;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// Days since the epoch for a civil date (Hinnant's days_from_civil).
std::int64_t days_from_civil(int year, int month, int day);

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t days, int& year, int& month, int& day);

/// Converts a broken-down UTC time to seconds since the epoch.
UnixSeconds to_unix(const CivilTime& ct);

/// Converts seconds since the epoch to broken-down UTC time.
CivilTime to_civil(UnixSeconds t);

/// Parses "YYYY-MM-DD hh:mm:ss" (also accepts 'T' as the separator).
/// Throws ParseError on malformed input.
UnixSeconds parse_timestamp(std::string_view text);

/// Formats as "YYYY-MM-DD hh:mm:ss".
std::string format_timestamp(UnixSeconds t);

/// Hour of day in [0,24).
int hour_of_day(UnixSeconds t);

/// Day of week, 0 = Monday .. 6 = Sunday.
int day_of_week(UnixSeconds t);

/// Zero-based month index counted from `origin` (used for monthly series).
int month_index(UnixSeconds origin, UnixSeconds t);

/// True if `year` is a Gregorian leap year.
bool is_leap_year(int year);

/// Number of days in `month` of `year`.
int days_in_month(int year, int month);

}  // namespace failmine::util
