#include "util/csv.hpp"

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace failmine::util {

namespace {

obs::Counter& lines_total_counter() {
  static obs::Counter& c = obs::metrics().counter("parse.lines_total");
  return c;
}

obs::Counter& lines_rejected_counter() {
  static obs::Counter& c = obs::metrics().counter("parse.lines_rejected");
  return c;
}

}  // namespace

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) throw ParseError("unterminated quote in CSV line");
  fields.push_back(std::move(current));
  return fields;
}

std::string escape_csv_field(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string join_csv_line(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += escape_csv_field(fields[i]);
  }
  return line;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  if (!out_) throw IoError("cannot open for writing: " + path);
  if (header.empty()) throw DomainError("CSV header must not be empty");
  out_ << join_csv_line(header) << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (fields.size() != arity_)
    throw DomainError("CSV row arity " + std::to_string(fields.size()) +
                      " != header arity " + std::to_string(arity_));
  out_ << join_csv_line(fields) << '\n';
  ++rows_;
}

void CsvWriter::close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

CsvReader::CsvReader(const std::string& path) : in_(path), path_(path) {
  if (!in_) throw IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in_, line)) throw ParseError("empty CSV file: " + path);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  header_ = split_csv_line(line);
}

bool CsvReader::next(std::vector<std::string>& fields) {
  std::string line;
  if (!std::getline(in_, line)) return false;
  lines_total_counter().add();
  if (!line.empty() && line.back() == '\r') line.pop_back();
  try {
    fields = split_csv_line(line);
  } catch (const ParseError&) {
    lines_rejected_counter().add();
    obs::logger().warn("parse.line_rejected",
                       {{"file", path_},
                        {"row", rows_ + 2},
                        {"reason", "unterminated quote"}});
    throw;
  }
  if (fields.size() != header_.size()) {
    lines_rejected_counter().add();
    obs::logger().warn("parse.line_rejected",
                       {{"file", path_},
                        {"row", rows_ + 2},
                        {"reason", "arity mismatch"},
                        {"fields", fields.size()},
                        {"expected", header_.size()}});
    throw ParseError("row " + std::to_string(rows_ + 2) + " of " + path_ +
                     " has " + std::to_string(fields.size()) +
                     " fields, expected " + std::to_string(header_.size()));
  }
  ++rows_;
  return true;
}

}  // namespace failmine::util
