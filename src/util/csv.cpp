#include "util/csv.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace failmine::util {

namespace {

obs::Counter& lines_total_counter() {
  static obs::Counter& c = obs::metrics().counter("parse.lines_total");
  return c;
}

obs::Counter& lines_rejected_counter() {
  static obs::Counter& c = obs::metrics().counter("parse.lines_rejected");
  return c;
}

// The one RFC 4180 quote state machine, shared by split_csv_line and
// split_csv_fields. Emits each field as a sequence of byte segments, all
// pointing into `line`: unquoted runs, quoted runs, and 1-byte segments
// for escaped quotes ("" collapses to one '"', which is itself a byte of
// the input). Sink contract:
//   void begin_field();
//   void segment(const char* data, std::size_t len);
//   void end_field();
// Throws ParseError when the line ends inside an open quote.
template <class Sink>
void scan_csv_line(std::string_view line, Sink& sink) {
  const char* const base = line.data();
  bool in_quotes = false;
  std::size_t run_start = 0;
  std::size_t i = 0;
  sink.begin_field();
  const auto flush_run = [&](std::size_t end) {
    if (end > run_start) sink.segment(base + run_start, end - run_start);
  };
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        flush_run(i);
        if (i + 1 < line.size() && line[i + 1] == '"') {
          sink.segment(base + i, 1);  // escaped quote: keep one '"'
          ++i;
        } else {
          in_quotes = false;
        }
        run_start = i + 1;
      }
      ++i;
    } else if (c == '"') {
      flush_run(i);
      in_quotes = true;
      run_start = i + 1;
      ++i;
    } else if (c == ',') {
      flush_run(i);
      sink.end_field();
      sink.begin_field();
      run_start = i + 1;
      ++i;
    } else {
      ++i;
    }
  }
  if (in_quotes) throw ParseError("unterminated quote in CSV line");
  flush_run(i);
  sink.end_field();
}

/// Sink materializing std::string fields into a reused vector. Appends
/// whole segments (never per-character growth) and reuses each string's
/// capacity across rows.
class StringSink {
 public:
  explicit StringSink(std::vector<std::string>& out) : out_(out) {}

  void begin_field() {
    if (count_ == out_.size()) out_.emplace_back();
    current_ = &out_[count_];
    current_->clear();
  }
  void segment(const char* data, std::size_t len) {
    current_->append(data, len);
  }
  void end_field() { ++count_; }

  void finish() { out_.resize(count_); }

 private:
  std::vector<std::string>& out_;
  std::string* current_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace

void split_csv_line(std::string_view line, std::vector<std::string>& fields) {
  StringSink sink(fields);
  scan_csv_line(line, sink);
  sink.finish();
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  // One comma count up front sizes the vector for the common case (quoted
  // commas over-reserve slightly; harmless).
  fields.reserve(
      static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')) + 1);
  split_csv_line(line, fields);
  return fields;
}

void split_csv_fields(std::string_view line, FieldVec& out) {
  out.clear();
  out.base_ = line.data();

  // Sink recording zero-copy refs. A field made of one contiguous segment
  // stays a view into `line`; multi-segment fields (escaped quotes, or
  // text both inside and outside quotes) are concatenated into the
  // FieldVec's scratch buffer. Refs store offsets, not pointers, so
  // scratch growth cannot dangle them.
  struct ViewSink {
    FieldVec& out;
    const char* base;
    std::size_t nsegs = 0;
    const char* first_data = nullptr;
    std::size_t first_len = 0;
    std::size_t scratch_start = 0;

    void begin_field() { nsegs = 0; }
    void segment(const char* data, std::size_t len) {
      if (nsegs == 0) {
        first_data = data;
        first_len = len;
      } else {
        if (nsegs == 1) {
          scratch_start = out.scratch_.size();
          out.scratch_.append(first_data, first_len);
        }
        out.scratch_.append(data, len);
      }
      ++nsegs;
    }
    void end_field() {
      FieldVec::Ref r;
      if (nsegs <= 1) {
        r.begin = nsegs == 0 ? 0
                             : static_cast<std::size_t>(first_data - base);
        r.len = nsegs == 0 ? 0 : first_len;
        r.in_scratch = false;
      } else {
        r.begin = scratch_start;
        r.len = out.scratch_.size() - scratch_start;
        r.in_scratch = true;
      }
      out.push(r);
    }
  } sink{out, line.data()};

  scan_csv_line(line, sink);
}

std::string escape_csv_field(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string join_csv_line(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += escape_csv_field(fields[i]);
  }
  return line;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  if (!out_) throw IoError("cannot open for writing: " + path);
  if (header.empty()) throw DomainError("CSV header must not be empty");
  out_ << join_csv_line(header) << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (fields.size() != arity_)
    throw DomainError("CSV row arity " + std::to_string(fields.size()) +
                      " != header arity " + std::to_string(arity_));
  out_ << join_csv_line(fields) << '\n';
  ++rows_;
}

void CsvWriter::close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

CsvReader::CsvReader(const std::string& path) : in_(path), path_(path) {
  if (!in_) throw IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in_, line)) throw ParseError("empty CSV file: " + path);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  header_ = split_csv_line(line);
}

bool CsvReader::next(std::vector<std::string>& fields) {
  if (!std::getline(in_, line_)) return false;
  lines_total_counter().add();
  if (!line_.empty() && line_.back() == '\r') line_.pop_back();
  try {
    split_csv_line(line_, fields);
  } catch (const ParseError&) {
    lines_rejected_counter().add();
    obs::logger().warn("parse.line_rejected",
                       {{"file", path_},
                        {"row", rows_ + 2},
                        {"reason", "unterminated quote"}});
    throw;
  }
  if (fields.size() != header_.size()) {
    lines_rejected_counter().add();
    obs::logger().warn("parse.line_rejected",
                       {{"file", path_},
                        {"row", rows_ + 2},
                        {"reason", "arity mismatch"},
                        {"fields", fields.size()},
                        {"expected", header_.size()}});
    throw ParseError("row " + std::to_string(rows_ + 2) + " of " + path_ +
                     " has " + std::to_string(fields.size()) +
                     " fields, expected " + std::to_string(header_.size()));
  }
  ++rows_;
  return true;
}

}  // namespace failmine::util
