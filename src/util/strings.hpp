// failmine/util/strings.hpp
//
// Small string helpers used across the log parsers.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace failmine::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single-character delimiter (no quoting; empty fields kept).
std::vector<std::string> split(std::string_view s, char delim);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

/// Parses a signed 64-bit integer; throws ParseError on junk.
std::int64_t parse_int(std::string_view s);

/// Parses an unsigned 64-bit integer; throws ParseError on junk or sign.
std::uint64_t parse_uint(std::string_view s);

/// Parses a double; throws ParseError on junk.
double parse_double(std::string_view s);

/// Formats a double with fixed precision (no locale surprises).
std::string format_double(double v, int precision = 6);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace failmine::util
