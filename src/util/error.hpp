// failmine/util/error.hpp
//
// Exception hierarchy for the failmine toolkit.
//
// Every error thrown by the library derives from `failmine::Error`, so
// callers can catch a single type at an API boundary. More specific types
// distinguish parse failures (bad log lines, malformed location codes)
// from domain violations (invalid arguments, empty samples).

#pragma once

#include <stdexcept>
#include <string>

namespace failmine {

/// Root of the failmine exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A textual record (log line, CSV field, timestamp, location code)
/// could not be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// An argument violated a documented precondition (e.g. negative window,
/// empty sample handed to a fitter).
class DomainError : public Error {
 public:
  explicit DomainError(const std::string& what) : Error("domain error: " + what) {}
};

/// An I/O operation (opening or reading a log file) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// The observability subsystem failed (a log sink could not open or write
/// its file, a metrics/trace export failed). Kept distinct from IoError so
/// callers can decide to continue an analysis even when telemetry is
/// broken.
class ObsError : public Error {
 public:
  explicit ObsError(const std::string& what) : Error("obs error: " + what) {}
};

}  // namespace failmine
