#include "util/time.hpp"

#include <array>
#include <cstdio>

#include "util/error.hpp"

namespace failmine::util {

std::int64_t days_from_civil(int y, int m, int d) {
  // Howard Hinnant's algorithm, valid for the proleptic Gregorian calendar.
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);            // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                        // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                             // [1, 12]
  year = static_cast<int>(y + (m <= 2));
  month = static_cast<int>(m);
  day = static_cast<int>(d);
}

UnixSeconds to_unix(const CivilTime& ct) {
  if (ct.month < 1 || ct.month > 12) throw DomainError("month out of range");
  if (ct.day < 1 || ct.day > days_in_month(ct.year, ct.month))
    throw DomainError("day out of range");
  if (ct.hour < 0 || ct.hour > 23 || ct.minute < 0 || ct.minute > 59 ||
      ct.second < 0 || ct.second > 59)
    throw DomainError("time of day out of range");
  return days_from_civil(ct.year, ct.month, ct.day) * kSecondsPerDay +
         ct.hour * kSecondsPerHour + ct.minute * kSecondsPerMinute + ct.second;
}

CivilTime to_civil(UnixSeconds t) {
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilTime ct;
  civil_from_days(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(rem / kSecondsPerHour);
  ct.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  ct.second = static_cast<int>(rem % kSecondsPerMinute);
  return ct;
}

namespace {

int parse_fixed_int(std::string_view s, std::size_t pos, std::size_t len) {
  int value = 0;
  if (pos + len > s.size()) throw ParseError("timestamp too short: '" + std::string(s) + "'");
  for (std::size_t i = pos; i < pos + len; ++i) {
    const char c = s[i];
    if (c < '0' || c > '9')
      throw ParseError("non-digit in timestamp: '" + std::string(s) + "'");
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace

UnixSeconds parse_timestamp(std::string_view text) {
  // Expected layout: YYYY-MM-DD hh:mm:ss (19 chars); 'T' separator accepted.
  if (text.size() != 19) throw ParseError("timestamp must be 19 chars: '" + std::string(text) + "'");
  if (text[4] != '-' || text[7] != '-' || (text[10] != ' ' && text[10] != 'T') ||
      text[13] != ':' || text[16] != ':')
    throw ParseError("bad timestamp separators: '" + std::string(text) + "'");
  CivilTime ct;
  ct.year = parse_fixed_int(text, 0, 4);
  ct.month = parse_fixed_int(text, 5, 2);
  ct.day = parse_fixed_int(text, 8, 2);
  ct.hour = parse_fixed_int(text, 11, 2);
  ct.minute = parse_fixed_int(text, 14, 2);
  ct.second = parse_fixed_int(text, 17, 2);
  try {
    return to_unix(ct);
  } catch (const DomainError& e) {
    throw ParseError(std::string(e.what()) + " in '" + std::string(text) + "'");
  }
}

std::string format_timestamp(UnixSeconds t) {
  const CivilTime ct = to_civil(t);
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%04d-%02d-%02d %02d:%02d:%02d", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return std::string(buf.data());
}

int hour_of_day(UnixSeconds t) {
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return static_cast<int>(rem / kSecondsPerHour);
}

int day_of_week(UnixSeconds t) {
  std::int64_t days = t / kSecondsPerDay;
  if (t % kSecondsPerDay < 0) --days;
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  std::int64_t dow = (days + 3) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

int month_index(UnixSeconds origin, UnixSeconds t) {
  const CivilTime a = to_civil(origin);
  const CivilTime b = to_civil(t);
  return (b.year - a.year) * 12 + (b.month - a.month);
}

bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 13> kDays = {0, 31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) throw DomainError("month out of range");
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[static_cast<std::size_t>(month)];
}

}  // namespace failmine::util
