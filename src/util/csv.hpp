// failmine/util/csv.hpp
//
// Small CSV layer shared by the four log libraries.
//
// The simulated logs are plain comma-separated files with a header row.
// Fields containing commas, quotes or newlines are quoted per RFC 4180.
// The reader is line-oriented (log records never span lines once quoted
// newlines are escaped by the writer, which the log libraries guarantee by
// sanitizing free-text fields).
//
// Two splitting APIs share one quote state machine:
//  * split_csv_line materializes std::string fields (the streaming
//    CsvReader path);
//  * split_csv_fields yields std::string_view fields into a caller-owned
//    FieldVec, copying bytes only for fields that need quote unescaping —
//    the allocation-free hot path of the parallel ingest engine
//    (ingest/loader.hpp).

#pragma once

#include <cstddef>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace failmine::util {

/// Reusable list of zero-copy CSV fields. Each field is a string_view
/// pointing either into the line handed to split_csv_fields (fields that
/// need no unescaping — the overwhelming majority) or into an internal
/// scratch buffer (fields containing escaped quotes, whose bytes differ
/// from the raw input). Reusing one FieldVec across rows makes the
/// steady-state parse allocation-free: the ref vector and the scratch
/// buffer keep their capacity across clear().
///
/// Views are invalidated by the next split_csv_fields call and by the
/// death of the line buffer they were parsed from.
class FieldVec {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::string_view operator[](std::size_t i) const {
    const Ref& r = refs_[i];
    if (r.len == 0) return {};
    return {(r.in_scratch ? scratch_.data() : base_) + r.begin, r.len};
  }

  void clear() {
    size_ = 0;
    scratch_.clear();
    base_ = nullptr;
  }

 private:
  friend void split_csv_fields(std::string_view line, FieldVec& out);

  struct Ref {
    std::size_t begin = 0;
    std::size_t len = 0;
    bool in_scratch = false;
  };

  void push(Ref r) {
    if (size_ == refs_.size())
      refs_.push_back(r);
    else
      refs_[size_] = r;
    ++size_;
  }

  std::vector<Ref> refs_;
  std::size_t size_ = 0;
  std::string scratch_;
  const char* base_ = nullptr;
};

/// Splits one CSV line into fields, honouring RFC 4180 quoting.
/// Throws ParseError on unterminated quotes.
std::vector<std::string> split_csv_line(std::string_view line);

/// As above, but reuses `fields` (and each element's capacity) instead of
/// allocating a fresh vector per row — the CsvReader::next fast path.
void split_csv_line(std::string_view line, std::vector<std::string>& fields);

/// Zero-copy split: fields become string_views into `line` (or into
/// `out`'s scratch buffer for fields with escaped quotes). `line` may
/// contain quoted newlines — any byte inside quotes is field content.
/// Throws ParseError on unterminated quotes. Shares the quote state
/// machine with split_csv_line, so the two agree on every input.
void split_csv_fields(std::string_view line, FieldVec& out);

/// Quotes a field if (and only if) it needs quoting.
std::string escape_csv_field(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string join_csv_line(const std::vector<std::string>& fields);

/// Streaming CSV writer with a mandatory header row.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws IoError.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one record; must have the same arity as the header.
  void write_row(const std::vector<std::string>& fields);

  /// Flushes and closes; called automatically by the destructor.
  void close();

  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Streaming CSV reader that validates the header on open.
///
/// Every data row read increments the `parse.lines_total` counter in the
/// global obs::metrics() registry; rows that fail quoting or arity
/// validation increment `parse.lines_rejected` and emit a WARN log record
/// before the ParseError is thrown, so no malformed input vanishes
/// silently.
class CsvReader {
 public:
  /// Opens `path` and reads the header row. Throws IoError / ParseError.
  explicit CsvReader(const std::string& path);

  const std::vector<std::string>& header() const { return header_; }

  /// Reads the next record into `fields`, reusing its capacity. Returns
  /// false at end of file. Throws ParseError if a row's arity differs
  /// from the header's.
  bool next(std::vector<std::string>& fields);

  std::size_t rows_read() const { return rows_; }

 private:
  std::ifstream in_;
  std::vector<std::string> header_;
  std::size_t rows_ = 0;
  std::string path_;
  std::string line_;  ///< getline target, reused across rows
};

}  // namespace failmine::util
