// failmine/util/csv.hpp
//
// Small CSV layer shared by the four log libraries.
//
// The simulated logs are plain comma-separated files with a header row.
// Fields containing commas, quotes or newlines are quoted per RFC 4180.
// The reader is line-oriented (log records never span lines once quoted
// newlines are escaped by the writer, which the log libraries guarantee by
// sanitizing free-text fields).

#pragma once

#include <cstddef>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace failmine::util {

/// Splits one CSV line into fields, honouring RFC 4180 quoting.
/// Throws ParseError on unterminated quotes.
std::vector<std::string> split_csv_line(std::string_view line);

/// Quotes a field if (and only if) it needs quoting.
std::string escape_csv_field(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string join_csv_line(const std::vector<std::string>& fields);

/// Streaming CSV writer with a mandatory header row.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws IoError.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one record; must have the same arity as the header.
  void write_row(const std::vector<std::string>& fields);

  /// Flushes and closes; called automatically by the destructor.
  void close();

  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Streaming CSV reader that validates the header on open.
///
/// Every data row read increments the `parse.lines_total` counter in the
/// global obs::metrics() registry; rows that fail quoting or arity
/// validation increment `parse.lines_rejected` and emit a WARN log record
/// before the ParseError is thrown, so no malformed input vanishes
/// silently.
class CsvReader {
 public:
  /// Opens `path` and reads the header row. Throws IoError / ParseError.
  explicit CsvReader(const std::string& path);

  const std::vector<std::string>& header() const { return header_; }

  /// Reads the next record into `fields`. Returns false at end of file.
  /// Throws ParseError if a row's arity differs from the header's.
  bool next(std::vector<std::string>& fields);

  std::size_t rows_read() const { return rows_; }

 private:
  std::ifstream in_;
  std::vector<std::string> header_;
  std::size_t rows_ = 0;
  std::string path_;
};

}  // namespace failmine::util
