// failmine/util/rng.hpp
//
// Deterministic random-number generation for the simulator.
//
// The whole toolkit must be reproducible from a single 64-bit seed, so we
// ship our own small engine (SplitMix64 seeding a xoshiro256**-style core)
// instead of relying on the implementation-defined distributions in
// <random>. All variate generators are implemented from first principles
// (inversion, Box-Muller, Marsaglia-Tsang, Michael-Schucany-Haas) so the
// same seed produces the same trace on every platform.

#pragma once

#include <cstdint>
#include <vector>

namespace failmine::util {

/// Deterministic 64-bit PRNG (xoshiro256** core seeded by SplitMix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with rate lambda (> 0).
  double exponential(double lambda);

  /// Standard normal variate (Box-Muller with caching).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal variate: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Weibull variate with shape k and scale lambda (both > 0).
  double weibull(double shape, double scale);

  /// Classic Pareto variate with scale xm and shape alpha (both > 0).
  double pareto(double xm, double alpha);

  /// Gamma variate with shape k (> 0) and scale theta (> 0).
  /// Marsaglia-Tsang squeeze method (with Johnk boost for k < 1).
  double gamma(double shape, double scale);

  /// Erlang variate: sum of `k` exponentials with the given rate.
  double erlang(int k, double rate);

  /// Inverse Gaussian (Wald) variate with mean mu and shape lambda.
  double inverse_gaussian(double mu, double lambda);

  /// Poisson variate with mean lambda (Knuth for small, PTRS-ish normal
  /// approximation fallback for large lambda).
  std::uint64_t poisson(double lambda);

  /// Zipf-distributed integer in [1, n] with exponent s (> 0).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Index drawn from the (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// O(1) sampling from a fixed discrete distribution (Vose alias method).
/// Build once from weights, then draw indices with `sample`.
class AliasTable {
 public:
  /// Weights must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
};

}  // namespace failmine::util
