// failmine/sim/config.hpp
//
// Configuration of the Mira digital twin.
//
// The simulator substitutes for the proprietary ALCF logs (see DESIGN.md).
// Its knobs are calibrated so a scale-1 run reproduces the paper's
// aggregate statistics: 2001 observation days, ~99.2k failed jobs with a
// 99.4 % user-caused share, per-exit-class execution-length families
// (Weibull / Pareto / inverse Gaussian / Erlang-exponential), RAS severity
// mix dominated by INFO, fatal-event spatial locality, and a filtered MTTI
// near 3.5 days. `scale` shrinks the job count and event rates
// proportionally (while keeping the 2001-day span and all per-record
// distributions) so tests and CI-sized runs stay fast.

#pragma once

#include <cstdint>

#include "topology/machine.hpp"
#include "util/time.hpp"

namespace failmine::sim {

struct SimConfig {
  topology::MachineConfig machine = topology::MachineConfig::mira();

  std::uint64_t seed = 20130409;  ///< default: Mira production start date

  /// Observation window. Default matches the paper: 2001 days starting
  /// 2013-04-09 (Mira's production debut).
  util::UnixSeconds observation_start = 1365465600;  // 2013-04-09 00:00:00 UTC
  int observation_days = 2001;

  /// Global scale on job counts and RAS rates; 1.0 = paper-sized trace.
  double scale = 1.0;

  // --- Population -----------------------------------------------------
  int user_count = 900;          ///< active users over the 2001 days
  int project_count = 350;       ///< INCITE/ALCC-style projects
  double user_zipf_exponent = 1.05;  ///< heavy-tailed user activity

  // --- Workload -------------------------------------------------------
  double jobs_per_day = 277.0;   ///< mean accepted arrivals ~250/day (~500k total)
  double diurnal_amplitude = 0.35;   ///< day/night arrival modulation
  double weekend_factor = 0.65;      ///< weekend arrival dampening
  double mean_tasks_per_job = 2.2;   ///< geometric task count >= 1
  double io_coverage = 0.55;         ///< fraction of jobs with Darshan data

  // --- Failure mix ----------------------------------------------------
  /// Base probability that a job fails for user-side reasons. The
  /// effective probability is modulated upward by the user's failure
  /// multiplier, the task count and the job scale (the correlations of
  /// takeaway T-B); 0.151 base yields ~0.198 effective, i.e. ~99.2k user
  /// failures at scale 1.
  double user_failure_probability = 0.151;
  /// Extra failure odds per additional task beyond the first.
  double task_failure_boost = 0.15;
  /// Extra failure odds per doubling of the node count above 512.
  double scale_failure_boost = 0.08;
  /// Hazard of a system-caused interruption per node-second of exposure;
  /// calibrated to ~510 system failures (paper-scale verified) over 2001 days at scale 1
  /// (~0.6 % of failures; with idle episodes, filtered MTTI ~= 3.5 days).
  double system_hazard_per_node_second = 6.8e-11;
  /// Mix of system failure classes (hardware : software : io).
  double system_hardware_weight = 0.55;
  double system_software_weight = 0.25;
  double system_io_weight = 0.20;
  /// Relative mix of user failure classes
  /// (app error : config error : user kill : walltime).
  double user_app_error_weight = 0.62;
  double user_config_error_weight = 0.14;
  double user_kill_weight = 0.13;
  double walltime_weight = 0.11;

  // --- Fault model ------------------------------------------------------
  /// Non-fatal RAS events per day at scale 1 (INFO/WARN chatter).
  double ras_background_per_day = 2400.0;
  /// Fatal episodes on idle hardware per day, on top of the job-exposure
  /// episodes produced by system_hazard_per_node_second. The sum of both
  /// is what determines the filtered MTTI (~3.5 days at scale 1).
  double idle_fatal_episodes_per_day = 0.005;
  /// Mean raw fatal events per episode (the similarity filter collapses
  /// these back to ~1 interruption).
  double fatal_events_per_episode = 14.0;
  /// Episode duration scale in seconds (events cluster within minutes).
  double episode_duration_seconds = 300.0;
  /// Fraction of node boards designated "weak" (locality hot spots).
  double weak_board_fraction = 0.02;
  /// Share of background events emitted by weak boards.
  double weak_board_event_share = 0.45;

  /// Returns this config with job counts/rates multiplied by `s`.
  SimConfig scaled(double s) const;

  util::UnixSeconds observation_end() const {
    return observation_start +
           static_cast<util::UnixSeconds>(observation_days) * util::kSecondsPerDay;
  }

  /// Paper-sized trace (slow: ~500k jobs, ~5M RAS events).
  static SimConfig paper_scale();

  /// 1/10 trace used by the benchmark harness by default.
  static SimConfig bench_scale();

  /// Small trace for unit/integration tests (~2 seconds to generate).
  static SimConfig test_scale();

  /// Validates invariants; throws DomainError on nonsense.
  void validate() const;
};

}  // namespace failmine::sim
