// failmine/sim/workload.hpp
//
// Job arrival and lifecycle model.
//
// Arrivals follow a non-homogeneous Poisson process with diurnal and
// weekly seasonality. Allocation sizes are midplane multiples (512 ..
// 49,152 nodes) drawn from a heavy-headed mix biased by the user's scale
// preference. Exit classes for user-side outcomes are drawn per job; the
// execution length of a failed job is drawn from the class's generative
// family — the calibration behind takeaway T-C:
//
//   USER_APP_ERROR   -> Weibull(shape < 1)   (early-failure hazard)
//   USER_CONFIG_ERROR-> Erlang(2)            (fails within minutes)
//   USER_KILL        -> Pareto               (heavy-tailed patience)
//   WALLTIME_LIMIT   -> deterministic at the requested walltime
//   SUCCESS          -> log-normal capped at walltime
//
// System-caused failures are NOT decided here; the fault model converts
// exposed jobs afterwards (see fault_model.hpp).

#pragma once

#include <vector>

#include "joblog/job.hpp"
#include "sim/config.hpp"
#include "sim/population.hpp"
#include "util/rng.hpp"

namespace failmine::sim {

/// Generates the complete set of job records for the observation window.
class WorkloadModel {
 public:
  WorkloadModel(const SimConfig& config, const Population& population);

  /// Draws every job in the observation window, in arrival order, with
  /// user-side exit classes and runtimes assigned. Job ids are unique and
  /// ascending; partitions are placed (aligned) uniformly at random.
  std::vector<joblog::JobRecord> generate(util::Rng& rng) const;

  /// Arrival-rate multiplier at time t (diurnal x weekly seasonality),
  /// mean ~1 over a week. Exposed for the temporal-pattern tests.
  double seasonality(util::UnixSeconds t) const;

  /// Allocation sizes the model draws from (midplane multiples).
  const std::vector<std::uint32_t>& size_menu() const { return sizes_; }

 private:
  joblog::JobRecord make_job(std::uint64_t job_id, util::UnixSeconds submit,
                             util::Rng& rng) const;

  // By value: a reference would dangle when callers construct the model
  // from a temporary config.
  SimConfig config_;
  const Population& population_;
  std::vector<std::uint32_t> sizes_;
  std::vector<double> size_weights_;
};

}  // namespace failmine::sim
