// failmine/sim/simulator.hpp
//
// Top-level Mira digital twin: orchestrates the population, workload,
// fault and I/O models into one mutually consistent four-log trace.
//
// Consistency guarantees:
//  * every SYSTEM_* job failure coincides with a FATAL episode on a board
//    inside the job's partition at the job's end time;
//  * every task of a job lies within the job's [start, end] window and the
//    last task carries the job's exit status;
//  * every I/O record refers to an existing job;
//  * logs are time-sorted with unique ascending record ids.

#pragma once

#include <string>

#include "ingest/loader.hpp"
#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "sim/config.hpp"
#include "sim/fault_model.hpp"
#include "tasklog/task.hpp"

namespace failmine::sim {

/// The four generated logs plus the fault-model ground truth.
struct SimResult {
  joblog::JobLog job_log;
  tasklog::TaskLog task_log;
  raslog::RasLog ras_log;
  iolog::IoLog io_log;
  /// Ground-truth interruption episodes (for validating the filter).
  std::vector<FatalEpisode> episodes;
};

/// Runs the full simulation for `config`. Deterministic in config.seed.
SimResult simulate(const SimConfig& config);

/// Writes all four logs as CSV files into `directory`
/// (ras.csv, jobs.csv, tasks.csv, io.csv). Throws IoError.
void write_dataset(const SimResult& result, const std::string& directory);

/// Loads a dataset previously written by write_dataset. `episodes` comes
/// back empty (ground truth is not part of the log schema, as in reality).
/// All four logs load through the parallel mmap ingest engine by default;
/// `options` tunes it (threads == 1 selects the serial readers).
SimResult load_dataset(const std::string& directory,
                       const topology::MachineConfig& machine,
                       const ingest::LoadOptions& options = {});

}  // namespace failmine::sim
