#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/io_model.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"
#include "util/error.hpp"

namespace failmine::sim {

namespace {

/// Splits each job's window into task_count sequential task records; the
/// last task carries the job's exit status, earlier tasks succeed.
std::vector<tasklog::TaskRecord> generate_tasks(
    const std::vector<joblog::JobRecord>& jobs, util::Rng& rng) {
  std::vector<tasklog::TaskRecord> tasks;
  std::uint64_t next_task_id = 1;
  for (const auto& job : jobs) {
    const std::uint32_t n = std::max<std::uint32_t>(1, job.task_count);
    const double window = static_cast<double>(job.runtime_seconds());

    // Random positive durations summing to the window: draw n exponential
    // stick lengths and normalize.
    std::vector<double> sticks(n);
    double total = 0.0;
    for (auto& s : sticks) {
      s = rng.exponential(1.0);
      total += s;
    }
    util::UnixSeconds cursor = job.start_time;
    for (std::uint32_t i = 0; i < n; ++i) {
      tasklog::TaskRecord t;
      t.task_id = next_task_id++;
      t.job_id = job.job_id;
      t.sequence = i;
      t.start_time = cursor;
      const double span = window * sticks[i] / total;
      t.end_time = i + 1 == n
                       ? job.end_time
                       : cursor + static_cast<util::UnixSeconds>(
                                      std::max(1.0, span));
      if (t.end_time > job.end_time) t.end_time = job.end_time;
      if (t.end_time < t.start_time) t.end_time = t.start_time;
      cursor = t.end_time;
      t.nodes_used = job.nodes_used;
      t.ranks_per_node =
          static_cast<std::uint32_t>(1u << rng.uniform_index(5));  // 1..16
      if (i + 1 == n) {
        t.exit_code = job.exit_code;
        t.exit_signal = job.exit_signal;
      } else {
        t.exit_code = 0;
        t.exit_signal = 0;
      }
      tasks.push_back(t);
    }
  }
  return tasks;
}

}  // namespace

SimResult simulate(const SimConfig& config) {
  FAILMINE_TRACE_SPAN("sim.simulate");
  config.validate();
  util::Rng rng(config.seed);

  std::vector<joblog::JobRecord> jobs;
  {
    FAILMINE_TRACE_SPAN("sim.workload");
    const Population population(config, rng);
    const WorkloadModel workload(config, population);
    jobs = workload.generate(rng);
  }

  std::vector<FatalEpisode> episodes;
  std::vector<raslog::RasEvent> events;
  {
    FAILMINE_TRACE_SPAN("sim.faults");
    const FaultModel faults(config, rng);
    episodes = faults.apply_system_failures(jobs, rng);
    events = faults.generate_events(episodes, rng);
  }

  std::vector<tasklog::TaskRecord> tasks;
  {
    FAILMINE_TRACE_SPAN("sim.tasks");
    tasks = generate_tasks(jobs, rng);
  }

  std::vector<iolog::IoRecord> io_records;
  {
    FAILMINE_TRACE_SPAN("sim.io");
    const IoModel io_model(config);
    io_records = io_model.generate(jobs, rng);
  }

  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("sim.jobs_generated").add(jobs.size());
  registry.counter("sim.events_generated").add(events.size());
  registry.counter("sim.tasks_generated").add(tasks.size());
  registry.counter("sim.io_records_generated").add(io_records.size());
  registry.counter("sim.episodes_generated").add(episodes.size());
  obs::logger().info("sim.trace_generated", {{"scale", config.scale},
                                             {"seed", config.seed},
                                             {"jobs", jobs.size()},
                                             {"ras_events", events.size()},
                                             {"tasks", tasks.size()}});

  SimResult result;
  result.job_log = joblog::JobLog(std::move(jobs));
  result.task_log = tasklog::TaskLog(std::move(tasks));

  // Sort events by time, then assign ascending record ids.
  std::sort(events.begin(), events.end(),
            [](const raslog::RasEvent& a, const raslog::RasEvent& b) {
              return a.timestamp < b.timestamp;
            });
  for (std::size_t i = 0; i < events.size(); ++i) events[i].record_id = i + 1;
  result.ras_log = raslog::RasLog(std::move(events));

  result.io_log = iolog::IoLog(std::move(io_records));
  result.episodes = std::move(episodes);
  return result;
}

void write_dataset(const SimResult& result, const std::string& directory) {
  FAILMINE_TRACE_SPAN("sim.write_dataset");
  result.ras_log.write_csv(directory + "/ras.csv");
  result.job_log.write_csv(directory + "/jobs.csv");
  result.task_log.write_csv(directory + "/tasks.csv");
  result.io_log.write_csv(directory + "/io.csv");
}

SimResult load_dataset(const std::string& directory,
                       const topology::MachineConfig& machine,
                       const ingest::LoadOptions& options) {
  FAILMINE_TRACE_SPAN("sim.load_dataset");
  SimResult result;
  result.ras_log =
      raslog::RasLog::read_csv(directory + "/ras.csv", machine, options);
  result.job_log = joblog::JobLog::read_csv(directory + "/jobs.csv", options);
  result.task_log =
      tasklog::TaskLog::read_csv(directory + "/tasks.csv", options);
  result.io_log = iolog::IoLog::read_csv(directory + "/io.csv", options);
  return result;
}

}  // namespace failmine::sim
