#include "sim/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "raslog/message_catalog.hpp"
#include "util/error.hpp"

namespace failmine::sim {

using joblog::ExitClass;
using raslog::MessageDef;
using raslog::Severity;
using topology::Level;
using topology::Location;
using util::UnixSeconds;

FaultModel::FaultModel(const SimConfig& config, util::Rng& rng)
    : config_(config) {
  config.validate();
  const auto& m = config.machine;
  const std::uint64_t total_boards =
      static_cast<std::uint64_t>(m.racks()) *
      static_cast<std::uint64_t>(m.midplanes_per_rack) *
      static_cast<std::uint64_t>(m.boards_per_midplane);
  std::size_t weak_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.weak_board_fraction *
                                  static_cast<double>(total_boards)));
  // Sample distinct boards (total_boards >> weak_count, so retry loops
  // terminate immediately in practice).
  while (weak_boards_.size() < weak_count) {
    const Location board = random_board(rng);
    if (std::find(weak_boards_.begin(), weak_boards_.end(), board) ==
        weak_boards_.end())
      weak_boards_.push_back(board);
  }
}

Location FaultModel::random_board(util::Rng& rng) const {
  const auto& m = config_.machine;
  const int rack =
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(m.racks())));
  return Location::rack(rack / m.rack_columns, rack % m.rack_columns)
      .with_midplane(static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(m.midplanes_per_rack))))
      .with_board(static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(m.boards_per_midplane))));
}

Location FaultModel::locality_board(util::Rng& rng) const {
  if (rng.bernoulli(config_.weak_board_event_share))
    return weak_boards_[rng.uniform_index(weak_boards_.size())];
  return random_board(rng);
}

Location FaultModel::at_level(const Location& board, Level level,
                              util::Rng& rng) const {
  const auto& m = config_.machine;
  switch (level) {
    case Level::kRack:
      return board.ancestor(Level::kRack);
    case Level::kMidplane:
      return board.ancestor(Level::kMidplane);
    case Level::kNodeBoard:
      return board;
    case Level::kComputeCard:
      return board.with_card(static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(m.cards_per_board))));
    case Level::kCore:
      return board
          .with_card(static_cast<int>(rng.uniform_index(
              static_cast<std::uint64_t>(m.cards_per_board))))
          .with_core(static_cast<int>(rng.uniform_index(
              static_cast<std::uint64_t>(m.cores_per_node))));
  }
  throw failmine::DomainError("unknown level");
}

std::vector<FatalEpisode> FaultModel::apply_system_failures(
    std::vector<joblog::JobRecord>& jobs, util::Rng& rng) const {
  std::vector<FatalEpisode> episodes;

  // 1. Job-exposure conversions.
  for (auto& job : jobs) {
    const double exposure = static_cast<double>(job.nodes_used) *
                            static_cast<double>(job.runtime_seconds());
    const double p_hit =
        1.0 - std::exp(-config_.system_hazard_per_node_second * exposure);
    if (!rng.bernoulli(p_hit)) continue;

    // Interruption interval ~ inverse Gaussian within the job's window.
    const double planned = static_cast<double>(job.runtime_seconds());
    double t_int = rng.inverse_gaussian(0.45 * planned, 0.9 * planned);
    t_int = std::clamp(t_int, 30.0, std::max(31.0, planned - 1.0));
    job.end_time = job.start_time + static_cast<UnixSeconds>(t_int);

    const std::size_t cls = rng.categorical({config_.system_hardware_weight,
                                             config_.system_software_weight,
                                             config_.system_io_weight});
    job.exit_class = cls == 0   ? ExitClass::kSystemHardware
                     : cls == 1 ? ExitClass::kSystemSoftware
                                : ExitClass::kSystemIo;
    job.exit_code = cls == 0 ? 139 : 135;
    job.exit_signal = cls == 0 ? 7 : 11;  // SIGBUS / SIGSEGV

    // Episode on a board inside the job's partition (weak boards are
    // likelier to be the culprit when the partition contains one).
    const auto partition = job.partition(config_.machine);
    Location board = random_board(rng);
    for (int attempt = 0; attempt < 64; ++attempt) {
      board = locality_board(rng);
      if (partition.covers(board, config_.machine)) break;
      // Fall back to any board within the partition.
      if (attempt == 63) {
        const auto mids = partition.midplanes(config_.machine);
        const Location mid = mids[rng.uniform_index(mids.size())];
        board = mid.with_board(static_cast<int>(rng.uniform_index(
            static_cast<std::uint64_t>(config_.machine.boards_per_midplane))));
      }
    }
    episodes.push_back(FatalEpisode{job.end_time, board, job.job_id});
  }

  // 2. Idle-hardware episodes (rate scales with the trace).
  const double idle_rate_per_sec =
      config_.idle_fatal_episodes_per_day * config_.scale / 86400.0;
  if (idle_rate_per_sec > 0) {
    UnixSeconds t = config_.observation_start;
    const UnixSeconds end = config_.observation_end();
    for (;;) {
      t += static_cast<UnixSeconds>(
          std::max(1.0, rng.exponential(idle_rate_per_sec)));
      if (t >= end) break;
      episodes.push_back(FatalEpisode{t, locality_board(rng), std::nullopt});
    }
  }

  std::sort(episodes.begin(), episodes.end(),
            [](const FatalEpisode& a, const FatalEpisode& b) {
              return a.time < b.time;
            });
  return episodes;
}

std::vector<raslog::RasEvent> FaultModel::generate_events(
    const std::vector<FatalEpisode>& episodes, util::Rng& rng) const {
  std::vector<raslog::RasEvent> events;

  // Partition the catalog by severity once.
  std::vector<const MessageDef*> background_defs;
  std::vector<double> background_weights;
  std::vector<const MessageDef*> fatal_defs;
  std::vector<double> fatal_weights;
  std::vector<const MessageDef*> warn_defs;
  std::vector<double> warn_weights;
  for (const MessageDef& def : raslog::message_catalog()) {
    if (def.severity == Severity::kFatal) {
      fatal_defs.push_back(&def);
      fatal_weights.push_back(def.rate_weight);
    } else {
      background_defs.push_back(&def);
      background_weights.push_back(def.rate_weight);
      if (def.severity == Severity::kWarn) {
        warn_defs.push_back(&def);
        warn_weights.push_back(def.rate_weight);
      }
    }
  }
  const util::AliasTable background_table(background_weights);
  const util::AliasTable fatal_table(fatal_weights);
  const util::AliasTable warn_table(warn_weights);

  auto emit = [&](const MessageDef& def, UnixSeconds time,
                  const Location& board) {
    raslog::RasEvent e;
    e.timestamp = time;
    e.message_id = std::string(def.id);
    e.severity = def.severity;
    e.component = def.component;
    e.category = def.category;
    e.location = at_level(board, def.level, rng);
    e.text = std::string(def.text);
    events.push_back(std::move(e));
  };

  // 1. Background chatter: one homogeneous Poisson stream, message type
  // drawn per event from the catalog weights, location from the locality
  // mixture.
  const double bg_rate_per_sec =
      config_.ras_background_per_day * config_.scale / 86400.0;
  const UnixSeconds end = config_.observation_end();
  UnixSeconds t = config_.observation_start;
  while (bg_rate_per_sec > 0) {
    t += static_cast<UnixSeconds>(
        std::max(1.0, rng.exponential(bg_rate_per_sec)));
    if (t >= end) break;
    const MessageDef& def = *background_defs[background_table.sample(rng)];
    emit(def, t, locality_board(rng));
  }

  // 2. Episode bursts: clustered FATALs plus precursor WARNs.
  for (const FatalEpisode& ep : episodes) {
    const std::uint64_t n_fatal =
        1 + rng.poisson(std::max(0.0, config_.fatal_events_per_episode - 1.0));
    for (std::uint64_t i = 0; i < n_fatal; ++i) {
      const MessageDef& def = *fatal_defs[fatal_table.sample(rng)];
      // The initial event fires exactly at the episode instant on the
      // origin board (it is what killed the job); the rest of the burst
      // trails it. 75 % of the burst stays on the origin board; the rest
      // spills into sibling boards of the same midplane (cable/power
      // neighbourhood).
      const UnixSeconds offset =
          i == 0 ? 0
                 : static_cast<UnixSeconds>(rng.exponential(
                       1.0 / config_.episode_duration_seconds));
      Location board = ep.origin;
      if (i != 0 && !rng.bernoulli(0.75)) {
        board = ep.origin.ancestor(Level::kMidplane)
                    .with_board(static_cast<int>(rng.uniform_index(
                        static_cast<std::uint64_t>(
                            config_.machine.boards_per_midplane))));
      }
      emit(def, ep.time + offset, board);
      if (ep.victim_job && i == 0) events.back().job_id = *ep.victim_job;
    }
    // Precursor warnings in the minutes before the episode.
    const std::uint64_t n_warn = rng.poisson(3.0);
    for (std::uint64_t i = 0; i < n_warn; ++i) {
      const MessageDef& def = *warn_defs[warn_table.sample(rng)];
      const UnixSeconds lead = static_cast<UnixSeconds>(
          rng.exponential(1.0 / (2.0 * config_.episode_duration_seconds)));
      const UnixSeconds when = ep.time > lead ? ep.time - lead : ep.time;
      emit(def, when, ep.origin);
    }
  }
  return events;
}

}  // namespace failmine::sim
