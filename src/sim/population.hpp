// failmine/sim/population.hpp
//
// The user/project population of the simulated machine.
//
// Real HPC centers have heavy-tailed user activity: a handful of heroic
// users submit a large share of all jobs, and failure-proneness differs
// by an order of magnitude between users (takeaway T-B ties failures to
// users and projects). We draw per-user activity weights from a Zipf law
// over a shuffled rank order, give each user a persistent failure-rate
// multiplier, and assign each user to one primary project.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "util/rng.hpp"

namespace failmine::sim {

/// One simulated user.
struct UserProfile {
  std::uint32_t user_id = 0;
  std::uint32_t project_id = 0;
  double activity_weight = 1.0;     ///< relative job-submission rate
  double failure_multiplier = 1.0;  ///< scales user_failure_probability
  double scale_preference = 0.0;    ///< bias towards large allocations, [0,1]
};

/// Immutable population generated from the config + RNG.
class Population {
 public:
  Population(const SimConfig& config, util::Rng& rng);

  const std::vector<UserProfile>& users() const { return users_; }
  std::size_t user_count() const { return users_.size(); }

  /// Draws a user id proportional to activity weights.
  std::uint32_t sample_user(util::Rng& rng) const;

  const UserProfile& user(std::uint32_t user_id) const;

  /// Number of distinct projects actually assigned.
  std::uint32_t project_count() const { return project_count_; }

 private:
  Population(const SimConfig& config, util::Rng& rng, std::vector<double> weights);

  std::vector<UserProfile> users_;
  std::uint32_t project_count_ = 0;
  util::AliasTable activity_table_;
};

}  // namespace failmine::sim
