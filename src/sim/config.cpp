#include "sim/config.hpp"

#include "util/error.hpp"

namespace failmine::sim {

SimConfig SimConfig::scaled(double s) const {
  if (s <= 0) throw failmine::DomainError("scale must be positive");
  SimConfig c = *this;
  c.scale = scale * s;
  return c;
}

SimConfig SimConfig::paper_scale() { return SimConfig{}; }

SimConfig SimConfig::bench_scale() {
  SimConfig c;
  c.scale = 0.1;
  return c;
}

SimConfig SimConfig::test_scale() {
  SimConfig c;
  c.scale = 0.01;
  c.user_count = 120;
  c.project_count = 50;
  return c;
}

void SimConfig::validate() const {
  if (observation_days <= 0)
    throw failmine::DomainError("observation_days must be positive");
  if (scale <= 0) throw failmine::DomainError("scale must be positive");
  if (user_count < 1 || project_count < 1)
    throw failmine::DomainError("population must be non-empty");
  if (project_count > user_count)
    throw failmine::DomainError("more projects than users is not modeled");
  if (jobs_per_day <= 0)
    throw failmine::DomainError("jobs_per_day must be positive");
  if (user_failure_probability < 0 || user_failure_probability > 1)
    throw failmine::DomainError("user_failure_probability must be in [0,1]");
  if (io_coverage < 0 || io_coverage > 1)
    throw failmine::DomainError("io_coverage must be in [0,1]");
  const double mix = user_app_error_weight + user_config_error_weight +
                     user_kill_weight + walltime_weight;
  if (mix <= 0) throw failmine::DomainError("user failure mix must be positive");
  if (weak_board_fraction <= 0 || weak_board_fraction >= 1)
    throw failmine::DomainError("weak_board_fraction must be in (0,1)");
  if (weak_board_event_share < 0 || weak_board_event_share > 1)
    throw failmine::DomainError("weak_board_event_share must be in [0,1]");
  if (idle_fatal_episodes_per_day < 0 || fatal_events_per_episode < 1)
    throw failmine::DomainError("fault episode parameters out of range");
  if (system_hazard_per_node_second < 0)
    throw failmine::DomainError("system hazard must be non-negative");
}

}  // namespace failmine::sim
