#include "sim/population.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace failmine::sim {

namespace {

std::vector<double> zipf_weights(const SimConfig& config, util::Rng& rng) {
  config.validate();
  std::vector<double> weights(static_cast<std::size_t>(config.user_count));
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1),
                                config.user_zipf_exponent);
  // Shuffle so user_id order doesn't encode the rank (analyses must
  // discover the concentration, not read it off the id).
  for (std::size_t i = weights.size(); i > 1; --i)
    std::swap(weights[i - 1], weights[rng.uniform_index(i)]);
  return weights;
}

}  // namespace

Population::Population(const SimConfig& config, util::Rng& rng)
    : Population(config, rng, zipf_weights(config, rng)) {}

Population::Population(const SimConfig& config, util::Rng& rng,
                       std::vector<double> weights)
    : activity_table_(weights) {
  users_.resize(weights.size());
  project_count_ = static_cast<std::uint32_t>(config.project_count);
  for (std::size_t i = 0; i < users_.size(); ++i) {
    UserProfile& u = users_[i];
    u.user_id = static_cast<std::uint32_t>(i);
    u.activity_weight = weights[i];
    // Several users share each project; assignment is random, so project
    // activity inherits a (milder) heavy tail from its members.
    u.project_id = static_cast<std::uint32_t>(
        rng.uniform_index(static_cast<std::uint64_t>(config.project_count)));
    // Log-normal failure-rate heterogeneity with median 1: some users are
    // persistently ~4x more failure-prone than others (debug-heavy
    // development projects vs. stable production codes).
    u.failure_multiplier = std::clamp(rng.lognormal(0.0, 0.55), 0.15, 4.5);
    u.scale_preference = rng.uniform();
  }
  // Normalize failure multipliers so the activity-weighted mean is exactly
  // 1: the config's base failure probability then stays the population
  // average regardless of which users happen to dominate the workload.
  double weight_sum = 0.0;
  double weighted = 0.0;
  for (const UserProfile& u : users_) {
    weight_sum += u.activity_weight;
    weighted += u.activity_weight * u.failure_multiplier;
  }
  const double norm = weighted / weight_sum;
  for (UserProfile& u : users_) u.failure_multiplier /= norm;
}

std::uint32_t Population::sample_user(util::Rng& rng) const {
  return static_cast<std::uint32_t>(activity_table_.sample(rng));
}

const UserProfile& Population::user(std::uint32_t user_id) const {
  if (user_id >= users_.size())
    throw failmine::DomainError("unknown user id " + std::to_string(user_id));
  return users_[user_id];
}

}  // namespace failmine::sim
