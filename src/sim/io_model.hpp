// failmine/sim/io_model.hpp
//
// Darshan-style I/O behaviour generator (experiment E12's substrate).
//
// I/O volume scales sublinearly with core-hours (checkpoint-dominated
// codes); failed jobs record less written output because they die before
// their final checkpoint. Coverage is partial, as on Mira, where Darshan
// only instruments dynamically-linked MPI codes.

#pragma once

#include <vector>

#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "sim/config.hpp"
#include "util/rng.hpp"

namespace failmine::sim {

class IoModel {
 public:
  explicit IoModel(const SimConfig& config);

  /// Generates I/O records for a covered subset of jobs.
  std::vector<iolog::IoRecord> generate(
      const std::vector<joblog::JobRecord>& jobs, util::Rng& rng) const;

 private:
  // By value: a reference would dangle when callers construct the model
  // from a temporary config.
  SimConfig config_;
};

}  // namespace failmine::sim
