// failmine/sim/replay.hpp
//
// Turns a simulated (or loaded) four-log dataset into the record stream a
// live collection daemon would have produced, for feeding the streaming
// pipeline.
//
// Event time is the instant each record becomes knowable: a job or task
// record exists once it has ended (end_time), a RAS event at its
// timestamp, and a Darshan-style I/O summary when its owning job ends.
// `build_replay` emits the stream in exact event-time order with
// sequence numbers assigned in that order — the reference stream for
// batch/stream parity. `shuffled_replay` perturbs arrival order within a
// bounded skew while keeping each record's event time and sequence
// number, modelling collection latency; a WatermarkReorderer configured
// with `max_lateness_seconds >= 2 * max_skew_seconds` restores the
// exact reference order (arrival times of two records can swap while
// their event times differ by up to twice the skew).

#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "stream/record.hpp"

namespace failmine::sim {

/// Flattens `result` into one time-ordered stream of records.
std::vector<stream::StreamRecord> build_replay(const SimResult& result);

/// `build_replay` with arrival order perturbed by a deterministic,
/// seeded, bounded skew (each record moves by at most
/// `max_skew_seconds` of event time). Event times and sequence numbers
/// are unchanged — only the vector order differs.
std::vector<stream::StreamRecord> shuffled_replay(
    const SimResult& result, std::int64_t max_skew_seconds,
    std::uint64_t seed);

}  // namespace failmine::sim
