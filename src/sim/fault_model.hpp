// failmine/sim/fault_model.hpp
//
// RAS fault injection.
//
// The fault model owns three behaviours the paper's RAS analyses depend on:
//
//  1. *System-caused job failures* (takeaway T-A's 0.6 % share): every job
//     is exposed to a hazard proportional to its node-seconds; struck jobs
//     are truncated at an inverse-Gaussian interruption time and re-labeled
//     SYSTEM_{HARDWARE,SOFTWARE,IO}.
//  2. *Fatal episodes*: each system failure (plus a low rate of idle-
//     hardware episodes) produces a burst of FATAL events clustered in
//     time (minutes) and space (same board/midplane) — the redundancy the
//     similarity-based filter (core/event_filter) is designed to collapse.
//  3. *Background chatter*: INFO/WARN events drawn from the message
//     catalog's rate weights, with a configurable share concentrated on a
//     small set of "weak" boards (takeaway T-D's locality).

#pragma once

#include <optional>
#include <vector>

#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "sim/config.hpp"
#include "util/rng.hpp"

namespace failmine::sim {

/// One ground-truth interruption episode (before event-level expansion).
struct FatalEpisode {
  util::UnixSeconds time = 0;
  topology::Location origin = topology::Location::rack(0, 0);  ///< board level
  std::optional<std::uint64_t> victim_job;  ///< job the episode killed, if any
};

class FaultModel {
 public:
  /// Selects the weak-board set deterministically from `rng`.
  FaultModel(const SimConfig& config, util::Rng& rng);

  /// Converts hazard-struck jobs to system failures in place (truncating
  /// end_time) and returns all fatal episodes (job-linked + idle) in time
  /// order.
  std::vector<FatalEpisode> apply_system_failures(
      std::vector<joblog::JobRecord>& jobs, util::Rng& rng) const;

  /// Expands episodes into FATAL bursts and adds background INFO/WARN
  /// chatter; events come back unsorted and without record ids (the
  /// simulator assigns ids after the final sort).
  std::vector<raslog::RasEvent> generate_events(
      const std::vector<FatalEpisode>& episodes, util::Rng& rng) const;

  /// The boards designated as locality hot spots (board-level locations).
  const std::vector<topology::Location>& weak_boards() const {
    return weak_boards_;
  }

 private:
  topology::Location random_board(util::Rng& rng) const;
  topology::Location locality_board(util::Rng& rng) const;
  /// Re-levels a board-level location to `level` (descending randomly to
  /// card/core or ascending to midplane/rack).
  topology::Location at_level(const topology::Location& board,
                              topology::Level level, util::Rng& rng) const;

  // By value: a reference would dangle when callers construct the model
  // from a temporary config.
  SimConfig config_;
  std::vector<topology::Location> weak_boards_;
};

}  // namespace failmine::sim
