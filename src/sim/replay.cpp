#include "sim/replay.hpp"

#include <algorithm>
#include <random>
#include <unordered_map>

#include "util/error.hpp"

namespace failmine::sim {

namespace {

/// Stable per-source identity, the final tie-break for records sharing
/// an event time (any fixed order works; it just has to be the same one
/// every replay).
std::uint64_t record_id(const stream::StreamRecord& r) {
  switch (r.source()) {
    case stream::RecordSource::kJob:
      return std::get<joblog::JobRecord>(r.payload).job_id;
    case stream::RecordSource::kTask:
      return std::get<tasklog::TaskRecord>(r.payload).task_id;
    case stream::RecordSource::kRas:
      return std::get<raslog::RasEvent>(r.payload).record_id;
    case stream::RecordSource::kIo:
      return std::get<iolog::IoRecord>(r.payload).job_id;
  }
  return 0;
}

}  // namespace

std::vector<stream::StreamRecord> build_replay(const SimResult& result) {
  std::vector<stream::StreamRecord> out;
  out.reserve(result.job_log.size() + result.task_log.size() +
              result.ras_log.size() + result.io_log.size());

  std::unordered_map<std::uint64_t, util::UnixSeconds> job_end;
  job_end.reserve(result.job_log.size());
  for (const auto& job : result.job_log.jobs()) {
    job_end.emplace(job.job_id, job.end_time);
    out.push_back({job.end_time, 0, job});
  }
  for (const auto& task : result.task_log.tasks())
    out.push_back({task.end_time, 0, task});
  for (const auto& event : result.ras_log.events())
    out.push_back({event.timestamp, 0, event});
  for (const auto& io : result.io_log.records()) {
    const auto it = job_end.find(io.job_id);
    if (it == job_end.end())
      throw failmine::DomainError("I/O record refers to unknown job");
    out.push_back({it->second, 0, io});
  }

  std::sort(out.begin(), out.end(),
            [](const stream::StreamRecord& a, const stream::StreamRecord& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.payload.index() != b.payload.index())
                return a.payload.index() < b.payload.index();
              return record_id(a) < record_id(b);
            });
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i].sequence = static_cast<std::uint64_t>(i);
  return out;
}

std::vector<stream::StreamRecord> shuffled_replay(
    const SimResult& result, std::int64_t max_skew_seconds,
    std::uint64_t seed) {
  if (max_skew_seconds < 0)
    throw failmine::DomainError("replay skew must be non-negative");
  std::vector<stream::StreamRecord> out = build_replay(result);

  // Arrival time = event time + uniform skew in [-max_skew, +max_skew],
  // drawn from a seeded engine without std::uniform_int_distribution so
  // the shuffle is reproducible across standard libraries.
  std::mt19937_64 rng(seed);
  const std::uint64_t span = 2 * static_cast<std::uint64_t>(max_skew_seconds) + 1;
  std::vector<std::int64_t> arrival(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::int64_t skew =
        static_cast<std::int64_t>(rng() % span) - max_skew_seconds;
    arrival[i] = out[i].time + skew;
  }
  std::vector<std::size_t> order(out.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (arrival[a] != arrival[b]) return arrival[a] < arrival[b];
    return out[a].sequence < out[b].sequence;
  });

  std::vector<stream::StreamRecord> shuffled;
  shuffled.reserve(out.size());
  for (std::size_t i : order) shuffled.push_back(std::move(out[i]));
  return shuffled;
}

}  // namespace failmine::sim
