#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace failmine::sim {

using joblog::ExitClass;
using util::UnixSeconds;

WorkloadModel::WorkloadModel(const SimConfig& config, const Population& population)
    : config_(config), population_(population) {
  config.validate();
  const std::uint32_t per_mid = config.machine.nodes_per_midplane();
  const std::uint32_t total = config.machine.total_nodes();
  // Midplane-multiple allocation sizes doubling up to the full machine,
  // with Mira's characteristic head-heavy popularity.
  for (std::uint32_t n = per_mid; n <= total; n *= 2) sizes_.push_back(n);
  if (sizes_.empty() || sizes_.back() != total) sizes_.push_back(total);
  static constexpr double kBaseWeights[] = {0.40, 0.25, 0.15, 0.10,
                                            0.05, 0.03, 0.015, 0.005};
  for (std::size_t i = 0; i < sizes_.size(); ++i)
    size_weights_.push_back(
        i < std::size(kBaseWeights) ? kBaseWeights[i] : kBaseWeights[7] / 2.0);
}

double WorkloadModel::seasonality(UnixSeconds t) const {
  const int hour = util::hour_of_day(t);
  const int dow = util::day_of_week(t);
  // Submissions peak mid-afternoon; the cosine trough lands at ~03:00.
  const double diurnal =
      1.0 + config_.diurnal_amplitude *
                std::cos(2.0 * std::numbers::pi * (hour - 15) / 24.0);
  const double weekly = (dow >= 5) ? config_.weekend_factor : 1.0;
  return diurnal * weekly;
}

std::vector<joblog::JobRecord> WorkloadModel::generate(util::Rng& rng) const {
  std::vector<joblog::JobRecord> jobs;
  const double rate_per_hour = config_.jobs_per_day * config_.scale / 24.0;
  jobs.reserve(static_cast<std::size_t>(rate_per_hour * 24.0 *
                                        config_.observation_days * 1.1));
  const UnixSeconds end = config_.observation_end();
  std::uint64_t next_id = 1'000'000;  // Cobalt ids on Mira started ~7 digits

  // Thinned NHPP: draw homogeneous arrivals at the peak rate, keep each
  // with probability seasonality/peak.
  const double peak = (1.0 + config_.diurnal_amplitude);
  const double peak_rate_per_sec = rate_per_hour * peak / 3600.0;
  UnixSeconds t = config_.observation_start;
  while (t < end) {
    t += static_cast<UnixSeconds>(
        std::max(1.0, rng.exponential(peak_rate_per_sec)));
    if (t >= end) break;
    if (!rng.bernoulli(seasonality(t) / peak)) continue;
    jobs.push_back(make_job(next_id++, t, rng));
  }
  return jobs;
}

joblog::JobRecord WorkloadModel::make_job(std::uint64_t job_id,
                                          UnixSeconds submit,
                                          util::Rng& rng) const {
  joblog::JobRecord j;
  j.job_id = job_id;
  j.user_id = population_.sample_user(rng);
  const UserProfile& user = population_.user(j.user_id);
  j.project_id = user.project_id;

  // Allocation size: users with a high scale preference shift probability
  // mass one or two steps towards larger partitions.
  std::vector<double> weights = size_weights_;
  const int shift = user.scale_preference > 0.9 ? 2
                    : user.scale_preference > 0.6 ? 1
                                                  : 0;
  for (int s = 0; s < shift; ++s) {
    for (std::size_t i = weights.size() - 1; i > 0; --i)
      weights[i] += 0.5 * weights[i - 1];
  }
  const std::size_t size_idx = rng.categorical(weights);
  j.nodes_used = sizes_[size_idx];
  j.queue = j.nodes_used >= config_.machine.total_nodes() / 3
                ? "prod-capability"
                : "prod-short";

  // Requested walltime from the standard menu, longer for larger jobs.
  static constexpr int kWalltimeHours[] = {1, 2, 4, 6, 8, 12, 24};
  const std::size_t wt_idx = std::min<std::size_t>(
      std::size(kWalltimeHours) - 1,
      static_cast<std::size_t>(rng.categorical({0.25, 0.25, 0.20, 0.12, 0.10,
                                                0.05, 0.03}) +
                               (size_idx >= 4 ? 1 : 0)));
  j.requested_walltime =
      static_cast<std::int64_t>(kWalltimeHours[wt_idx]) * 3600;

  // Queue wait: exponential with mean growing in job size.
  const double mean_wait = 1800.0 * (1.0 + static_cast<double>(size_idx));
  j.submit_time = submit;
  j.start_time =
      submit + static_cast<UnixSeconds>(rng.exponential(1.0 / mean_wait));

  // Task structure: 1 + geometric; mean config_.mean_tasks_per_job.
  const double extra = std::max(0.0, config_.mean_tasks_per_job - 1.0);
  const double p_stop = 1.0 / (1.0 + extra);
  std::uint32_t tasks = 1;
  while (!rng.bernoulli(p_stop) && tasks < 64) ++tasks;
  j.task_count = tasks;

  // User-side outcome.
  const double node_doublings =
      std::log2(static_cast<double>(j.nodes_used) /
                static_cast<double>(config_.machine.nodes_per_midplane()));
  const double p_fail =
      std::clamp(config_.user_failure_probability * user.failure_multiplier *
                     (1.0 + config_.task_failure_boost *
                                (static_cast<double>(tasks) - 1.0)) *
                     (1.0 + config_.scale_failure_boost * node_doublings),
                 0.0, 0.95);

  const double walltime = static_cast<double>(j.requested_walltime);
  double runtime = 0.0;
  if (!rng.bernoulli(p_fail)) {
    j.exit_class = ExitClass::kSuccess;
    j.exit_code = 0;
    j.exit_signal = 0;
    // Log-normal around a size-dependent median, capped at walltime.
    const double median = 0.18 * walltime;
    runtime = std::min(walltime - 1.0, rng.lognormal(std::log(median), 0.8));
  } else {
    const std::size_t cls = rng.categorical(
        {config_.user_app_error_weight, config_.user_config_error_weight,
         config_.user_kill_weight, config_.walltime_weight});
    switch (cls) {
      case 0:  // application bug: Weibull with decreasing hazard
        j.exit_class = ExitClass::kUserAppError;
        j.exit_code = 1 + static_cast<int>(rng.uniform_index(120));
        j.exit_signal = rng.bernoulli(0.25)
                            ? (rng.bernoulli(0.6) ? 11 : 6)  // SIGSEGV/SIGABRT
                            : 0;
        // A single global scale keeps the class marginal a clean Weibull
        // (a walltime-proportional scale would yield a Weibull mixture,
        // which fits log-normal better) while the walltime cap below
        // truncates only a few percent of the mass.
        runtime = rng.weibull(0.72, 1800.0);
        break;
      case 1:  // config error: dies within minutes (Erlang-2)
        j.exit_class = ExitClass::kUserConfigError;
        j.exit_code = 125 + static_cast<int>(rng.uniform_index(3));
        j.exit_signal = 0;
        runtime = rng.erlang(2, 1.0 / 90.0);
        break;
      case 2:  // user kill: Pareto patience
        j.exit_class = ExitClass::kUserKill;
        j.exit_code = 0;
        j.exit_signal = rng.bernoulli(0.7) ? 15 : 2;
        runtime = rng.pareto(300.0, 1.3);
        break;
      default:  // walltime overrun
        j.exit_class = ExitClass::kWalltimeLimit;
        j.exit_code = 24;
        j.exit_signal = 9;
        runtime = walltime;
        break;
    }
    runtime = std::min(runtime, walltime);
  }
  runtime = std::max(runtime, 10.0);
  j.end_time = j.start_time + static_cast<UnixSeconds>(runtime);

  // Aligned partition placement.
  const int mids = topology::midplanes_for_nodes(j.nodes_used, config_.machine);
  const int total_mids =
      config_.machine.racks() * config_.machine.midplanes_per_rack;
  const int slots = std::max(1, total_mids / mids);
  j.partition_first_midplane =
      static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(slots))) *
      mids;
  return j;
}

}  // namespace failmine::sim
