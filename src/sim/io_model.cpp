#include "sim/io_model.hpp"

#include <algorithm>
#include <cmath>

namespace failmine::sim {

IoModel::IoModel(const SimConfig& config) : config_(config) {
  config.validate();
}

std::vector<iolog::IoRecord> IoModel::generate(
    const std::vector<joblog::JobRecord>& jobs, util::Rng& rng) const {
  std::vector<iolog::IoRecord> records;
  records.reserve(static_cast<std::size_t>(
      static_cast<double>(jobs.size()) * config_.io_coverage));
  for (const auto& job : jobs) {
    if (!rng.bernoulli(config_.io_coverage)) continue;
    iolog::IoRecord r;
    r.job_id = job.job_id;

    const double core_hours = job.core_hours(config_.machine);
    // Checkpoint-dominated scaling: bytes ~ core_hours^0.8 with a wide
    // log-normal spread; ~1 GiB per (core_hour)^0.8 median.
    const double base =
        std::pow(std::max(core_hours, 1.0), 0.8) * 1.0e9;
    const double total = base * rng.lognormal(0.0, 1.1);
    double read_share = std::clamp(rng.normal(0.35, 0.15), 0.02, 0.95);

    // Failed jobs lose their final checkpoint: written volume shrinks by
    // the fraction of the run they completed (success keeps everything).
    double write_completion = 1.0;
    if (job.failed()) {
      const double frac =
          static_cast<double>(job.runtime_seconds()) /
          std::max(1.0, static_cast<double>(job.requested_walltime));
      write_completion = std::clamp(0.2 + 0.8 * frac, 0.05, 1.0);
    }
    r.bytes_read = static_cast<std::uint64_t>(total * read_share);
    r.bytes_written =
        static_cast<std::uint64_t>(total * (1.0 - read_share) * write_completion);

    // Aggregate bandwidths in the single-digit GB/s regime.
    const double read_bw = rng.lognormal(std::log(2.0e9), 0.6);
    const double write_bw = rng.lognormal(std::log(1.5e9), 0.6);
    r.read_time_seconds = static_cast<double>(r.bytes_read) / read_bw;
    r.write_time_seconds = static_cast<double>(r.bytes_written) / write_bw;

    r.files_accessed = static_cast<std::uint32_t>(
        1 + rng.poisson(4.0 + std::log2(std::max(1.0, core_hours))));
    r.ranks_doing_io = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               static_cast<double>(job.nodes_used) *
               std::clamp(rng.normal(0.25, 0.2), 0.01, 1.0)));
    records.push_back(r);
  }
  return records;
}

}  // namespace failmine::sim
