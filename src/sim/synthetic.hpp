// failmine/sim/synthetic.hpp
//
// Deterministic synthetic job-stream generator for scan benchmarks.
//
// The full simulator (sim/simulator.hpp) models the paper's failure
// processes and is paced for ~1M-row datasets; the columnar scan bench
// (C01) needs 100M+ rows of *shaped* but not *modeled* data: ascending
// job ids, non-decreasing start times (so the columnar timestamp column
// delta-seals, as real sorted logs do), skewed user/project activity
// and a paper-like exit-class mix. Each row is derived from a stateless
// splitmix64 hash of (seed, row index), so the stream is reproducible
// for any chunking and costs no stored state.
//
// The sink-callback design lets callers fill either representation
// with no intermediate buffer: push_back into a std::vector<JobRecord>
// for the row path, or JobTableBuilder::add for the columnar path. One
// scratch record is reused across calls — the sink must copy what it
// keeps.

#pragma once

#include <array>
#include <cstdint>

#include "joblog/job.hpp"
#include "util/time.hpp"

namespace failmine::sim {

struct SyntheticJobStreamConfig {
  std::uint64_t rows = 1'000'000;
  std::uint32_t users = 1024;
  std::uint32_t projects = 128;
  std::uint64_t seed = 0x5eedc01dULL;
  util::UnixSeconds origin = 1357776000;  // 2013-01-10, early in Mira's life
};

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Streams `config.rows` synthetic jobs through `sink` (a callable
/// taking `const joblog::JobRecord&`) in start-time order.
template <class Sink>
void generate_job_stream(const SyntheticJobStreamConfig& config, Sink&& sink) {
  static constexpr std::array<const char*, 4> kQueues = {
      "prod-capability", "prod-short", "prod-long", "backfill"};
  joblog::JobRecord j;
  util::UnixSeconds start = config.origin;
  for (std::uint64_t i = 0; i < config.rows; ++i) {
    const std::uint64_t r = detail::splitmix64(config.seed ^ (i * 0xd1342543de82ef95ULL));
    const std::uint64_t r2 = detail::splitmix64(r);

    j.job_id = i + 1;
    // Quadratic skew: a few users/projects dominate the stream, like the
    // paper's concentration takeaway (T-B).
    const double frac =
        static_cast<double>((r >> 16) & 0xffffff) / 16777216.0;
    j.user_id = static_cast<std::uint32_t>(
        static_cast<double>(config.users - 1) * frac * frac);
    j.project_id = static_cast<std::uint32_t>(
        static_cast<double>(config.projects - 1) * frac * frac * frac);
    j.queue = kQueues[r % kQueues.size()];

    start += static_cast<util::UnixSeconds>(r % 5);  // non-decreasing
    j.start_time = start;
    j.submit_time = start - static_cast<util::UnixSeconds>(r2 % 86400);
    const std::int64_t runtime = 60 + static_cast<std::int64_t>(r2 % 43200);
    j.end_time = start + runtime;
    j.requested_walltime = runtime + 1800;

    j.nodes_used = 512u << (r2 % 6);  // 512 .. 16384
    j.task_count = 1 + static_cast<std::uint32_t>(r % 4);
    j.partition_first_midplane = static_cast<int>(r2 % 96);

    // Exit mix shaped like the paper: success-dominated, user-caused
    // failures far outnumbering system-caused ones.
    const std::uint64_t roll = r % 10000;
    if (roll < 6280) {
      j.exit_class = joblog::ExitClass::kSuccess;
      j.exit_code = 0;
      j.exit_signal = 0;
    } else if (roll < 8280) {
      j.exit_class = joblog::ExitClass::kUserAppError;
      j.exit_code = 1;
      j.exit_signal = 0;
    } else if (roll < 8780) {
      j.exit_class = joblog::ExitClass::kUserConfigError;
      j.exit_code = 125;
      j.exit_signal = 0;
    } else if (roll < 9380) {
      j.exit_class = joblog::ExitClass::kUserKill;
      j.exit_code = 0;
      j.exit_signal = 15;
    } else if (roll < 9880) {
      j.exit_class = joblog::ExitClass::kWalltimeLimit;
      j.exit_code = 24;
      j.exit_signal = 9;
    } else if (roll < 9940) {
      j.exit_class = joblog::ExitClass::kSystemHardware;
      j.exit_code = 139;
      j.exit_signal = 11;
    } else if (roll < 9980) {
      j.exit_class = joblog::ExitClass::kSystemSoftware;
      j.exit_code = 135;
      j.exit_signal = 7;
    } else {
      j.exit_class = joblog::ExitClass::kSystemIo;
      j.exit_code = 5;
      j.exit_signal = 0;
    }
    sink(j);
  }
}

}  // namespace failmine::sim
