#include "core/event_filter.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::core {

using raslog::RasEvent;
using topology::Level;

bool spatially_similar(const RasEvent& a, const RasEvent& b,
                       const FilterConfig& config) {
  if (config.require_same_message && a.message_id != b.message_id) return false;
  const auto common = a.location.common_level(b.location);
  if (!common.has_value()) return false;  // different racks
  // A location shallower than the configured radius covers everything
  // beneath it, so the requirement relaxes to the shallowest of the three.
  const Level required = std::min(
      {config.spatial_level, a.location.level(), b.location.level()});
  return *common >= required;
}

namespace {

std::vector<const RasEvent*> select_severity(const raslog::RasLog& log,
                                             raslog::Severity severity) {
  std::vector<const RasEvent*> out;
  for (const auto& e : log.events())
    if (e.severity == severity) out.push_back(&e);
  return out;
}

}  // namespace

FilterResult filter_events(const raslog::RasLog& log, const FilterConfig& config) {
  FAILMINE_TRACE_SPAN("e07.filtering");
  if (config.window_seconds < 0)
    throw failmine::DomainError("filter window must be non-negative");
  const auto selected = select_severity(log, config.severity);

  FilterResult result;
  result.input_events = selected.size();

  // Open clusters: indexes into result.clusters whose last_time is still
  // within the window of the current event. The stream is time-sorted, so
  // clusters expire monotonically from the front of the open list.
  std::vector<std::size_t> open;
  for (const RasEvent* event : selected) {
    // Expire stale clusters.
    std::erase_if(open, [&](std::size_t idx) {
      return result.clusters[idx].last_time <
             event->timestamp - config.window_seconds;
    });

    // Join the most recently touched similar cluster.
    std::size_t joined = static_cast<std::size_t>(-1);
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
      EventCluster& c = result.clusters[*it];
      if (spatially_similar(c.representative, *event, config)) {
        joined = *it;
        break;
      }
    }
    if (joined != static_cast<std::size_t>(-1)) {
      EventCluster& c = result.clusters[joined];
      ++c.member_count;
      c.last_time = event->timestamp;
      if (!c.job_id && event->job_id) c.job_id = event->job_id;
    } else {
      EventCluster c;
      c.representative = *event;
      c.member_count = 1;
      c.first_time = event->timestamp;
      c.last_time = event->timestamp;
      c.job_id = event->job_id;
      result.clusters.push_back(std::move(c));
      open.push_back(result.clusters.size() - 1);
    }
  }
  obs::metrics().counter("filter.input_events").add(result.input_events);
  obs::metrics().counter("filter.clusters").add(result.clusters.size());
  return result;
}

PipelineCounts filtering_pipeline(const raslog::RasLog& log,
                                  const FilterConfig& config) {
  PipelineCounts counts;
  const auto selected = select_severity(log, config.severity);
  counts.raw = selected.size();

  // Temporal-only: split the time-sorted stream wherever the gap to the
  // previous event exceeds the window.
  std::uint64_t temporal = 0;
  util::UnixSeconds last = 0;
  bool first = true;
  for (const RasEvent* e : selected) {
    if (first || e->timestamp - last > config.window_seconds) ++temporal;
    last = e->timestamp;
    first = false;
  }
  counts.temporal_only = temporal;

  // Spatial-only: distinct components at the effective level, ignoring
  // time entirely.
  std::set<topology::Location> components;
  for (const RasEvent* e : selected) {
    const Level effective = std::min(config.spatial_level, e->location.level());
    components.insert(e->location.ancestor(effective));
  }
  counts.spatial_only = components.size();

  counts.combined = filter_events(log, config).clusters.size();
  return counts;
}

}  // namespace failmine::core
