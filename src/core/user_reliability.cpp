#include "core/user_reliability.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "stats/correlation.hpp"
#include "util/error.hpp"

namespace failmine::core {

UserReliabilityStudy user_reliability_study(
    const joblog::JobLog& jobs, const topology::MachineConfig& machine) {
  if (jobs.empty())
    throw failmine::DomainError("user_reliability_study requires jobs");

  std::unordered_map<std::uint32_t, UserReliability> by_user;
  for (const auto& job : jobs.jobs()) {
    UserReliability& u = by_user[job.user_id];
    u.user_id = job.user_id;
    ++u.jobs;
    const double ch = job.core_hours(machine);
    u.core_hours += ch;
    u.node_days += static_cast<double>(job.nodes_used) *
                   static_cast<double>(job.runtime_seconds()) /
                   static_cast<double>(util::kSecondsPerDay);
    if (joblog::is_system_caused(job.exit_class)) {
      ++u.system_kills;
      u.lost_core_hours += ch;
    }
  }

  UserReliabilityStudy study;
  double total_node_days = 0.0;
  std::uint64_t total_kills = 0;
  for (auto& [id, u] : by_user) {
    u.node_days_between_kills =
        u.system_kills > 0
            ? u.node_days / static_cast<double>(u.system_kills)
            : std::numeric_limits<double>::infinity();
    if (u.system_kills > 0) ++study.users_with_kills;
    study.total_lost_core_hours += u.lost_core_hours;
    total_node_days += u.node_days;
    total_kills += u.system_kills;
    study.users.push_back(u);
  }
  std::sort(study.users.begin(), study.users.end(),
            [](const UserReliability& a, const UserReliability& b) {
              return a.node_days > b.node_days;
            });
  study.machine_node_days_per_kill =
      total_kills > 0 ? total_node_days / static_cast<double>(total_kills)
                      : std::numeric_limits<double>::infinity();

  if (study.users.size() >= 3) {
    std::vector<double> exposure, kills;
    for (const auto& u : study.users) {
      exposure.push_back(u.node_days);
      kills.push_back(static_cast<double>(u.system_kills));
    }
    try {
      study.exposure_kill_correlation = stats::spearman(exposure, kills);
    } catch (const failmine::DomainError&) {
      study.exposure_kill_correlation = 0.0;  // no kills anywhere
    }
  }
  return study;
}

}  // namespace failmine::core
