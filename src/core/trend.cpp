#include "core/trend.hpp"

#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::core {

namespace {

TrendResult trend_from_counts(std::vector<std::uint64_t> counts) {
  if (counts.size() < 3)
    throw failmine::DomainError("trend requires >= 3 months");
  TrendResult r;
  r.monthly_counts = std::move(counts);
  std::vector<double> x, y;
  x.reserve(r.monthly_counts.size());
  for (std::size_t m = 0; m < r.monthly_counts.size(); ++m) {
    x.push_back(static_cast<double>(m));
    y.push_back(static_cast<double>(r.monthly_counts[m]));
  }
  r.fit = stats::linear_regression(x, y);
  r.mean_per_month = stats::mean(y);
  r.relative_slope =
      r.mean_per_month > 0 ? r.fit.slope / r.mean_per_month : 0.0;
  return r;
}

std::size_t month_count(util::UnixSeconds origin, util::UnixSeconds end) {
  if (end <= origin) throw failmine::DomainError("empty trend window");
  const int months = util::month_index(origin, end - 1) + 1;
  return static_cast<std::size_t>(std::max(months, 1));
}

}  // namespace

TrendResult interruption_trend(const std::vector<EventCluster>& clusters,
                               util::UnixSeconds origin,
                               util::UnixSeconds end) {
  std::vector<std::uint64_t> counts(month_count(origin, end), 0);
  for (const auto& c : clusters) {
    if (c.first_time < origin || c.first_time >= end) continue;
    const int m = util::month_index(origin, c.first_time);
    if (m >= 0 && static_cast<std::size_t>(m) < counts.size())
      ++counts[static_cast<std::size_t>(m)];
  }
  return trend_from_counts(std::move(counts));
}

TrendResult failure_trend(const joblog::JobLog& jobs, util::UnixSeconds origin,
                          util::UnixSeconds end) {
  std::vector<std::uint64_t> counts(month_count(origin, end), 0);
  for (const auto& j : jobs.jobs()) {
    if (!j.failed()) continue;
    if (j.end_time < origin || j.end_time >= end) continue;
    const int m = util::month_index(origin, j.end_time);
    if (m >= 0 && static_cast<std::size_t>(m) < counts.size())
      ++counts[static_cast<std::size_t>(m)];
  }
  return trend_from_counts(std::move(counts));
}

}  // namespace failmine::core
