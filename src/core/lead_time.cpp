#include "core/lead_time.hpp"

#include <algorithm>

#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::core {

LeadTimeResult warning_lead_times(const raslog::RasLog& log,
                                  const std::vector<EventCluster>& clusters,
                                  const LeadTimeConfig& config) {
  if (config.horizon_seconds <= 0)
    throw failmine::DomainError("lead-time horizon must be positive");

  // Collect the WARN stream once (already time-sorted inside the log).
  std::vector<const raslog::RasEvent*> warns;
  for (const auto& e : log.events())
    if (e.severity == raslog::Severity::kWarn) warns.push_back(&e);

  LeadTimeResult result;
  std::vector<double> leads;
  FilterConfig similarity;
  similarity.spatial_level = config.spatial_level;

  for (const auto& cluster : clusters) {
    Precursor p;
    p.interruption_time = cluster.first_time;

    // Binary search the first WARN at or after the window start, then
    // walk forward to the interruption instant keeping the latest match.
    const util::UnixSeconds window_start =
        cluster.first_time - config.horizon_seconds;
    auto it = std::lower_bound(
        warns.begin(), warns.end(), window_start,
        [](const raslog::RasEvent* e, util::UnixSeconds t) {
          return e->timestamp < t;
        });
    const raslog::RasEvent* best = nullptr;
    for (; it != warns.end() && (*it)->timestamp <= cluster.first_time; ++it) {
      if (spatially_similar(**it, cluster.representative, similarity))
        best = *it;  // keep the latest (shortest lead)
    }
    if (best != nullptr) {
      p.lead_seconds = cluster.first_time - best->timestamp;
      p.warn_message_id = best->message_id;
      ++result.with_precursor;
      leads.push_back(static_cast<double>(*p.lead_seconds));
    } else {
      ++result.without_precursor;
    }
    result.per_interruption.push_back(std::move(p));
  }

  const std::uint64_t total = result.with_precursor + result.without_precursor;
  result.coverage =
      total > 0 ? static_cast<double>(result.with_precursor) /
                      static_cast<double>(total)
                : 0.0;
  if (!leads.empty()) {
    result.median_lead_seconds = stats::median(leads);
    result.mean_lead_seconds = stats::mean(leads);
  }
  return result;
}

}  // namespace failmine::core
