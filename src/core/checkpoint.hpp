// failmine/core/checkpoint.hpp
//
// Checkpoint-interval advisor.
//
// The operational payoff of a failure characterization: given the measured
// system hazard (interruptions per node-second) and a job's size, how
// often should it checkpoint? We estimate the hazard directly from the
// job log (system kills / node-seconds of exposure — the same quantity the
// study's MTTI rests on), then apply the Young/Daly optimum
//     tau* = sqrt(2 * delta * M) - delta        (first order)
// with Daly's higher-order refinement for short-MTBF regimes, and report
// the expected waste fraction (checkpoint overhead + lost recompute).

#pragma once

#include <cstdint>
#include <vector>

#include "joblog/job.hpp"
#include "topology/machine.hpp"

namespace failmine::core {

/// Hazard estimated from a job log.
struct HazardEstimate {
  double per_node_second = 0.0;   ///< interruption rate per node-second
  std::uint64_t system_kills = 0;
  double node_seconds = 0.0;      ///< total exposure observed
};

/// MLE of the per-node-second interruption hazard (kills / exposure).
/// Throws DomainError on an empty log; a log with zero kills returns a
/// zero hazard (callers should treat recommendations as "no checkpoints
/// needed" in that case).
HazardEstimate estimate_hazard(const joblog::JobLog& jobs);

/// Young's first-order optimum: sqrt(2 * delta * mtbf) (valid for
/// delta << mtbf). Throws DomainError for non-positive inputs.
double young_interval(double checkpoint_seconds, double mtbf_seconds);

/// Daly's higher-order optimum, accurate also when delta / mtbf is not
/// small; falls back to mtbf when checkpointing cannot pay off.
double daly_interval(double checkpoint_seconds, double mtbf_seconds);

/// Expected fraction of wall-clock time wasted when checkpointing every
/// `interval` seconds (writing costs `checkpoint_seconds`) on a machine
/// with exponential interruptions of mean `mtbf_seconds`:
/// overhead delta/tau plus expected lost recompute (tau+delta)/(2 M).
double waste_fraction(double interval, double checkpoint_seconds,
                      double mtbf_seconds);

/// One recommendation row (per allocation size).
struct CheckpointAdvice {
  std::uint32_t nodes = 0;
  double job_mtbf_hours = 0.0;       ///< 1 / (hazard * nodes), in hours
  double optimal_interval_hours = 0.0;
  double waste_at_optimum = 0.0;     ///< expected waste fraction
  double waste_without = 0.0;        ///< expected loss fraction for a
                                     ///< walltime-length run w/o checkpoints
};

/// Recommends checkpoint intervals for every allocation size present in
/// the log, assuming a checkpoint write of `checkpoint_seconds` (a full
/// memory dump through the I/O subsystem). `reference_runtime_seconds`
/// sizes the no-checkpoint comparison (default: 6 h).
std::vector<CheckpointAdvice> recommend_checkpoints(
    const joblog::JobLog& jobs, double checkpoint_seconds = 600.0,
    double reference_runtime_seconds = 6.0 * 3600.0);

}  // namespace failmine::core
