// failmine/core/lead_time.hpp
//
// WARN -> FATAL lead-time analysis.
//
// Real RAS streams show precursor warnings (correctable-error thresholds,
// link retrains, voltage deviations) in the minutes before a fatal fault;
// the paper's discussion of error propagation motivates asking how much
// warning time an online monitor would have had. For every filtered
// interruption we look back a bounded horizon for the nearest WARN on the
// same hardware neighbourhood and report the lead-time distribution and
// the fraction of interruptions that had any precursor at all.

#pragma once

#include <optional>
#include <vector>

#include "core/event_filter.hpp"
#include "raslog/event.hpp"

namespace failmine::core {

struct LeadTimeConfig {
  /// How far back to search for a precursor.
  std::int64_t horizon_seconds = 7200;
  /// Spatial closeness required between WARN and interruption (same as
  /// the similarity filter's radius semantics).
  topology::Level spatial_level = topology::Level::kMidplane;
};

/// Precursor finding for one interruption.
struct Precursor {
  util::UnixSeconds interruption_time = 0;
  std::optional<std::int64_t> lead_seconds;  ///< nullopt: no precursor found
  std::string warn_message_id;               ///< empty when none
};

/// Aggregate results.
struct LeadTimeResult {
  std::vector<Precursor> per_interruption;  ///< one per cluster, time order
  std::uint64_t with_precursor = 0;
  std::uint64_t without_precursor = 0;
  double coverage = 0.0;            ///< with / total
  double median_lead_seconds = 0.0; ///< over covered interruptions
  double mean_lead_seconds = 0.0;
};

/// Searches the WARN stream of `log` for precursors of each filtered
/// interruption in `clusters`.
LeadTimeResult warning_lead_times(const raslog::RasLog& log,
                                  const std::vector<EventCluster>& clusters,
                                  const LeadTimeConfig& config = {});

}  // namespace failmine::core
