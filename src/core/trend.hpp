// failmine/core/trend.hpp
//
// Reliability trend over the system lifetime.
//
// The study covers the *entire* 2001-day production life of Mira, which
// invites the aging question: did the interruption rate drift over the
// years? We bin filtered interruptions (and failed jobs) per month and
// fit a linear trend; a slope indistinguishable from zero means the
// system's reliability was stationary over its life.

#pragma once

#include <cstdint>
#include <vector>

#include "core/event_filter.hpp"
#include "joblog/job.hpp"
#include "stats/correlation.hpp"
#include "util/time.hpp"

namespace failmine::core {

/// Monthly reliability series with a fitted linear trend.
struct TrendResult {
  std::vector<std::uint64_t> monthly_counts;
  stats::LinearFit fit;            ///< count = intercept + slope * month
  double mean_per_month = 0.0;
  /// Slope as a fraction of the mean monthly count (relative drift per
  /// month); near zero = stationary.
  double relative_slope = 0.0;
};

/// Trend of filtered interruptions per calendar month from `origin`.
/// Months after the last interruption but inside [origin, end) count as
/// zero. Requires >= 3 months of span.
TrendResult interruption_trend(const std::vector<EventCluster>& clusters,
                               util::UnixSeconds origin, util::UnixSeconds end);

/// Trend of failed-job terminations per month.
TrendResult failure_trend(const joblog::JobLog& jobs, util::UnixSeconds origin,
                          util::UnixSeconds end);

}  // namespace failmine::core
