#include "core/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/error.hpp"

namespace failmine::core {

HazardEstimate estimate_hazard(const joblog::JobLog& jobs) {
  if (jobs.empty()) throw failmine::DomainError("estimate_hazard requires jobs");
  HazardEstimate h;
  for (const auto& job : jobs.jobs()) {
    h.node_seconds += static_cast<double>(job.nodes_used) *
                      static_cast<double>(job.runtime_seconds());
    if (joblog::is_system_caused(job.exit_class)) ++h.system_kills;
  }
  if (h.node_seconds <= 0)
    throw failmine::DomainError("job log has no exposure");
  h.per_node_second = static_cast<double>(h.system_kills) / h.node_seconds;
  return h;
}

double young_interval(double checkpoint_seconds, double mtbf_seconds) {
  if (checkpoint_seconds <= 0 || mtbf_seconds <= 0)
    throw failmine::DomainError("checkpoint/MTBF must be positive");
  return std::sqrt(2.0 * checkpoint_seconds * mtbf_seconds);
}

double daly_interval(double checkpoint_seconds, double mtbf_seconds) {
  if (checkpoint_seconds <= 0 || mtbf_seconds <= 0)
    throw failmine::DomainError("checkpoint/MTBF must be positive");
  // Daly (2006): for delta < 2M,
  //   tau* = sqrt(2 delta M) [1 + 1/3 sqrt(delta/2M) + (1/9)(delta/2M)] - delta
  // and tau* = M when delta >= 2M (checkpointing cannot pay off).
  if (checkpoint_seconds >= 2.0 * mtbf_seconds) return mtbf_seconds;
  const double ratio = checkpoint_seconds / (2.0 * mtbf_seconds);
  const double base = std::sqrt(2.0 * checkpoint_seconds * mtbf_seconds);
  const double tau =
      base * (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) - checkpoint_seconds;
  return std::max(tau, checkpoint_seconds);
}

double waste_fraction(double interval, double checkpoint_seconds,
                      double mtbf_seconds) {
  if (interval <= 0 || checkpoint_seconds <= 0 || mtbf_seconds <= 0)
    throw failmine::DomainError("waste_fraction requires positive inputs");
  // First-order model: per segment of useful work `interval` we pay
  // `checkpoint_seconds` of overhead, and on average half a segment
  // (plus its checkpoint) is lost per interruption.
  const double overhead = checkpoint_seconds / (interval + checkpoint_seconds);
  const double lost = (interval + checkpoint_seconds) / (2.0 * mtbf_seconds);
  return std::min(1.0, overhead + lost);
}

std::vector<CheckpointAdvice> recommend_checkpoints(
    const joblog::JobLog& jobs, double checkpoint_seconds,
    double reference_runtime_seconds) {
  if (checkpoint_seconds <= 0 || reference_runtime_seconds <= 0)
    throw failmine::DomainError("recommend_checkpoints requires positive inputs");
  const HazardEstimate hazard = estimate_hazard(jobs);

  std::map<std::uint32_t, std::uint64_t> sizes;
  for (const auto& job : jobs.jobs()) ++sizes[job.nodes_used];

  std::vector<CheckpointAdvice> advice;
  for (const auto& [nodes, count] : sizes) {
    CheckpointAdvice a;
    a.nodes = nodes;
    if (hazard.per_node_second <= 0) {
      // No observed system kills: effectively infinite MTBF.
      a.job_mtbf_hours = std::numeric_limits<double>::infinity();
      a.optimal_interval_hours = std::numeric_limits<double>::infinity();
      a.waste_at_optimum = 0.0;
      a.waste_without = 0.0;
      advice.push_back(a);
      continue;
    }
    const double mtbf =
        1.0 / (hazard.per_node_second * static_cast<double>(nodes));
    const double tau = daly_interval(checkpoint_seconds, mtbf);
    a.job_mtbf_hours = mtbf / 3600.0;
    a.optimal_interval_hours = tau / 3600.0;
    a.waste_at_optimum = waste_fraction(tau, checkpoint_seconds, mtbf);
    // Without checkpoints, an interruption at time t < T loses t; the
    // expected loss fraction for a run of length T is
    // P(interrupt) * E[t | t < T] / T; with exponential interruptions
    // this is 1 - (M/T)(1 - e^{-T/M}).
    const double T = reference_runtime_seconds;
    a.waste_without = 1.0 - (mtbf / T) * (1.0 - std::exp(-T / mtbf));
    advice.push_back(a);
  }
  return advice;
}

}  // namespace failmine::core
