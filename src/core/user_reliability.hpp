// failmine/core/user_reliability.hpp
//
// User-perceived reliability.
//
// The paper frames its analysis as understanding "the system's reliability
// from the perspective of jobs and users": the machine-level MTTI is not
// what a user experiences — a user running wide, long jobs intersects far
// more hardware-time and is interrupted far more often than a user running
// small jobs on the same machine. This module computes per-user
// system-interruption counts, the user-perceived mean time between
// system kills, and the core-hours each user lost to them.

#pragma once

#include <cstdint>
#include <vector>

#include "joblog/job.hpp"
#include "topology/machine.hpp"
#include "util/time.hpp"

namespace failmine::core {

/// One user's experienced reliability.
struct UserReliability {
  std::uint32_t user_id = 0;
  std::uint64_t jobs = 0;
  std::uint64_t system_kills = 0;      ///< jobs lost to system causes
  double core_hours = 0.0;             ///< total consumption
  double lost_core_hours = 0.0;        ///< consumption of system-killed jobs
  double node_days = 0.0;              ///< total node-time exposure
  /// Node-days of exposure per system kill; exposure/0 kills = +inf.
  double node_days_between_kills = 0.0;

  double loss_fraction() const {
    return core_hours > 0 ? lost_core_hours / core_hours : 0.0;
  }
};

/// Aggregate view used by the extension experiment (X05).
struct UserReliabilityStudy {
  std::vector<UserReliability> users;   ///< sorted by exposure, descending
  std::uint64_t users_with_kills = 0;
  double total_lost_core_hours = 0.0;
  /// Machine-wide exposure per system kill (node-days / kills).
  double machine_node_days_per_kill = 0.0;
  /// Spearman correlation between per-user exposure and kill count —
  /// the "interruptions follow exposure" claim, per user.
  double exposure_kill_correlation = 0.0;
};

/// Computes per-user reliability from the job log alone (system kills are
/// identified by the exit class, which the joint analysis assigns).
UserReliabilityStudy user_reliability_study(
    const joblog::JobLog& jobs, const topology::MachineConfig& machine);

}  // namespace failmine::core
