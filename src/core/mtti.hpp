// failmine/core/mtti.hpp
//
// Mean time to interruption / between failures, computed over filtered
// interruptions (takeaway T-E: MTTI ~= 3.5 days on Mira after
// similarity-based filtering).

#pragma once

#include <vector>

#include "core/event_filter.hpp"
#include "util/time.hpp"

namespace failmine::core {

/// MTTI/MTBF summary over an observation window.
struct MttiResult {
  std::uint64_t interruptions = 0;
  double span_days = 0.0;
  double mtti_days = 0.0;           ///< span / interruptions
  double mean_interval_days = 0.0;  ///< mean of consecutive gaps
  double median_interval_days = 0.0;
  std::vector<double> intervals_days;  ///< consecutive interruption gaps
};

/// Computes MTTI from filtered clusters over [begin, end).
MttiResult compute_mtti(const std::vector<EventCluster>& clusters,
                        util::UnixSeconds begin, util::UnixSeconds end);

/// Convenience: filter then compute, returning both.
struct FilteredMtti {
  FilterResult filter;
  MttiResult mtti;
};

FilteredMtti filtered_mtti(const raslog::RasLog& log, const FilterConfig& config,
                           util::UnixSeconds begin, util::UnixSeconds end);

/// Unfiltered baseline: MTTI over raw events of the filter's severity
/// (what a naive count would claim).
MttiResult raw_mtti(const raslog::RasLog& log, raslog::Severity severity,
                    util::UnixSeconds begin, util::UnixSeconds end);

}  // namespace failmine::core
