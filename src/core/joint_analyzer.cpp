#include "core/joint_analyzer.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "stats/correlation.hpp"
#include "util/error.hpp"

namespace failmine::core {

JointAnalyzer::JointAnalyzer(const joblog::JobLog& jobs,
                             const tasklog::TaskLog& tasks,
                             const raslog::RasLog& ras, const iolog::IoLog& io,
                             const topology::MachineConfig& machine)
    : jobs_(jobs), tasks_(tasks), ras_(ras), io_(io), machine_(machine) {
  if (jobs.empty()) throw failmine::DomainError("JointAnalyzer needs jobs");
  // One pass over the job log fixes the observation window for good; the
  // accessors used to rescan the whole log on every call, which turned
  // per-job loops calling them quadratic.
  util::UnixSeconds lo = jobs_.jobs().front().submit_time;
  util::UnixSeconds hi = jobs_.jobs().front().end_time;
  for (const auto& j : jobs_.jobs()) {
    lo = std::min(lo, j.submit_time);
    hi = std::max(hi, j.end_time);
  }
  if (!ras_.empty()) {
    lo = std::min(lo, ras_.events().front().timestamp);
    hi = std::max(hi, ras_.events().back().timestamp + 1);
  }
  window_begin_ = lo;
  window_end_ = hi;
}

DatasetSummary JointAnalyzer::dataset_summary() const {
  FAILMINE_TRACE_SPAN("e01.dataset_summary");
  DatasetSummary s;
  s.span_days = static_cast<double>(window_end() - window_begin()) /
                static_cast<double>(util::kSecondsPerDay);
  s.jobs = jobs_.size();
  s.tasks = tasks_.size();
  s.ras_events = ras_.size();
  s.ras_by_severity = ras_.severity_counts();
  s.io_records = io_.size();
  s.total_core_hours = jobs_.total_core_hours(machine_);
  return s;
}

ExitBreakdown exit_breakdown(const std::vector<joblog::JobRecord>& jobs,
                             const topology::MachineConfig& machine) {
  ExitBreakdown b;
  b.total_jobs = jobs.size();
  std::map<joblog::ExitClass, ExitBreakdownRow> rows;
  std::uint64_t user_caused = 0;
  std::uint64_t system_caused = 0;
  for (const auto& job : jobs) {
    ExitBreakdownRow& row = rows[job.exit_class];
    row.exit_class = job.exit_class;
    ++row.jobs;
    row.core_hours += job.core_hours(machine);
    if (job.failed()) {
      ++b.total_failures;
      if (joblog::is_user_caused(job.exit_class)) ++user_caused;
      if (joblog::is_system_caused(job.exit_class)) ++system_caused;
    }
  }
  for (joblog::ExitClass cls : joblog::kAllExitClasses) {
    const auto it = rows.find(cls);
    if (it == rows.end()) continue;
    ExitBreakdownRow row = it->second;
    row.share_of_jobs =
        static_cast<double>(row.jobs) / static_cast<double>(b.total_jobs);
    row.share_of_failures =
        joblog::is_failure(cls) && b.total_failures > 0
            ? static_cast<double>(row.jobs) /
                  static_cast<double>(b.total_failures)
            : 0.0;
    b.rows.push_back(row);
  }
  if (b.total_failures > 0) {
    b.user_caused_share = static_cast<double>(user_caused) /
                          static_cast<double>(b.total_failures);
    b.system_caused_share = static_cast<double>(system_caused) /
                            static_cast<double>(b.total_failures);
  }
  return b;
}

ExitBreakdown JointAnalyzer::exit_breakdown() const {
  FAILMINE_TRACE_SPAN("e02.exit_breakdown");
  return core::exit_breakdown(jobs_.jobs(), machine_);
}

std::vector<ClassFitRow> JointAnalyzer::runtime_distribution_study(
    std::size_t min_sample) const {
  FAILMINE_TRACE_SPAN("e05.distfit_runtime");
  return fit_by_exit_class(jobs_, min_sample);
}

FilteredMtti JointAnalyzer::interruption_analysis(
    const FilterConfig& config) const {
  FAILMINE_TRACE_SPAN("e08.mtti");
  return filtered_mtti(ras_, config, window_begin(), window_end());
}

ClassFitRow JointAnalyzer::interruption_interval_fit(
    const FilterConfig& config) const {
  FAILMINE_TRACE_SPAN("e13.interruption_fit");
  const FilteredMtti fm = interruption_analysis(config);
  if (fm.mtti.intervals_days.size() < 2)
    throw failmine::DomainError(
        "not enough interruptions to fit an interval distribution");
  return fit_sample(fm.mtti.intervals_days);
}

JointAnalyzer::RasCorrelations JointAnalyzer::ras_user_correlations() const {
  FAILMINE_TRACE_SPAN("e10.ras_correlation");
  const auto input = user_event_correlation_input(jobs_, ras_, machine_);
  RasCorrelations c;
  c.users = input.user_ids.size();
  if (c.users < 3) throw failmine::DomainError("too few users to correlate");
  // A tiny trace can leave a column constant (e.g. no attributed FATALs at
  // all); report 0 correlation for that column instead of failing the
  // whole joint analysis.
  auto safe_spearman = [](const std::vector<double>& x,
                          const std::vector<double>& y) {
    try {
      return stats::spearman(x, y);
    } catch (const failmine::DomainError&) {
      return 0.0;
    }
  };
  c.events_vs_core_hours =
      safe_spearman(input.events_per_user, input.core_hours_per_user);
  c.events_vs_jobs = safe_spearman(input.events_per_user, input.jobs_per_user);
  c.fatals_vs_core_hours =
      safe_spearman(input.fatal_events_per_user, input.core_hours_per_user);
  return c;
}

}  // namespace failmine::core
