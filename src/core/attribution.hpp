// failmine/core/attribution.hpp
//
// Joint job <-> RAS-event attribution.
//
// The central instrument of the paper's joint analysis: given a located,
// timestamped RAS event, find the job whose partition covered that
// hardware at that moment. Built once per dataset, the index answers
// point queries in O(log n) by keeping, per global midplane, the
// time-sorted list of job occupations.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "topology/machine.hpp"

namespace failmine::core {

/// Per-job attribution counters.
struct JobEventStats {
  std::uint64_t job_id = 0;
  std::uint64_t info_events = 0;
  std::uint64_t warn_events = 0;
  std::uint64_t fatal_events = 0;

  std::uint64_t total() const { return info_events + warn_events + fatal_events; }
};

/// Spatio-temporal index from hardware locations to running jobs.
class AttributionIndex {
 public:
  AttributionIndex(const joblog::JobLog& jobs,
                   const topology::MachineConfig& machine);

  /// The job whose partition covered `event.location` at `event.timestamp`
  /// (latest-starting match if allocations overlap). Events located above
  /// midplane level (rack-level) match any job on either midplane of the
  /// rack. Returns nullopt for events on idle hardware.
  std::optional<std::uint64_t> attribute(const raslog::RasEvent& event) const;

  /// Attributes every event of the log; returns per-job counters for jobs
  /// with at least one attributed event.
  std::vector<JobEventStats> attribute_all(const raslog::RasLog& log) const;

 private:
  struct Occupation {
    util::UnixSeconds start;
    util::UnixSeconds end;
    std::uint64_t job_id;
  };

  std::optional<std::uint64_t> lookup_midplane(int global_midplane,
                                               util::UnixSeconds t) const;

  // By value, for the same lifetime-safety reason as JointAnalyzer.
  topology::MachineConfig machine_;
  /// occupations_[midplane] sorted by start time.
  std::vector<std::vector<Occupation>> occupations_;
};

/// Per-user aggregation of attributed events joined with core-hours —
/// the inputs to the paper's RAS/user and RAS/core-hour correlations
/// (experiment E10).
struct UserEventCorrelationInput {
  std::vector<double> events_per_user;       ///< attributed events
  std::vector<double> fatal_events_per_user; ///< attributed FATALs
  std::vector<double> core_hours_per_user;
  std::vector<double> jobs_per_user;
  std::vector<std::uint32_t> user_ids;       ///< row labels
};

UserEventCorrelationInput user_event_correlation_input(
    const joblog::JobLog& jobs, const raslog::RasLog& ras,
    const topology::MachineConfig& machine);

}  // namespace failmine::core
