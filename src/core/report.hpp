// failmine/core/report.hpp
//
// Machine-checkable takeaway report.
//
// The paper distills its analysis into 22 takeaways; the abstract commits
// to a handful of quantitative ones (T-A .. T-F in DESIGN.md). This module
// evaluates each reproducible headline claim against a dataset and reports
// measured-vs-expected with a tolerance verdict — the integration tests
// and EXPERIMENTS.md are generated from the same structure, so the
// documentation can never drift from what the code measures.

#pragma once

#include <string>
#include <vector>

#include "core/joint_analyzer.hpp"

namespace failmine::core {

/// One evaluated takeaway.
struct Takeaway {
  std::string id;           ///< "T-A", "T-B1", ...
  std::string claim;        ///< human-readable statement
  double expected = 0.0;    ///< paper value (scaled where applicable)
  double measured = 0.0;
  double rel_tolerance = 0.0;
  bool pass = false;
  std::string unit;
};

/// Expected values are the paper's; counts scale with `trace_scale`
/// (1.0 = paper-sized trace).
struct ReportConfig {
  double trace_scale = 1.0;
  FilterConfig filter;  ///< similarity-filter settings for the MTTI claims
};

/// Evaluates every reproducible headline claim.
std::vector<Takeaway> evaluate_takeaways(const JointAnalyzer& analyzer,
                                         const ReportConfig& config);

/// Renders the report as an aligned text table.
std::string format_report(const std::vector<Takeaway>& takeaways);

/// Renders the report as a JSON array (for dashboards / CI artifacts).
std::string format_report_json(const std::vector<Takeaway>& takeaways);

/// True if every takeaway passed.
bool all_pass(const std::vector<Takeaway>& takeaways);

}  // namespace failmine::core
