#include "core/mtbf.hpp"

#include "util/error.hpp"

namespace failmine::core {

namespace {

double window_days(util::UnixSeconds begin, util::UnixSeconds end) {
  if (end <= begin) throw failmine::DomainError("empty observation window");
  return static_cast<double>(end - begin) /
         static_cast<double>(util::kSecondsPerDay);
}

template <typename Key, typename KeyOf>
std::map<Key, MtbfRow> mtbf_grouped(const std::vector<EventCluster>& clusters,
                                    util::UnixSeconds begin,
                                    util::UnixSeconds end, KeyOf key_of) {
  const double span = window_days(begin, end);
  std::map<Key, MtbfRow> rows;
  std::uint64_t total = 0;
  for (const auto& c : clusters) {
    if (c.first_time < begin || c.first_time >= end) continue;
    ++rows[key_of(c)].interruptions;
    ++total;
  }
  for (auto& [key, row] : rows) {
    row.mtbf_days = row.interruptions > 0
                        ? span / static_cast<double>(row.interruptions)
                        : span;
    row.share = total > 0 ? static_cast<double>(row.interruptions) /
                                static_cast<double>(total)
                          : 0.0;
  }
  return rows;
}

}  // namespace

std::map<raslog::Component, MtbfRow> mtbf_by_component(
    const std::vector<EventCluster>& clusters, util::UnixSeconds begin,
    util::UnixSeconds end) {
  return mtbf_grouped<raslog::Component>(
      clusters, begin, end,
      [](const EventCluster& c) { return c.representative.component; });
}

std::map<raslog::Category, MtbfRow> mtbf_by_category(
    const std::vector<EventCluster>& clusters, util::UnixSeconds begin,
    util::UnixSeconds end) {
  return mtbf_grouped<raslog::Category>(
      clusters, begin, end,
      [](const EventCluster& c) { return c.representative.category; });
}

AvailabilityResult estimate_availability(
    const std::vector<EventCluster>& clusters,
    const topology::MachineConfig& machine, util::UnixSeconds begin,
    util::UnixSeconds end, const AvailabilityConfig& config) {
  if (config.mean_repair_hours < 0)
    throw failmine::DomainError("repair time must be non-negative");
  if (config.default_blast_midplanes < 1)
    throw failmine::DomainError("blast radius must be >= 1 midplane");

  AvailabilityResult r;
  r.span_days = window_days(begin, end);
  const int total_midplanes = machine.racks() * machine.midplanes_per_rack;
  r.total_midplane_hours =
      static_cast<double>(total_midplanes) * r.span_days * 24.0;

  for (const auto& c : clusters) {
    if (c.first_time < begin || c.first_time >= end) continue;
    ++r.interruptions;
    int blast = config.default_blast_midplanes;
    if (c.representative.location.level() < topology::Level::kMidplane) {
      // Rack-level fault: both midplanes of the rack go down.
      blast = machine.midplanes_per_rack;
    }
    r.lost_midplane_hours +=
        static_cast<double>(blast) * config.mean_repair_hours;
  }
  r.availability = r.total_midplane_hours > 0
                       ? 1.0 - r.lost_midplane_hours / r.total_midplane_hours
                       : 1.0;
  return r;
}

}  // namespace failmine::core
