#include "core/report.hpp"

#include <cmath>
#include <cstdio>

#include "analysis/io_behavior.hpp"
#include "analysis/locality.hpp"
#include "analysis/structure.hpp"
#include "analysis/temporal.hpp"
#include "analysis/user_stats.hpp"
#include "obs/trace.hpp"

namespace failmine::core {

namespace {

Takeaway make(std::string id, std::string claim, double expected,
              double measured, double rel_tol, std::string unit) {
  Takeaway t;
  t.id = std::move(id);
  t.claim = std::move(claim);
  t.expected = expected;
  t.measured = measured;
  t.rel_tolerance = rel_tol;
  t.unit = std::move(unit);
  const double denom = std::max(std::fabs(expected), 1e-12);
  t.pass = std::fabs(measured - expected) / denom <= rel_tol;
  return t;
}

/// For claims of the form "metric exceeds threshold".
Takeaway make_at_least(std::string id, std::string claim, double threshold,
                       double measured, std::string unit) {
  Takeaway t;
  t.id = std::move(id);
  t.claim = std::move(claim);
  t.expected = threshold;
  t.measured = measured;
  t.rel_tolerance = 0.0;
  t.unit = std::move(unit);
  t.pass = measured >= threshold;
  return t;
}

}  // namespace

std::vector<Takeaway> evaluate_takeaways(const JointAnalyzer& analyzer,
                                         const ReportConfig& config) {
  FAILMINE_TRACE_SPAN("report.evaluate_takeaways");
  std::vector<Takeaway> out;
  const double s = config.trace_scale;

  // T-F: observation span and total core-hours.
  const auto summary = analyzer.dataset_summary();
  out.push_back(make("T-F1", "observation span is 2001 days", 2001.0,
                     summary.span_days, 0.02, "days"));
  out.push_back(make("T-F2", "total consumption is 32.44 B core-hours",
                     32.44e9 * s, summary.total_core_hours, 0.25, "core-h"));

  // T-A: failure count and cause split.
  const auto breakdown = analyzer.exit_breakdown();
  out.push_back(make("T-A1", "job-scheduling log reports 99,245 failures",
                     99245.0 * s, static_cast<double>(breakdown.total_failures),
                     0.15, "jobs"));
  out.push_back(make("T-A2", "99.4 % of job failures are user-caused", 0.994,
                     breakdown.user_caused_share, 0.01, "fraction"));

  // T-B: concentration on users and monotone structure correlations.
  const auto user_stats =
      analysis::per_user_stats(analyzer.jobs(), analyzer.machine());
  const auto conc =
      analysis::concentration(user_stats, analysis::GroupMetric::kFailures);
  out.push_back(make_at_least(
      "T-B1", "failures concentrate on few users (top-10 share >= 25 %)",
      0.25, conc.top10_share, "fraction"));
  const auto by_scale = analysis::failure_rate_by_scale(analyzer.jobs());
  out.push_back(make_at_least(
      "T-B2", "failure rate rises with job scale (Spearman >= 0.5)", 0.5,
      analysis::bucket_trend(by_scale), "rho"));
  const auto by_tasks =
      analysis::failure_rate_by_task_count(analyzer.jobs());
  out.push_back(make_at_least(
      "T-B3", "failure rate rises with task count (Spearman >= 0.5)", 0.5,
      analysis::bucket_trend(by_tasks), "rho"));

  // T-C: per-class families. The paper reports Weibull / Pareto / inverse
  // Gaussian / Erlang-or-exponential depending on the error type; we check
  // that each expected family wins its class under the KS criterion.
  // Family identity is judged by BIC: on finite samples the KS distance
  // lets flexible 2-parameter families (log-logistic) edge out the true
  // one by luck, while the likelihood ranking is far stabler.
  const auto study = analyzer.runtime_distribution_study();
  auto family_of = [&](joblog::ExitClass cls) -> std::string {
    for (const auto& row : study)
      if (row.exit_class == cls)
        return distfit::family_name(row.fits[row.best_by_bic].family);
    return "<insufficient sample>";
  };
  auto family_check = [&](std::string id, joblog::ExitClass cls,
                          std::initializer_list<const char*> accepted,
                          const char* label) {
    const std::string got = family_of(cls);
    bool ok = false;
    for (const char* name : accepted) ok = ok || got == name;
    Takeaway t;
    t.id = std::move(id);
    t.claim = std::string(label) + " best fit is " + got;
    t.expected = 1.0;
    t.measured = ok ? 1.0 : 0.0;
    t.pass = ok;
    t.unit = "match";
    return t;
  };
  out.push_back(family_check("T-C1", joblog::ExitClass::kUserAppError,
                             {"weibull", "gamma"}, "app-error runtime"));
  out.push_back(family_check("T-C2", joblog::ExitClass::kUserKill,
                             {"pareto"}, "user-kill runtime"));
  out.push_back(family_check("T-C3", joblog::ExitClass::kUserConfigError,
                             {"erlang", "gamma", "exponential"},
                             "config-error runtime"));
  {
    // System classes are fitted jointly (each alone can be a small sample).
    std::vector<double> sys_sample;
    for (joblog::ExitClass cls :
         {joblog::ExitClass::kSystemHardware, joblog::ExitClass::kSystemSoftware,
          joblog::ExitClass::kSystemIo}) {
      const auto part = runtime_sample(analyzer.jobs(), cls);
      sys_sample.insert(sys_sample.end(), part.begin(), part.end());
    }
    Takeaway t;
    t.id = "T-C4";
    t.expected = 1.0;
    t.unit = "match";
    if (sys_sample.size() >= 30) {
      const auto row = fit_sample(std::move(sys_sample));
      const std::string got =
          distfit::family_name(row.fits[row.best_by_bic].family);
      t.claim = "system-failure runtime best fit is " + got;
      t.measured = (got == "inverse_gaussian" || got == "lognormal") ? 1.0 : 0.0;
    } else {
      t.claim = "system-failure runtime best fit (insufficient sample)";
      t.measured = 0.0;
    }
    t.pass = t.measured == 1.0;
    out.push_back(t);
  }

  // T-D: locality and RAS/user correlation.
  const auto locality = analysis::locality_summary(
      analyzer.ras(), analyzer.machine(), topology::Level::kNodeBoard);
  out.push_back(make_at_least(
      "T-D1", "fatal events show strong locality (board Gini >= 0.5)", 0.5,
      locality.gini, "gini"));
  const auto corr = analyzer.ras_user_correlations();
  out.push_back(make_at_least(
      "T-D2", "attributed events correlate with core-hours (rho >= 0.5)", 0.5,
      corr.events_vs_core_hours, "rho"));

  // T-E: filtered MTTI.
  const auto fm = analyzer.interruption_analysis(config.filter);
  // At reduced scale there are proportionally fewer interruptions over the
  // same 2001 days, so the measured MTTI is 1/s times the paper's; rescale
  // back before comparing.
  out.push_back(make("T-E1", "filtered MTTI is about 3.5 days", 3.5,
                     fm.mtti.mtti_days * s, 0.25, "days"));
  out.push_back(make_at_least(
      "T-E2", "similarity filtering collapses fatal bursts (>= 5x)", 5.0,
      fm.filter.reduction_factor(), "x"));

  // --- Supplementary checkable takeaways (the paper frames its findings
  // as 22 takeaways; the seven below complete the reproducible set). ---

  // T-A3: the overall job failure rate (99,245 failures over the whole
  // scheduling log) is ~1 in 5 jobs.
  out.push_back(make(
      "T-A3", "about one in five jobs fails", 0.1984,
      breakdown.total_jobs > 0
          ? static_cast<double>(breakdown.total_failures) /
                static_cast<double>(breakdown.total_jobs)
          : 0.0,
      0.10, "fraction"));

  // T-B4: project-level concentration mirrors the user-level one.
  const auto project_stats =
      analysis::per_project_stats(analyzer.jobs(), analyzer.machine());
  const auto project_conc =
      analysis::concentration(project_stats, analysis::GroupMetric::kFailures);
  out.push_back(make_at_least(
      "T-B4", "failures concentrate on few projects (Gini >= 0.5)", 0.5,
      project_conc.gini, "gini"));

  // T-B5: failed jobs are truncated early, so low-core-hour buckets are
  // failure-enriched (a *negative* trend over core-hour buckets).
  const auto by_ch = analysis::failure_rate_by_core_hours(
      analyzer.jobs(), analyzer.machine(), 8);
  Takeaway tb5;
  tb5.id = "T-B5";
  tb5.claim = "low-core-hour buckets are failure-enriched (trend < 0)";
  tb5.expected = 0.0;
  tb5.measured = analysis::bucket_trend(by_ch);
  tb5.unit = "rho";
  tb5.pass = tb5.measured < 0.0;
  out.push_back(tb5);

  // T-C5: intervals between filtered interruptions are memoryless —
  // Erlang/exponential-like (one of the families the abstract names).
  {
    Takeaway t;
    t.id = "T-C5";
    t.expected = 1.0;
    t.unit = "match";
    if (fm.mtti.intervals_days.size() >= 20) {
      const auto row = fit_sample(fm.mtti.intervals_days);
      const std::string got =
          distfit::family_name(row.fits[row.best_by_bic].family);
      t.claim = "interruption intervals best fit is " + got;
      t.measured = (got == "erlang" || got == "exponential" ||
                    got == "gamma" || got == "weibull")
                       ? 1.0
                       : 0.0;
    } else {
      t.claim = "interruption intervals best fit (insufficient sample)";
      t.measured = 0.0;
    }
    t.pass = t.measured == 1.0;
    out.push_back(t);
  }

  // T-D3: fatal locality holds one level up, at midplane granularity.
  const auto mid_locality = analysis::locality_summary(
      analyzer.ras(), analyzer.machine(), topology::Level::kMidplane);
  out.push_back(make_at_least(
      "T-D3", "hottest 10% of midplanes absorb >= 15% of fatals",
      0.15, mid_locality.top10pct_share, "fraction"));

  // T-E3: naive raw-FATAL counting overstates interruptions badly.
  const auto raw = raw_mtti(analyzer.ras(), raslog::Severity::kFatal,
                            analyzer.window_begin(), analyzer.window_end());
  out.push_back(make_at_least(
      "T-E3", "raw FATAL counting understates MTTI by >= 5x", 5.0,
      raw.mtti_days > 0 ? fm.mtti.mtti_days / raw.mtti_days : 0.0, "x"));

  // T-S1: failed jobs lose their final checkpoint, writing less than
  // successful jobs at the median (I/O-log join).
  const auto io = analysis::compare_io(analyzer.jobs(), analyzer.io());
  Takeaway ts1;
  ts1.id = "T-S1";
  ts1.claim = "failed jobs write less than successful ones (ratio < 0.8)";
  ts1.expected = 0.8;
  ts1.measured = io.write_median_ratio();
  ts1.unit = "ratio";
  ts1.pass = ts1.measured > 0.0 && ts1.measured < 0.8;
  out.push_back(ts1);

  return out;
}

std::string format_report(const std::vector<Takeaway>& takeaways) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-5s %-58s %14s %14s %6s\n", "id",
                "claim", "expected", "measured", "pass");
  out += line;
  out += std::string(101, '-') + "\n";
  for (const auto& t : takeaways) {
    std::snprintf(line, sizeof(line), "%-5s %-58s %14.4g %14.4g %6s\n",
                  t.id.c_str(), t.claim.c_str(), t.expected, t.measured,
                  t.pass ? "PASS" : "FAIL");
    out += line;
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format_report_json(const std::vector<Takeaway>& takeaways) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < takeaways.size(); ++i) {
    const Takeaway& t = takeaways[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "  {\"id\": \"%s\", \"claim\": \"%s\", \"expected\": %.10g, "
                  "\"measured\": %.10g, \"tolerance\": %.10g, "
                  "\"unit\": \"%s\", \"pass\": %s}%s\n",
                  json_escape(t.id).c_str(), json_escape(t.claim).c_str(),
                  t.expected, t.measured, t.rel_tolerance,
                  json_escape(t.unit).c_str(), t.pass ? "true" : "false",
                  i + 1 < takeaways.size() ? "," : "");
    out += line;
  }
  out += "]\n";
  return out;
}

bool all_pass(const std::vector<Takeaway>& takeaways) {
  for (const auto& t : takeaways)
    if (!t.pass) return false;
  return true;
}

}  // namespace failmine::core
