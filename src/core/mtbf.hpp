// failmine/core/mtbf.hpp
//
// MTBF by component/category and system availability estimation.
//
// Extends the MTTI analysis (E08) along two axes the paper's RAS
// discussion motivates:
//  * per-component / per-category mean time between (filtered) failures —
//    which subsystems drive the interruption rate;
//  * an availability estimate: each interruption takes the affected
//    partition down for a repair interval, so availability follows from
//    the filtered interruption stream, a mean-time-to-repair assumption
//    and the blast radius of each interruption.

#pragma once

#include <map>
#include <vector>

#include "core/event_filter.hpp"
#include "raslog/category.hpp"
#include "raslog/component.hpp"
#include "topology/machine.hpp"

namespace failmine::core {

/// Interruption counts and MTBF for one grouping key.
struct MtbfRow {
  std::uint64_t interruptions = 0;
  double mtbf_days = 0.0;  ///< span / interruptions (censored = span)
  double share = 0.0;      ///< fraction of all interruptions
};

/// MTBF of filtered interruptions grouped by the representative event's
/// component.
std::map<raslog::Component, MtbfRow> mtbf_by_component(
    const std::vector<EventCluster>& clusters, util::UnixSeconds begin,
    util::UnixSeconds end);

/// Same, grouped by functional category.
std::map<raslog::Category, MtbfRow> mtbf_by_category(
    const std::vector<EventCluster>& clusters, util::UnixSeconds begin,
    util::UnixSeconds end);

/// Availability model inputs.
struct AvailabilityConfig {
  double mean_repair_hours = 4.0;  ///< MTTR per interruption
  /// Midplanes taken down per interruption when the event cannot be
  /// localized below rack level (rack = 2 midplanes on BG/Q).
  int default_blast_midplanes = 1;
};

/// System availability over the window.
struct AvailabilityResult {
  double span_days = 0.0;
  std::uint64_t interruptions = 0;
  double lost_midplane_hours = 0.0;   ///< sum of blast x repair time
  double total_midplane_hours = 0.0;  ///< machine capacity over the window
  double availability = 1.0;          ///< 1 - lost/total
};

/// Estimates availability from filtered interruptions: each cluster takes
/// its origin's midplane(s) down for the configured repair time. Rack- or
/// shallower-located interruptions take the whole rack down.
AvailabilityResult estimate_availability(
    const std::vector<EventCluster>& clusters,
    const topology::MachineConfig& machine, util::UnixSeconds begin,
    util::UnixSeconds end, const AvailabilityConfig& config = {});

}  // namespace failmine::core
