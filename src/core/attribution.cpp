#include "core/attribution.hpp"

#include <algorithm>

#include "topology/partition.hpp"
#include "util/error.hpp"

namespace failmine::core {

using topology::Level;
using util::UnixSeconds;

AttributionIndex::AttributionIndex(const joblog::JobLog& jobs,
                                   const topology::MachineConfig& machine)
    : machine_(machine) {
  const int total_mids = machine.racks() * machine.midplanes_per_rack;
  occupations_.resize(static_cast<std::size_t>(total_mids));
  for (const auto& job : jobs.jobs()) {
    const auto partition = job.partition(machine);
    for (int m = partition.first_midplane();
         m < partition.first_midplane() + partition.midplane_count(); ++m) {
      occupations_[static_cast<std::size_t>(m)].push_back(
          Occupation{job.start_time, job.end_time, job.job_id});
    }
  }
  for (auto& lane : occupations_)
    std::sort(lane.begin(), lane.end(),
              [](const Occupation& a, const Occupation& b) {
                return a.start < b.start;
              });
}

std::optional<std::uint64_t> AttributionIndex::lookup_midplane(
    int global_midplane, UnixSeconds t) const {
  if (global_midplane < 0 ||
      static_cast<std::size_t>(global_midplane) >= occupations_.size())
    throw failmine::DomainError("midplane index out of machine");
  const auto& lane = occupations_[static_cast<std::size_t>(global_midplane)];
  // Candidates start at or before t; walk back from the last such start.
  // Allocations on one midplane rarely nest deeply, so the walk is short.
  auto it = std::upper_bound(
      lane.begin(), lane.end(), t,
      [](UnixSeconds value, const Occupation& o) { return value < o.start; });
  const int kMaxWalk = 64;
  int walked = 0;
  while (it != lane.begin() && walked++ < kMaxWalk) {
    --it;
    if (it->start <= t && t <= it->end) return it->job_id;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> AttributionIndex::attribute(
    const raslog::RasEvent& event) const {
  if (event.location.level() >= Level::kMidplane) {
    const int mid =
        topology::Partition::global_midplane_index(event.location, machine_);
    return lookup_midplane(mid, event.timestamp);
  }
  // Rack-level event: any job on either midplane of the rack is affected;
  // report the first match.
  const int rack = event.location.rack_index(machine_);
  for (int m = 0; m < machine_.midplanes_per_rack; ++m) {
    const auto hit =
        lookup_midplane(rack * machine_.midplanes_per_rack + m, event.timestamp);
    if (hit) return hit;
  }
  return std::nullopt;
}

std::vector<JobEventStats> AttributionIndex::attribute_all(
    const raslog::RasLog& log) const {
  std::unordered_map<std::uint64_t, JobEventStats> by_job;
  for (const auto& event : log.events()) {
    const auto job = attribute(event);
    if (!job) continue;
    JobEventStats& s = by_job[*job];
    s.job_id = *job;
    switch (event.severity) {
      case raslog::Severity::kInfo: ++s.info_events; break;
      case raslog::Severity::kWarn: ++s.warn_events; break;
      case raslog::Severity::kFatal: ++s.fatal_events; break;
    }
  }
  std::vector<JobEventStats> out;
  out.reserve(by_job.size());
  for (const auto& [id, s] : by_job) out.push_back(s);
  std::sort(out.begin(), out.end(),
            [](const JobEventStats& a, const JobEventStats& b) {
              return a.job_id < b.job_id;
            });
  return out;
}

UserEventCorrelationInput user_event_correlation_input(
    const joblog::JobLog& jobs, const raslog::RasLog& ras,
    const topology::MachineConfig& machine) {
  const AttributionIndex index(jobs, machine);
  const auto per_job = index.attribute_all(ras);

  std::unordered_map<std::uint32_t, std::size_t> row_of_user;
  UserEventCorrelationInput input;
  auto row_for = [&](std::uint32_t user) {
    const auto it = row_of_user.find(user);
    if (it != row_of_user.end()) return it->second;
    const std::size_t row = input.user_ids.size();
    row_of_user.emplace(user, row);
    input.user_ids.push_back(user);
    input.events_per_user.push_back(0.0);
    input.fatal_events_per_user.push_back(0.0);
    input.core_hours_per_user.push_back(0.0);
    input.jobs_per_user.push_back(0.0);
    return row;
  };

  for (const auto& job : jobs.jobs()) {
    const std::size_t row = row_for(job.user_id);
    input.core_hours_per_user[row] += job.core_hours(machine);
    input.jobs_per_user[row] += 1.0;
  }
  for (const auto& s : per_job) {
    const auto& job = jobs.by_id(s.job_id);
    const std::size_t row = row_for(job.user_id);
    input.events_per_user[row] += static_cast<double>(s.total());
    input.fatal_events_per_user[row] += static_cast<double>(s.fatal_events);
  }
  return input;
}

}  // namespace failmine::core
