// failmine/core/distfit_study.hpp
//
// The per-exit-class distribution-fitting study (takeaway T-C,
// experiments E05 and E13): which parametric family best describes the
// execution length of failed jobs, per error type, and the intervals
// between filtered system interruptions.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "distfit/selection.hpp"
#include "joblog/job.hpp"

namespace failmine::core {

/// One row of the study: an exit class, its sample, and the ranked fits.
struct ClassFitRow {
  joblog::ExitClass exit_class{};
  std::size_t sample_size = 0;
  std::vector<distfit::FitResult> fits;  ///< all candidate fits
  std::size_t best_by_ks = 0;            ///< index into fits
  std::size_t best_by_aic = 0;
  std::size_t best_by_bic = 0;
};

/// Extracts the execution-length sample (seconds) of failed jobs with the
/// given exit class.
std::vector<double> runtime_sample(const joblog::JobLog& log,
                                   joblog::ExitClass exit_class);

/// Runs the fitting study over every failure class with at least
/// `min_sample` observations. Walltime-limit jobs are excluded by default:
/// their lengths are deterministic (a point mass no continuous family
/// should be asked to fit).
std::vector<ClassFitRow> fit_by_exit_class(
    const joblog::JobLog& log, std::size_t min_sample = 50,
    bool include_walltime = false,
    const std::vector<distfit::Family>& families = distfit::all_families());

/// Fits candidate families to a plain sample (used for interruption
/// intervals in E13) and ranks them.
ClassFitRow fit_sample(std::vector<double> sample,
                       const std::vector<distfit::Family>& families =
                           distfit::all_families());

/// Name of the winning family of a row under the KS criterion.
std::string best_family_name(const ClassFitRow& row);

}  // namespace failmine::core
