#include "core/distfit_study.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::core {

std::vector<double> runtime_sample(const joblog::JobLog& log,
                                   joblog::ExitClass exit_class) {
  std::vector<double> sample;
  for (const auto& job : log.jobs())
    if (job.exit_class == exit_class)
      sample.push_back(static_cast<double>(job.runtime_seconds()));
  return sample;
}

ClassFitRow fit_sample(std::vector<double> sample,
                       const std::vector<distfit::Family>& families) {
  FAILMINE_TRACE_SPAN("distfit.fit_sample");
  if (sample.size() < 2)
    throw failmine::DomainError("fit_sample requires >= 2 observations");
  ClassFitRow row;
  row.sample_size = sample.size();
  row.fits = distfit::fit_all(sample, families);
  if (row.fits.empty())
    throw failmine::DomainError("no family could fit the sample");
  row.best_by_ks =
      distfit::best_fit_index(row.fits, distfit::Criterion::kKsDistance);
  row.best_by_aic = distfit::best_fit_index(row.fits, distfit::Criterion::kAic);
  row.best_by_bic = distfit::best_fit_index(row.fits, distfit::Criterion::kBic);
  return row;
}

std::vector<ClassFitRow> fit_by_exit_class(
    const joblog::JobLog& log, std::size_t min_sample, bool include_walltime,
    const std::vector<distfit::Family>& families) {
  std::vector<ClassFitRow> rows;
  for (joblog::ExitClass cls : joblog::kAllExitClasses) {
    if (!joblog::is_failure(cls)) continue;
    if (!include_walltime && cls == joblog::ExitClass::kWalltimeLimit) continue;
    auto sample = runtime_sample(log, cls);
    if (sample.size() < min_sample) continue;
    ClassFitRow row = fit_sample(std::move(sample), families);
    row.exit_class = cls;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string best_family_name(const ClassFitRow& row) {
  return distfit::family_name(row.fits.at(row.best_by_ks).family);
}

}  // namespace failmine::core
