#include "core/mtti.hpp"

#include "obs/trace.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::core {

namespace {

MttiResult from_times(const std::vector<util::UnixSeconds>& times,
                      util::UnixSeconds begin, util::UnixSeconds end) {
  if (end <= begin) throw failmine::DomainError("empty observation window");
  MttiResult r;
  r.span_days = static_cast<double>(end - begin) /
                static_cast<double>(util::kSecondsPerDay);
  r.interruptions = times.size();
  if (times.empty()) {
    r.mtti_days = r.span_days;  // censored: no interruption observed
    return r;
  }
  r.mtti_days = r.span_days / static_cast<double>(times.size());
  for (std::size_t i = 1; i < times.size(); ++i)
    r.intervals_days.push_back(static_cast<double>(times[i] - times[i - 1]) /
                               static_cast<double>(util::kSecondsPerDay));
  if (!r.intervals_days.empty()) {
    r.mean_interval_days = stats::mean(r.intervals_days);
    r.median_interval_days = stats::median(r.intervals_days);
  }
  return r;
}

}  // namespace

MttiResult compute_mtti(const std::vector<EventCluster>& clusters,
                        util::UnixSeconds begin, util::UnixSeconds end) {
  FAILMINE_TRACE_SPAN("mtti.compute");
  std::vector<util::UnixSeconds> times;
  times.reserve(clusters.size());
  for (const auto& c : clusters)
    if (c.first_time >= begin && c.first_time < end) times.push_back(c.first_time);
  return from_times(times, begin, end);
}

FilteredMtti filtered_mtti(const raslog::RasLog& log, const FilterConfig& config,
                           util::UnixSeconds begin, util::UnixSeconds end) {
  FilteredMtti out;
  out.filter = filter_events(log, config);
  out.mtti = compute_mtti(out.filter.clusters, begin, end);
  return out;
}

MttiResult raw_mtti(const raslog::RasLog& log, raslog::Severity severity,
                    util::UnixSeconds begin, util::UnixSeconds end) {
  std::vector<util::UnixSeconds> times;
  for (const auto& e : log.events())
    if (e.severity == severity && e.timestamp >= begin && e.timestamp < end)
      times.push_back(e.timestamp);
  return from_times(times, begin, end);
}

}  // namespace failmine::core
