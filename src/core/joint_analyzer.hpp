// failmine/core/joint_analyzer.hpp
//
// Facade binding the four log sources into the paper's joint analyses.
//
// A JointAnalyzer borrows the four logs (it does not own them) and exposes
// each headline analysis as one method. The bench binaries and the
// takeaway report are thin formatters over this class.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/attribution.hpp"
#include "core/distfit_study.hpp"
#include "core/event_filter.hpp"
#include "core/mtti.hpp"
#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "tasklog/task.hpp"
#include "topology/machine.hpp"
#include "util/time.hpp"

namespace failmine::core {

/// Exit-status breakdown (experiment E02).
struct ExitBreakdownRow {
  joblog::ExitClass exit_class{};
  std::uint64_t jobs = 0;
  double core_hours = 0.0;
  double share_of_jobs = 0.0;      ///< fraction of all jobs
  double share_of_failures = 0.0;  ///< fraction of failed jobs (0 for success)
};

struct ExitBreakdown {
  std::vector<ExitBreakdownRow> rows;  ///< one per class, catalog order
  std::uint64_t total_jobs = 0;
  std::uint64_t total_failures = 0;
  double user_caused_share = 0.0;    ///< of failures
  double system_caused_share = 0.0;  ///< of failures
};

/// E02 over a plain record vector (time order): what
/// JointAnalyzer::exit_breakdown computes, without needing the JobLog
/// container — shared by the row-path benches and the columnar parity
/// tests.
ExitBreakdown exit_breakdown(const std::vector<joblog::JobRecord>& jobs,
                             const topology::MachineConfig& machine);

/// Dataset summary (experiment E01).
struct DatasetSummary {
  double span_days = 0.0;
  std::uint64_t jobs = 0;
  std::uint64_t tasks = 0;
  std::uint64_t ras_events = 0;
  std::array<std::uint64_t, 3> ras_by_severity{};  ///< INFO, WARN, FATAL
  std::uint64_t io_records = 0;
  double total_core_hours = 0.0;
};

class JointAnalyzer {
 public:
  /// Borrows all four logs; they must outlive the analyzer.
  JointAnalyzer(const joblog::JobLog& jobs, const tasklog::TaskLog& tasks,
                const raslog::RasLog& ras, const iolog::IoLog& io,
                const topology::MachineConfig& machine);

  /// E01: totals across the four sources.
  DatasetSummary dataset_summary() const;

  /// E02: jobs and core-hours per exit class, with cause attribution.
  ExitBreakdown exit_breakdown() const;

  /// E05: distribution fitting per failure class.
  std::vector<ClassFitRow> runtime_distribution_study(
      std::size_t min_sample = 50) const;

  /// E07/E08: similarity filtering + MTTI over the RAS log.
  FilteredMtti interruption_analysis(const FilterConfig& config) const;

  /// E13: distribution fit of intervals between filtered interruptions.
  ClassFitRow interruption_interval_fit(const FilterConfig& config) const;

  /// E10: correlations of attributed RAS events with per-user activity.
  struct RasCorrelations {
    double events_vs_core_hours = 0.0;    ///< Spearman
    double events_vs_jobs = 0.0;          ///< Spearman
    double fatals_vs_core_hours = 0.0;    ///< Spearman
    std::size_t users = 0;
  };
  RasCorrelations ras_user_correlations() const;

  /// Observation window inferred from the job and RAS logs. Computed once
  /// at construction (the logs are immutable for the analyzer's lifetime)
  /// — these are O(1) accessors, safe to call in per-job loops.
  util::UnixSeconds window_begin() const { return window_begin_; }
  util::UnixSeconds window_end() const { return window_end_; }

  const topology::MachineConfig& machine() const { return machine_; }
  const joblog::JobLog& jobs() const { return jobs_; }
  const tasklog::TaskLog& tasks() const { return tasks_; }
  const raslog::RasLog& ras() const { return ras_; }
  const iolog::IoLog& io() const { return io_; }

 private:
  const joblog::JobLog& jobs_;
  const tasklog::TaskLog& tasks_;
  const raslog::RasLog& ras_;
  const iolog::IoLog& io_;
  // By value: MachineConfig is a handful of ints, and holding a reference
  // would silently dangle when callers pass MachineConfig::mira() inline.
  topology::MachineConfig machine_;
  util::UnixSeconds window_begin_ = 0;
  util::UnixSeconds window_end_ = 0;
};

}  // namespace failmine::core
