// failmine/core/event_filter.hpp
//
// Similarity-based RAS event filtering (the paper's method behind
// takeaway T-E).
//
// Raw RAS logs over-report: one physical fault emits a burst of FATAL
// records across neighbouring hardware within seconds-to-minutes. Naively
// counting raw FATALs therefore wildly underestimates MTTI. The paper
// filters events by *similarity* — two events are considered the same
// interruption if they are close in time AND close in space (and
// optionally share a message id) — and computes MTTI over the filtered
// stream (~3.5 days on Mira).
//
// We implement this as a single-pass greedy clustering over the
// time-sorted event stream: an event joins the most recent open cluster
// it is similar to, otherwise it opens a new cluster. The per-stage
// reduction (temporal-only, spatial-only, both) is exposed so E07 can
// report the pipeline shrinkage and E14 can sweep the parameters.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "raslog/event.hpp"
#include "topology/location.hpp"

namespace failmine::core {

/// Similarity definition used by the filter.
struct FilterConfig {
  /// Events within this many seconds of a cluster's *latest* member can
  /// join it (sliding window, as in the paper's filtering).
  std::int64_t window_seconds = 900;

  /// Spatial radius: events must share an ancestor at (or deeper than)
  /// this level. kRack = coarse (whole rack counts as "same place");
  /// kComputeCard = strict.
  topology::Level spatial_level = topology::Level::kMidplane;

  /// If true, only events with identical message ids are merged.
  bool require_same_message = false;

  /// Severity the filter operates on (FATAL for interruption analysis).
  raslog::Severity severity = raslog::Severity::kFatal;
};

/// One filtered cluster = one deduplicated interruption.
struct EventCluster {
  raslog::RasEvent representative;        ///< earliest member
  std::uint64_t member_count = 0;
  util::UnixSeconds first_time = 0;
  util::UnixSeconds last_time = 0;
  std::optional<std::uint64_t> job_id;    ///< any member's job association
};

/// Result of a filtering run.
struct FilterResult {
  std::vector<EventCluster> clusters;     ///< time order of first member
  std::uint64_t input_events = 0;         ///< events of the selected severity

  double reduction_factor() const {
    return clusters.empty() ? 0.0
                            : static_cast<double>(input_events) /
                                  static_cast<double>(clusters.size());
  }
};

/// Runs the similarity filter over `log`.
FilterResult filter_events(const raslog::RasLog& log, const FilterConfig& config);

/// True if the two events are "similar" under `config` (time distance is
/// the caller's responsibility; this checks space + message only).
bool spatially_similar(const raslog::RasEvent& a, const raslog::RasEvent& b,
                       const FilterConfig& config);

/// Pipeline view for E07: stage-by-stage cluster counts with the same
/// window, loosening one criterion at a time.
struct PipelineCounts {
  std::uint64_t raw = 0;             ///< events of the selected severity
  std::uint64_t temporal_only = 0;   ///< clusters if only time is used
  std::uint64_t spatial_only = 0;    ///< clusters if only space is used
  std::uint64_t combined = 0;        ///< clusters under the full filter
};

PipelineCounts filtering_pipeline(const raslog::RasLog& log,
                                  const FilterConfig& config);

}  // namespace failmine::core
