// failmine/ingest/loader.hpp
//
// Parallel, zero-copy batch CSV loader shared by the four log libraries.
//
// load_csv mmaps the file (ingest/mapped_file.hpp), splits the body into
// ~threads×4 record-aligned chunks (ingest/chunk.hpp) and parses the
// chunks concurrently: each worker walks its chunk with a CsvCursor,
// splits records through the allocation-free util::split_csv_fields
// fast path, and appends parsed records to a chunk-local vector. Workers
// touch no shared state while parsing — row counters accumulate as local
// deltas and are flushed to the obs metrics registry exactly once per
// load, and WARN diagnostics for rejected rows are deferred to the merge
// so they carry correct global row numbers. Results are concatenated in
// chunk order, which makes the output — records, metric deltas, WARN
// records and the thrown error on malformed input — byte-for-byte
// identical to the serial util::CsvReader path.
//
// Determinism guarantee: for any thread count and either I/O engine
// (mmap or the read() fallback), load_csv returns exactly the record
// sequence the serial reader produces, performs the same parse.* counter
// increments, and on malformed input throws the same exception after the
// same WARN log record. The only nondeterminism parallelism introduces —
// which worker parses which chunk first — is erased by the ordered merge
// and the deferred diagnostics.
//
// Instrumentation: ingest.bytes_mapped / ingest.chunks counters, an
// "ingest.load" span per file and an "ingest.chunk" span per chunk (on
// the worker thread, so chunk parsing shows up attributed in /profile
// flamegraphs).
//
// load_csv_fold generalizes the per-row action: each chunk folds its
// rows into a caller-supplied accumulator (the columnar builders use
// this to parse straight into column vectors with no intermediate
// record vector), while load_csv itself is the Acc = std::vector<Record>
// instance of the fold.

#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/chunk.hpp"
#include "ingest/mapped_file.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace failmine::ingest {

/// Knobs for one batch load.
struct LoadOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency(). Setting 1
  /// (with engine kAuto) selects today's serial std::getline reader in
  /// the log libraries' read_csv; the ingest engine itself also runs
  /// fine at 1 thread (no pool is spawned).
  unsigned threads = 0;

  /// Chunks per worker thread; >1 smooths imbalance between chunks.
  std::size_t chunks_per_thread = 4;

  /// Floor on the chunk size; small files get proportionally fewer
  /// chunks. Tests lower this to exercise multi-chunk plans on tiny
  /// inputs.
  std::size_t min_chunk_bytes = kDefaultMinChunkBytes;

  /// Bypass mmap and buffer through read(2) even for regular files.
  bool force_stream = false;
};

/// How a log library's read_csv picks its implementation.
enum class Engine {
  kAuto,    ///< serial reader iff threads == 1, ingest engine otherwise
  kSerial,  ///< always the line-oriented util::CsvReader path
  kMapped,  ///< always the ingest engine, whatever the thread count
};

/// Resolves LoadOptions::threads (0 → hardware concurrency, min 1).
unsigned effective_threads(const LoadOptions& options);

/// True when `read_csv(options, engine)` should take the legacy serial
/// path: an explicit Engine::kSerial, or kAuto with exactly one thread.
bool use_serial_reader(const LoadOptions& options, Engine engine);

namespace detail {

/// First rejected row of one chunk, captured on the worker and replayed
/// (WARN + throw) at merge time with its global row number.
struct RowFailure {
  enum class Kind {
    kQuote,   ///< unterminated quote (CSV level)
    kArity,   ///< field count != header arity (CSV level)
    kRecord,  ///< the record parser threw failmine::Error
  };
  Kind kind = Kind::kRecord;
  std::size_t local_row = 0;  ///< 1-based among the chunk's records
  std::size_t fields = 0;     ///< parsed field count (kArity only)
  std::string what;           ///< error text (kRecord WARN field)
  std::exception_ptr exception;  ///< rethrown verbatim (kQuote/kRecord)
};

/// Per-chunk bookkeeping accumulated worker-locally.
struct ChunkStats {
  std::size_t rows = 0;  ///< records attempted, including a failed one
  bool failed = false;
  RowFailure failure;
};

/// Mapped file + validated header + chunk plan for one load.
struct LoadPlan {
  MappedFile file;
  std::vector<std::string> header;
  std::string_view body;  ///< everything after the header line
  std::vector<Chunk> chunks;

  explicit LoadPlan(MappedFile f) : file(std::move(f)) {}
};

/// Opens `path`, validates the header against `expected_header` (the
/// mismatch error says "unexpected <header_label> header in <path>",
/// matching the serial loaders) and plans the chunks. Flushes the
/// ingest.bytes_mapped / ingest.chunks counters.
LoadPlan open_and_plan(const std::string& path,
                       const std::vector<std::string>& expected_header,
                       const std::string& header_label,
                       const LoadOptions& options);

/// Runs fn(0..n_tasks) on up to `threads` workers (inline when either is
/// 1). Exceptions escaping `fn` are rethrown on the caller.
void run_parallel(std::size_t n_tasks, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

/// Success-path metric flush: parse.lines_total and `records_counter`
/// advance by `rows` in one add each.
void flush_success(const char* records_counter, std::size_t rows);

/// Failure path: flushes the counters the serial reader would have
/// touched before dying (lines_total/records up to the bad row, one
/// lines_rejected), emits the serial reader's WARN record verbatim, and
/// throws — the stored exception for quote/record failures, a
/// reconstructed ParseError (with the global row number) for arity
/// failures.
[[noreturn]] void report_failure(const std::string& path, const char* source,
                                 const char* records_counter,
                                 std::size_t header_arity,
                                 std::size_t rows_before,
                                 const RowFailure& failure);

}  // namespace detail

/// Generalized parallel batch load: instead of collecting records into
/// per-chunk vectors, every chunk folds its rows into an accumulator
/// produced by `make_acc()` (a callable `Acc()`), through `row_fn(acc,
/// fields)` — invoked concurrently across chunks but sequentially, in
/// file order, within one chunk. `row_fn` must be thread-safe across
/// distinct accumulators and should throw failmine::Error for invalid
/// rows. Returns the accumulators in chunk (= file) order.
///
/// This is load_csv with the "what happens per row" swapped out: header
/// validation, chunk planning, the allocation-free field splitter, the
/// first-failed-chunk semantics, metric flushes and diagnostics are
/// shared code, so a fold caller (e.g. the columnar builders) inherits
/// the same determinism guarantee — on malformed input the same
/// exception is thrown after the same WARN record, and no accumulators
/// are returned.
template <class Acc, class MakeAcc, class RowFn>
std::vector<Acc> load_csv_fold(const std::string& path,
                               const std::vector<std::string>& expected_header,
                               const char* source,
                               const std::string& header_label,
                               const char* records_counter, MakeAcc&& make_acc,
                               RowFn&& row_fn, const LoadOptions& options = {}) {
  FAILMINE_TRACE_SPAN("ingest.load");
  detail::LoadPlan plan =
      detail::open_and_plan(path, expected_header, header_label, options);
  const std::size_t arity = plan.header.size();

  std::vector<Acc> results;
  results.reserve(plan.chunks.size());
  for (std::size_t ci = 0; ci < plan.chunks.size(); ++ci)
    results.push_back(make_acc());
  std::vector<detail::ChunkStats> stats(plan.chunks.size());
  // Index of the first chunk that rejected a row: chunks after it would
  // never have been read by the serial reader, so workers past it stop
  // early (their partial output is discarded by the merge anyway).
  std::atomic<std::size_t> first_failed{plan.chunks.size()};

  detail::run_parallel(
      plan.chunks.size(), effective_threads(options), [&](std::size_t ci) {
        FAILMINE_TRACE_SPAN("ingest.chunk");
        const Chunk& chunk = plan.chunks[ci];
        Acc& out = results[ci];
        detail::ChunkStats& st = stats[ci];
        util::FieldVec fields;
        CsvCursor cursor(chunk.data);
        std::string_view record;
        while (cursor.next(record)) {
          if (ci > first_failed.load(std::memory_order_relaxed)) return;
          ++st.rows;
          try {
            util::split_csv_fields(record, fields);
          } catch (const failmine::ParseError&) {
            st.failed = true;
            st.failure.kind = detail::RowFailure::Kind::kQuote;
            st.failure.local_row = st.rows;
            st.failure.exception = std::current_exception();
            break;
          }
          if (fields.size() != arity) {
            st.failed = true;
            st.failure.kind = detail::RowFailure::Kind::kArity;
            st.failure.local_row = st.rows;
            st.failure.fields = fields.size();
            break;
          }
          try {
            row_fn(out, fields);
          } catch (const failmine::Error& e) {
            st.failed = true;
            st.failure.kind = detail::RowFailure::Kind::kRecord;
            st.failure.local_row = st.rows;
            st.failure.what = e.what();
            st.failure.exception = std::current_exception();
            break;
          }
        }
        if (st.failed) {
          std::size_t expected = first_failed.load(std::memory_order_relaxed);
          while (ci < expected &&
                 !first_failed.compare_exchange_weak(
                     expected, ci, std::memory_order_relaxed)) {
          }
        }
      });

  // The first failed chunk (in file order) wins; everything before it
  // contributed rows, everything after it is discarded — exactly the
  // serial reader's view of the file.
  std::size_t rows_before = 0;
  for (std::size_t ci = 0; ci < plan.chunks.size(); ++ci) {
    if (stats[ci].failed)
      detail::report_failure(path, source, records_counter, arity,
                             rows_before, stats[ci].failure);
    rows_before += stats[ci].rows;
  }
  detail::flush_success(records_counter, rows_before);
  return results;
}

/// Parallel batch load: parses every record of `path` through `parse`
/// (a callable `Record(const util::FieldVec&)` invoked concurrently from
/// worker threads; it must be thread-safe and should throw
/// failmine::Error for invalid records) and returns the records in file
/// order. See the file comment for the determinism guarantee.
template <class Record, class ParseFn>
std::vector<Record> load_csv(const std::string& path,
                             const std::vector<std::string>& expected_header,
                             const char* source, const std::string& header_label,
                             const char* records_counter, ParseFn&& parse,
                             const LoadOptions& options = {}) {
  std::vector<std::vector<Record>> parts = load_csv_fold<std::vector<Record>>(
      path, expected_header, source, header_label, records_counter,
      [] { return std::vector<Record>(); },
      [&parse](std::vector<Record>& out, const util::FieldVec& fields) {
        out.push_back(parse(fields));
      },
      options);

  // Merge in chunk order.
  std::size_t total_records = 0;
  for (const auto& part : parts) total_records += part.size();
  std::vector<Record> merged;
  merged.reserve(total_records);
  for (auto& part : parts) {
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
    part.clear();
    part.shrink_to_fit();
  }
  return merged;
}

}  // namespace failmine::ingest
