#include "ingest/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace failmine::ingest {

namespace {

/// Drains `fd` into `buffer` (used for pipes and as the mmap fallback).
void read_all(int fd, const std::string& path, std::vector<char>& buffer) {
  constexpr std::size_t kReadChunk = 1 << 20;
  for (;;) {
    const std::size_t old_size = buffer.size();
    buffer.resize(old_size + kReadChunk);
    const ssize_t n = ::read(fd, buffer.data() + old_size, kReadChunk);
    if (n < 0) {
      if (errno == EINTR) {
        buffer.resize(old_size);
        continue;
      }
      throw IoError("read failed: " + path + ": " + std::strerror(errno));
    }
    buffer.resize(old_size + static_cast<std::size_t>(n));
    if (n == 0) return;
  }
}

}  // namespace

MappedFile::MappedFile(const std::string& path, bool force_stream) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw IoError("cannot open for reading: " + path);

  struct stat st {};
  const bool regular = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
  const auto file_size = regular ? static_cast<std::size_t>(st.st_size) : 0;

  if (regular && !force_stream && file_size > 0) {
    void* mapping =
        ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping != MAP_FAILED) {
      // Advisory only: ignore failures, the mapping still works.
      ::madvise(mapping, file_size, MADV_SEQUENTIAL);
      ::close(fd);
      data_ = mapping;
      size_ = file_size;
      mapped_ = true;
      return;
    }
    // Fall through to the read() path on any mmap failure.
  }

  try {
    if (regular) buffer_.reserve(file_size);
    read_all(fd, path, buffer_);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  data_ = buffer_.data();
  size_ = buffer_.size();
  mapped_ = false;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() noexcept {
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<void*>(data_), size_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  buffer_.clear();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      buffer_(std::move(other.buffer_)) {
  if (!mapped_) data_ = buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  buffer_ = std::move(other.buffer_);
  if (!mapped_) data_ = buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

}  // namespace failmine::ingest
