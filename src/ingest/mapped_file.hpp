// failmine/ingest/mapped_file.hpp
//
// Read-only whole-file view with zero-copy mmap fast path.
//
// Regular files are mapped with mmap(PROT_READ, MAP_PRIVATE) and advised
// MADV_SEQUENTIAL, so the kernel readahead streams the log through the
// page cache while the parser walks it without a single user-space copy.
// Inputs that cannot be mapped — pipes, sockets, other non-regular files,
// or any mmap failure — fall back to buffering the whole stream through
// read(2), so every path that accepts a file name also accepts
// /dev/stdin or a process substitution. Either way the caller sees one
// contiguous string_view.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace failmine::ingest {

class MappedFile {
 public:
  /// Opens `path`. `force_stream` skips mmap and takes the read(2)
  /// fallback even for regular files (used by tests and the bench to
  /// exercise the fallback). Throws IoError when the file cannot be
  /// opened or read.
  explicit MappedFile(const std::string& path, bool force_stream = false);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The whole file. Valid for the lifetime of this object.
  std::string_view view() const {
    if (size_ == 0) return {};
    return {static_cast<const char*>(data_), size_};
  }
  std::size_t size() const { return size_; }

  /// True when view() is an mmap'd region, false when it was buffered
  /// through the read() fallback.
  bool mapped() const { return mapped_; }

 private:
  void reset() noexcept;

  const void* data_ = nullptr;  ///< mapping or buffer_.data()
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<char> buffer_;  ///< backing store for the fallback path
};

}  // namespace failmine::ingest
