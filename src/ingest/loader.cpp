#include "ingest/loader.hpp"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace failmine::ingest {

unsigned effective_threads(const LoadOptions& options) {
  if (options.threads != 0) return options.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool use_serial_reader(const LoadOptions& options, Engine engine) {
  if (engine == Engine::kSerial) return true;
  if (engine == Engine::kMapped) return false;
  return options.threads == 1;
}

namespace detail {

LoadPlan open_and_plan(const std::string& path,
                       const std::vector<std::string>& expected_header,
                       const std::string& header_label,
                       const LoadOptions& options) {
  LoadPlan plan{MappedFile(path, options.force_stream)};
  const std::string_view content = plan.file.view();
  if (content.empty()) throw ParseError("empty CSV file: " + path);

  // Header line: same parse as the serial reader (getline + CR strip +
  // split_csv_line), expressed through the cursor.
  CsvCursor header_cursor(content);
  std::string_view header_line;
  header_cursor.next(header_line);
  // A header whose quotes never close swallows the whole file in one
  // "record"; split_csv_line then reports the unterminated quote, like
  // the serial reader does for the first line.
  plan.header = util::split_csv_line(header_line);
  if (plan.header != expected_header)
    throw ParseError("unexpected " + header_label + " header in " + path);

  const std::size_t body_offset =
      header_line.data() != nullptr
          ? static_cast<std::size_t>(header_line.data() - content.data()) +
                header_line.size()
          : 0;
  // Skip the header's line terminator ("\n" or "\r\n").
  std::size_t skip = body_offset;
  if (skip < content.size() && content[skip] == '\r') ++skip;
  if (skip < content.size() && content[skip] == '\n') ++skip;
  plan.body = content.substr(skip);

  plan.chunks = plan_chunks(
      plan.body,
      effective_threads(options) *
          std::max<std::size_t>(1, options.chunks_per_thread),
      std::max<std::size_t>(1, options.min_chunk_bytes));

  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("ingest.bytes_mapped").add(content.size());
  registry.counter("ingest.chunks").add(plan.chunks.size());
  return plan;
}

void run_parallel(std::size_t n_tasks, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n_tasks == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n_tasks));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n_tasks; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  // First catastrophic exception wins; parse failures never get here
  // (the loader captures them in ChunkStats).
  std::exception_ptr error;
  std::atomic<bool> has_error{false};
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_tasks) return;
      if (has_error.load(std::memory_order_acquire)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        has_error.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

void flush_success(const char* records_counter, std::size_t rows) {
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("parse.lines_total").add(rows);
  registry.counter(records_counter).add(rows);
}

[[noreturn]] void report_failure(const std::string& path, const char* source,
                                 const char* records_counter,
                                 std::size_t header_arity,
                                 std::size_t rows_before,
                                 const RowFailure& failure) {
  const std::size_t global_row = rows_before + failure.local_row;
  // The serial reader counts the bad row in lines_total (it was read),
  // leaves it out of the per-source records counter (it never parsed),
  // and counts one rejection.
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("parse.lines_total").add(global_row);
  registry.counter(records_counter).add(global_row - 1);
  registry.counter("parse.lines_rejected").add();

  // Rows are reported 1-based counting the header: data row r is file
  // row r + 1 — the numbering CsvReader and the serial loaders use.
  const std::size_t reported_row = global_row + 1;
  switch (failure.kind) {
    case RowFailure::Kind::kQuote:
      obs::logger().warn("parse.line_rejected",
                         {{"file", path},
                          {"row", reported_row},
                          {"reason", "unterminated quote"}});
      std::rethrow_exception(failure.exception);
    case RowFailure::Kind::kArity:
      obs::logger().warn("parse.line_rejected",
                         {{"file", path},
                          {"row", reported_row},
                          {"reason", "arity mismatch"},
                          {"fields", failure.fields},
                          {"expected", header_arity}});
      throw ParseError("row " + std::to_string(reported_row) + " of " + path +
                       " has " + std::to_string(failure.fields) +
                       " fields, expected " + std::to_string(header_arity));
    case RowFailure::Kind::kRecord:
      obs::logger().warn("parse.record_rejected",
                         {{"source", source},
                          {"file", path},
                          {"row", reported_row},
                          {"error", failure.what}});
      std::rethrow_exception(failure.exception);
  }
  // Unreachable; keeps -Wreturn-type quiet for exotic enum values.
  throw ParseError("corrupt RowFailure in " + path);
}

}  // namespace detail
}  // namespace failmine::ingest
