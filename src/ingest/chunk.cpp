#include "ingest/chunk.hpp"

#include <algorithm>

namespace failmine::ingest {

std::vector<Chunk> plan_chunks(std::string_view data,
                               std::size_t target_chunks,
                               std::size_t min_chunk_bytes) {
  std::vector<Chunk> chunks;
  if (data.empty()) return chunks;
  if (target_chunks < 1) target_chunks = 1;
  if (min_chunk_bytes < 1) min_chunk_bytes = 1;
  // Small inputs get fewer chunks: a chunk below min_chunk_bytes costs
  // more in thread scheduling than its parallelism wins.
  target_chunks =
      std::min(target_chunks, std::max<std::size_t>(1, data.size() / min_chunk_bytes));
  const std::size_t nominal =
      std::max<std::size_t>(1, data.size() / target_chunks);

  std::vector<std::size_t> starts{0};
  // Quote parity accounting: `parity` is the in-quotes state at offset
  // `counted_to`. Advancing by std::count keeps the scan vectorized.
  bool parity = false;
  std::size_t counted_to = 0;
  const auto advance_parity = [&](std::size_t to) {
    const auto quotes = std::count(data.begin() + static_cast<std::ptrdiff_t>(counted_to),
                                   data.begin() + static_cast<std::ptrdiff_t>(to), '"');
    if ((quotes % 2) != 0) parity = !parity;
    counted_to = to;
  };

  for (std::size_t k = 1; k < target_chunks; ++k) {
    const std::size_t candidate = k * nominal;
    if (candidate >= data.size()) break;
    if (candidate <= starts.back()) continue;
    advance_parity(candidate);
    // Forward scan from the candidate to the next record boundary, with
    // the exact quote state at the candidate in hand.
    bool in_quotes = parity;
    std::size_t i = candidate;
    std::size_t boundary = data.size();
    while (i < data.size()) {
      const char c = data[i];
      if (c == '"')
        in_quotes = !in_quotes;
      else if (c == '\n' && !in_quotes) {
        boundary = i + 1;
        break;
      }
      ++i;
    }
    if (boundary >= data.size()) break;  // the remainder is one chunk
    parity = in_quotes;
    counted_to = boundary;
    starts.push_back(boundary);
  }

  chunks.reserve(starts.size());
  for (std::size_t s = 0; s < starts.size(); ++s) {
    const std::size_t begin = starts[s];
    const std::size_t end = s + 1 < starts.size() ? starts[s + 1] : data.size();
    chunks.push_back(Chunk{data.substr(begin, end - begin), s});
  }
  return chunks;
}

}  // namespace failmine::ingest
