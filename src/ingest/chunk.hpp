// failmine/ingest/chunk.hpp
//
// Quote-aware chunking of a CSV byte range for parallel parsing.
//
// plan_chunks cuts a buffer of CSV records into roughly equal pieces that
// each start and end on a *record* boundary — a newline outside quotes.
// A naive newline split would shear records in half whenever a quoted
// field contains '\n'; resolving a candidate boundary therefore needs the
// quote parity (inside/outside a quoted field) at that offset. Because
// every '"' byte toggles the RFC 4180 state machine, parity at any offset
// is just the cumulative count of quote bytes before it — one vectorized
// std::count pass over the buffer, no per-byte state machine. From each
// candidate we then scan forward (with the known parity) to the first
// record-terminating newline.
//
// CsvCursor iterates the records inside one chunk: it yields each record
// as a string_view with the terminating '\n' (and a trailing '\r', for
// CRLF input) stripped, treating newlines inside quotes as field content.
// Concatenating the cursors of all chunks in order visits exactly the
// records of the whole buffer, in order — the invariant the parallel
// loader's determinism rests on.

#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace failmine::ingest {

/// One newline-aligned, quote-balanced piece of a CSV buffer.
struct Chunk {
  std::string_view data;   ///< whole records, including their terminators
  std::size_t index = 0;   ///< position in file order
};

/// Default minimum chunk size: below this, extra chunks cost more in
/// scheduling than they win in parallelism.
inline constexpr std::size_t kDefaultMinChunkBytes = 64 * 1024;

/// Splits `data` (zero or more CSV records, no header) into at most
/// `target_chunks` record-aligned chunks of at least `min_chunk_bytes`
/// each (except possibly the last). The concatenation of the returned
/// chunks is exactly `data`. An empty input yields no chunks.
std::vector<Chunk> plan_chunks(std::string_view data,
                               std::size_t target_chunks,
                               std::size_t min_chunk_bytes =
                                   kDefaultMinChunkBytes);

/// Iterates records in a chunk (see file comment for the contract).
class CsvCursor {
 public:
  explicit CsvCursor(std::string_view data) : data_(data) {}

  /// Advances to the next record; false at end of chunk. `record` gets
  /// the record's text without its line terminator. A record whose
  /// quotes never close runs to the end of the chunk (split_csv_fields
  /// then reports the unterminated quote).
  bool next(std::string_view& record) {
    if (pos_ >= data_.size()) return false;
    const std::size_t start = pos_;
    bool in_quotes = false;
    std::size_t i = pos_;
    while (i < data_.size()) {
      const char c = data_[i];
      if (c == '"')
        in_quotes = !in_quotes;
      else if (c == '\n' && !in_quotes)
        break;
      ++i;
    }
    std::size_t end = i;
    pos_ = i < data_.size() ? i + 1 : i;  // consume the '\n', if any
    if (end > start && data_[end - 1] == '\r') --end;
    record = data_.substr(start, end - start);
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace failmine::ingest
