#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) throw failmine::DomainError("histogram needs >= 2 edges");
  for (std::size_t i = 1; i < edges_.size(); ++i)
    if (edges_[i] <= edges_[i - 1])
      throw failmine::DomainError("histogram edges must be strictly increasing");
  counts_.assign(edges_.size() - 1, 0);
}

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  if (bins == 0) throw failmine::DomainError("histogram needs >= 1 bin");
  if (hi <= lo) throw failmine::DomainError("histogram range must be non-empty");
  std::vector<double> edges(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i)
    edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(bins);
  return Histogram(std::move(edges));
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  if (bins == 0) throw failmine::DomainError("histogram needs >= 1 bin");
  if (lo <= 0 || hi <= lo)
    throw failmine::DomainError("log histogram requires 0 < lo < hi");
  std::vector<double> edges(bins + 1);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (std::size_t i = 0; i <= bins; ++i)
    edges[i] = std::exp(log_lo + (log_hi - log_lo) * static_cast<double>(i) /
                                     static_cast<double>(bins));
  edges.front() = lo;  // cancel rounding at the extremes
  edges.back() = hi;
  return Histogram(std::move(edges));
}

void Histogram::add(double value) {
  ++total_;
  if (value < edges_.front()) {
    ++underflow_;
    return;
  }
  if (value > edges_.back()) {
    ++overflow_;
    return;
  }
  if (value == edges_.back()) {
    ++counts_.back();
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const std::size_t bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> sample) {
  for (double v : sample) add(v);
}

double Histogram::fraction(std::size_t bin) const {
  const std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(in_range);
}

std::string Histogram::bin_label(std::size_t bin, int precision) const {
  if (bin + 1 >= edges_.size()) throw failmine::DomainError("bin out of range");
  return failmine::util::format_double(edges_[bin], precision) + ".." +
         failmine::util::format_double(edges_[bin + 1], precision);
}

}  // namespace failmine::stats
