// failmine/stats/bootstrap.hpp
//
// Nonparametric bootstrap confidence intervals.
//
// The study's headline point estimates (MTTI, Gini, medians) come from one
// observed trace; bootstrap resampling quantifies how much they would move
// under re-observation. Used by the extension experiments (X03) and
// available to library users for any statistic expressible as a function
// of a double sample.

#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace failmine::stats {

/// A two-sided percentile confidence interval plus the point estimate.
struct BootstrapResult {
  double point_estimate = 0.0;
  double lower = 0.0;          ///< (1-confidence)/2 percentile
  double upper = 0.0;          ///< 1-(1-confidence)/2 percentile
  double standard_error = 0.0; ///< stddev of the bootstrap replicates
  std::size_t replicates = 0;
};

/// Percentile bootstrap of `statistic` over `sample`.
/// Requires a non-empty sample, replicates >= 20, confidence in (0,1).
BootstrapResult bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double confidence, util::Rng& rng);

/// Convenience wrappers for the statistics the experiments report.
BootstrapResult bootstrap_mean(std::span<const double> sample,
                               std::size_t replicates, double confidence,
                               util::Rng& rng);
BootstrapResult bootstrap_median(std::span<const double> sample,
                                 std::size_t replicates, double confidence,
                                 util::Rng& rng);
BootstrapResult bootstrap_gini(std::span<const double> sample,
                               std::size_t replicates, double confidence,
                               util::Rng& rng);

}  // namespace failmine::stats
