#include "stats/concentration.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace failmine::stats {

namespace {

std::vector<double> sorted_non_negative(std::span<const double> values) {
  if (values.empty())
    throw failmine::DomainError("concentration measures require a non-empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  for (double v : sorted)
    if (v < 0)
      throw failmine::DomainError("concentration measures require non-negative values");
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

std::vector<LorenzPoint> lorenz_curve(std::span<const double> values) {
  const auto sorted = sorted_non_negative(values);
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0) throw failmine::DomainError("lorenz_curve requires a positive total");
  std::vector<LorenzPoint> curve;
  curve.reserve(sorted.size() + 1);
  curve.push_back({0.0, 0.0});
  double running = 0.0;
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[i];
    curve.push_back({static_cast<double>(i + 1) / n, running / total});
  }
  return curve;
}

double gini(std::span<const double> values) {
  const auto sorted = sorted_non_negative(values);
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0) throw failmine::DomainError("gini requires a positive total");
  const double n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i)
    weighted += static_cast<double>(i + 1) * sorted[i];
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double top_k_share(std::span<const double> values, std::size_t k) {
  if (k == 0) throw failmine::DomainError("top_k_share requires k >= 1");
  const auto sorted = sorted_non_negative(values);
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0) throw failmine::DomainError("top_k_share requires a positive total");
  k = std::min(k, sorted.size());
  double top = 0.0;
  for (std::size_t i = 0; i < k; ++i) top += sorted[sorted.size() - 1 - i];
  return top / total;
}

std::size_t contributors_for_share(std::span<const double> values, double share) {
  if (share <= 0.0 || share > 1.0)
    throw failmine::DomainError("contributors_for_share requires share in (0,1]");
  const auto sorted = sorted_non_negative(values);
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0)
    throw failmine::DomainError("contributors_for_share requires a positive total");
  double running = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[sorted.size() - 1 - i];
    if (running / total >= share) return i + 1;
  }
  return sorted.size();
}

}  // namespace failmine::stats
