// failmine/stats/correlation.hpp
//
// Correlation coefficients used in the RAS-event / job-attribute joint
// analyses (paper takeaway T-B and T-D).

#pragma once

#include <span>

namespace failmine::stats {

/// Pearson product-moment correlation. Requires equal sizes >= 2 and
/// non-zero variance in both samples; returns a value in [-1, 1].
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson on mid-ranks, so ties are handled).
double spearman(std::span<const double> x, std::span<const double> y);

/// Kendall tau-b (tie-corrected). O(n^2) pair enumeration — fine for the
/// per-user / per-project vectors in this study (hundreds of entries).
double kendall_tau(std::span<const double> x, std::span<const double> y);

/// Simple linear regression y = a + b x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

/// Least-squares fit. Requires equal sizes >= 2 and non-constant x.
LinearFit linear_regression(std::span<const double> x, std::span<const double> y);

}  // namespace failmine::stats
