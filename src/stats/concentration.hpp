// failmine/stats/concentration.hpp
//
// Concentration / inequality measures for the "few users account for most
// failures" analyses (paper takeaway T-B): Lorenz curve, Gini coefficient
// and top-k share.

#pragma once

#include <span>
#include <vector>

namespace failmine::stats {

/// Point on a Lorenz curve: cumulative population share vs cumulative
/// value share, both in [0,1].
struct LorenzPoint {
  double population_share = 0.0;
  double value_share = 0.0;
};

/// Lorenz curve of a non-negative sample (sorted ascending internally).
/// Always starts at (0,0) and ends at (1,1). Requires a positive total.
std::vector<LorenzPoint> lorenz_curve(std::span<const double> values);

/// Gini coefficient in [0,1); 0 = perfectly equal.
double gini(std::span<const double> values);

/// Share of the total contributed by the k largest values (k >= 1).
double top_k_share(std::span<const double> values, std::size_t k);

/// Smallest number of (largest) contributors whose combined share
/// reaches `share` of the total (share in (0,1]).
std::size_t contributors_for_share(std::span<const double> values, double share);

}  // namespace failmine::stats
