// failmine/stats/summary.hpp
//
// Descriptive statistics over double samples.

#pragma once

#include <span>
#include <vector>

namespace failmine::stats {

/// One-pass descriptive summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double skewness = 0.0;  ///< adjusted Fisher-Pearson
  double kurtosis = 0.0;  ///< excess kurtosis
};

/// Computes the summary; throws DomainError on an empty sample.
Summary summarize(std::span<const double> sample);

/// Arithmetic mean; throws DomainError on an empty sample.
double mean(std::span<const double> sample);

/// Unbiased sample variance; 0 for samples of size 1.
double variance(std::span<const double> sample);

/// Sample standard deviation.
double stddev(std::span<const double> sample);

/// Median (average of middle two for even sizes). Copies and sorts.
double median(std::span<const double> sample);

/// Quantile with linear interpolation between order statistics (type 7,
/// the R default). p in [0,1]. Copies and sorts.
double quantile(std::span<const double> sample, double p);

/// Quantile on an already-sorted sample (no copy).
double quantile_sorted(std::span<const double> sorted, double p);

/// Geometric mean; requires strictly positive values.
double geometric_mean(std::span<const double> sample);

/// Ranks with ties broken by mid-rank averaging (1-based ranks).
std::vector<double> ranks(std::span<const double> sample);

}  // namespace failmine::stats
