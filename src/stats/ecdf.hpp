// failmine/stats/ecdf.hpp
//
// Empirical cumulative distribution function.

#pragma once

#include <span>
#include <vector>

namespace failmine::stats {

/// Right-continuous empirical CDF built from a sample.
class Ecdf {
 public:
  /// Copies and sorts the sample. Throws DomainError if empty.
  explicit Ecdf(std::span<const double> sample);

  /// F(x) = (# sample values <= x) / n.
  double operator()(double x) const;

  /// Empirical quantile: smallest sample value v with F(v) >= p.
  double quantile(double p) const;

  /// The sorted sample.
  const std::vector<double>& sorted() const { return sorted_; }

  std::size_t size() const { return sorted_.size(); }

  /// Evaluation points and cumulative probabilities for plotting:
  /// unique sorted values paired with F at each value.
  std::vector<std::pair<double, double>> curve() const;

 private:
  std::vector<double> sorted_;
};

}  // namespace failmine::stats
