#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace failmine::stats {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty()) throw failmine::DomainError("Ecdf requires a non-empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  if (p < 0.0 || p > 1.0) throw failmine::DomainError("Ecdf quantile p must be in [0,1]");
  if (p == 0.0) return sorted_.front();
  const double target = p * static_cast<double>(sorted_.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(target));
  if (idx == 0) idx = 1;
  if (idx > sorted_.size()) idx = sorted_.size();
  return sorted_[idx - 1];
}

std::vector<std::pair<double, double>> Ecdf::curve() const {
  std::vector<std::pair<double, double>> pts;
  const double n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    pts.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
  }
  return pts;
}

}  // namespace failmine::stats
