#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace failmine::stats {

Summary summarize(std::span<const double> sample) {
  if (sample.empty()) throw failmine::DomainError("summarize requires a non-empty sample");
  Summary s;
  s.count = sample.size();
  s.min = sample[0];
  s.max = sample[0];
  double sum = 0.0;
  for (double v : sample) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.sum = sum;
  s.mean = sum / static_cast<double>(s.count);

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double v : sample) {
    const double d = v - s.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(s.count);
  s.variance = s.count > 1 ? m2 / (n - 1.0) : 0.0;
  s.stddev = std::sqrt(s.variance);
  if (s.count > 2 && m2 > 0) {
    const double g1 = (m3 / n) / std::pow(m2 / n, 1.5);
    s.skewness = std::sqrt(n * (n - 1.0)) / (n - 2.0) * g1;
  }
  if (s.count > 3 && m2 > 0) {
    const double g2 = (m4 / n) / ((m2 / n) * (m2 / n)) - 3.0;
    s.kurtosis = (n - 1.0) / ((n - 2.0) * (n - 3.0)) * ((n + 1.0) * g2 + 6.0);
  }
  return s;
}

double mean(std::span<const double> sample) {
  if (sample.empty()) throw failmine::DomainError("mean requires a non-empty sample");
  return std::accumulate(sample.begin(), sample.end(), 0.0) /
         static_cast<double>(sample.size());
}

double variance(std::span<const double> sample) {
  if (sample.empty()) throw failmine::DomainError("variance requires a non-empty sample");
  if (sample.size() == 1) return 0.0;
  const double m = mean(sample);
  double m2 = 0.0;
  for (double v : sample) m2 += (v - m) * (v - m);
  return m2 / (static_cast<double>(sample.size()) - 1.0);
}

double stddev(std::span<const double> sample) { return std::sqrt(variance(sample)); }

double median(std::span<const double> sample) { return quantile(sample, 0.5); }

double quantile(std::span<const double> sample, double p) {
  if (sample.empty()) throw failmine::DomainError("quantile requires a non-empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, p);
}

double quantile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) throw failmine::DomainError("quantile requires a non-empty sample");
  if (p < 0.0 || p > 1.0) throw failmine::DomainError("quantile p must be in [0,1]");
  const double h = (static_cast<double>(sorted.size()) - 1.0) * p;
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double geometric_mean(std::span<const double> sample) {
  if (sample.empty())
    throw failmine::DomainError("geometric_mean requires a non-empty sample");
  double log_sum = 0.0;
  for (double v : sample) {
    if (v <= 0)
      throw failmine::DomainError("geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

std::vector<double> ranks(std::span<const double> sample) {
  const std::size_t n = sample.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sample[a] < sample[b]; });
  std::vector<double> result(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && sample[order[j + 1]] == sample[order[i]]) ++j;
    // Mid-rank for the tie group [i, j].
    const double mid_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) result[order[k]] = mid_rank;
    i = j + 1;
  }
  return result;
}

}  // namespace failmine::stats
