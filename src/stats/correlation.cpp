#include "stats/correlation.hpp"

#include <cmath>
#include <cstdint>

#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::stats {

namespace {

void check_paired(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw failmine::DomainError("correlation requires equal-length samples");
  if (x.size() < 2)
    throw failmine::DomainError("correlation requires >= 2 observations");
}

}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  check_paired(x, y);
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0)
    throw failmine::DomainError("pearson requires non-constant samples");
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  check_paired(x, y);
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

double kendall_tau(std::span<const double> x, std::span<const double> y) {
  check_paired(x, y);
  const std::size_t n = x.size();
  std::int64_t concordant = 0, discordant = 0;
  std::int64_t ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;  // tied in both: excluded from all terms
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = concordant + discordant;
  const double denom = std::sqrt((n0 + static_cast<double>(ties_x)) *
                                 (n0 + static_cast<double>(ties_y)));
  if (denom == 0.0)
    throw failmine::DomainError("kendall_tau requires non-constant samples");
  return (static_cast<double>(concordant) - static_cast<double>(discordant)) / denom;
}

LinearFit linear_regression(std::span<const double> x, std::span<const double> y) {
  check_paired(x, y);
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0)
    throw failmine::DomainError("linear_regression requires non-constant x");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace failmine::stats
