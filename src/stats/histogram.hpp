// failmine/stats/histogram.hpp
//
// Fixed-bin histograms with linear or logarithmic bucket edges. Used by
// the job-structure analyses (node-count / core-hour buckets) and the
// temporal series.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace failmine::stats {

/// Bucket edges: bin i covers [edges[i], edges[i+1]).
/// The last bin additionally includes the upper edge.
class Histogram {
 public:
  /// Uses explicit edges (strictly increasing, >= 2 entries).
  explicit Histogram(std::vector<double> edges);

  /// Evenly spaced bins over [lo, hi].
  static Histogram linear(double lo, double hi, std::size_t bins);

  /// Log-spaced bins over [lo, hi]; requires 0 < lo < hi.
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  /// Adds one observation; out-of-range values are counted separately.
  void add(double value);

  /// Adds every value in the sample.
  void add_all(std::span<const double> sample);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  const std::vector<double>& edges() const { return edges_; }

  /// Fraction of in-range mass in `bin` (0 when the histogram is empty).
  double fraction(std::size_t bin) const;

  /// "lo..hi" label for a bin, for report printing.
  std::string bin_label(std::size_t bin, int precision = 0) const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace failmine::stats
