#include "stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace failmine::stats {

TestResult ks_test(std::span<const double> sample,
                   const std::function<double(double)>& cdf) {
  if (sample.empty()) throw failmine::DomainError("ks_test requires a non-empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    if (f < -1e-12 || f > 1.0 + 1e-12)
      throw failmine::DomainError("ks_test model CDF out of [0,1]");
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(hi - f), std::fabs(f - lo)});
  }
  TestResult r;
  r.statistic = d;
  const double en = std::sqrt(n);
  // Stephens' small-sample correction before the asymptotic survival.
  r.p_value = kolmogorov_survival((en + 0.12 + 0.11 / en) * d);
  return r;
}

TestResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty())
    throw failmine::DomainError("ks_two_sample requires non-empty samples");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < sa.size() && j < sb.size()) {
    const double v = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= v) ++i;
    while (j < sb.size() && sb[j] <= v) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  TestResult r;
  r.statistic = d;
  const double en = std::sqrt(na * nb / (na + nb));
  r.p_value = kolmogorov_survival((en + 0.12 + 0.11 / en) * d);
  return r;
}

double kolmogorov_survival(double x) {
  if (x <= 0) return 1.0;
  // Q(x) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); converges very fast.
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

TestResult chi_square_test(std::span<const double> observed,
                           std::span<const double> expected,
                           std::size_t extra_constraints) {
  if (observed.size() != expected.size())
    throw failmine::DomainError("chi_square_test requires equal-length vectors");
  if (observed.size() < 2)
    throw failmine::DomainError("chi_square_test requires >= 2 cells");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0)
      throw failmine::DomainError("chi_square_test expected counts must be positive");
    const double diff = observed[i] - expected[i];
    stat += diff * diff / expected[i];
  }
  const std::size_t dof_raw = observed.size() - 1;
  if (extra_constraints >= dof_raw)
    throw failmine::DomainError("chi_square_test has no degrees of freedom left");
  const double dof = static_cast<double>(dof_raw - extra_constraints);
  TestResult r;
  r.statistic = stat;
  r.p_value = chi_square_survival(stat, dof);
  return r;
}

double chi_square_survival(double statistic, double dof) {
  if (dof <= 0) throw failmine::DomainError("chi_square_survival requires dof > 0");
  if (statistic <= 0) return 1.0;
  return gamma_q(dof / 2.0, statistic / 2.0);
}

}  // namespace failmine::stats
