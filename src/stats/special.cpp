#include "stats/special.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "util/error.hpp"

namespace failmine::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Series representation of P(a, x), valid (fast) for x < a + 1.
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction representation of Q(a, x), valid for x >= a + 1.
double gamma_q_cf(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  if (a <= 0) throw failmine::DomainError("gamma_p requires a > 0");
  if (x < 0) throw failmine::DomainError("gamma_p requires x >= 0");
  if (x == 0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (a <= 0) throw failmine::DomainError("gamma_q requires a > 0");
  if (x < 0) throw failmine::DomainError("gamma_q requires x >= 0");
  if (x == 0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double digamma(double x) {
  if (x <= 0) throw failmine::DomainError("digamma requires x > 0");
  double result = 0.0;
  // Recurrence to push the argument above 10, then asymptotic expansion.
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

double trigamma(double x) {
  if (x <= 0) throw failmine::DomainError("trigamma requires x > 0");
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 + inv * (0.5 + inv * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0))));
  return result;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0)
    throw failmine::DomainError("normal_quantile requires p in (0,1)");
  // Peter Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace failmine::stats
