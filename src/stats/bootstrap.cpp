#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "stats/concentration.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::stats {

BootstrapResult bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double confidence, util::Rng& rng) {
  if (sample.empty())
    throw failmine::DomainError("bootstrap requires a non-empty sample");
  if (replicates < 20)
    throw failmine::DomainError("bootstrap requires >= 20 replicates");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw failmine::DomainError("bootstrap confidence must be in (0,1)");

  BootstrapResult result;
  result.point_estimate = statistic(sample);
  result.replicates = replicates;

  std::vector<double> resample(sample.size());
  std::vector<double> estimates;
  estimates.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& v : resample) v = sample[rng.uniform_index(sample.size())];
    estimates.push_back(statistic(resample));
  }
  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  result.lower = quantile_sorted(estimates, alpha);
  result.upper = quantile_sorted(estimates, 1.0 - alpha);
  result.standard_error = estimates.size() > 1 ? stddev(estimates) : 0.0;
  return result;
}

BootstrapResult bootstrap_mean(std::span<const double> sample,
                               std::size_t replicates, double confidence,
                               util::Rng& rng) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return mean(s); }, replicates,
      confidence, rng);
}

BootstrapResult bootstrap_median(std::span<const double> sample,
                                 std::size_t replicates, double confidence,
                                 util::Rng& rng) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return median(s); }, replicates,
      confidence, rng);
}

BootstrapResult bootstrap_gini(std::span<const double> sample,
                               std::size_t replicates, double confidence,
                               util::Rng& rng) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return gini(s); }, replicates,
      confidence, rng);
}

}  // namespace failmine::stats
