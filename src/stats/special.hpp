// failmine/stats/special.hpp
//
// Special functions needed by the fitters and hypothesis tests.
//
// Only the handful we need: the regularized incomplete gamma functions
// (chi-square p-values, gamma/Erlang CDFs), digamma (gamma MLE), and the
// standard normal CDF/quantile (inverse-Gaussian CDF, confidence bands).

#pragma once

namespace failmine::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
/// Requires a > 0, x >= 0. Series for x < a+1, continued fraction otherwise.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Digamma (psi) function for x > 0.
double digamma(double x);

/// Trigamma (psi') function for x > 0.
double trigamma(double x);

/// Standard normal CDF.
double normal_cdf(double z);

/// Standard normal quantile (Acklam's rational approximation, |err| < 1e-9).
double normal_quantile(double p);

}  // namespace failmine::stats
