// failmine/stats/hypothesis.hpp
//
// Goodness-of-fit machinery for the distribution-fitting study (E05, E13).
//
// The paper selects best-fit families for failed-job execution lengths by
// error type; the standard instrument for that is the Kolmogorov-Smirnov
// distance plus likelihood criteria. We provide one-sample KS against an
// arbitrary CDF, two-sample KS, the asymptotic Kolmogorov p-value, and a
// chi-square goodness-of-fit test.

#pragma once

#include <functional>
#include <span>

namespace failmine::stats {

/// Result of a goodness-of-fit test.
struct TestResult {
  double statistic = 0.0;
  double p_value = 0.0;
};

/// One-sample KS: D = sup |F_n(x) - F(x)| against the model CDF.
/// The sample is copied and sorted internally.
TestResult ks_test(std::span<const double> sample,
                   const std::function<double(double)>& cdf);

/// Two-sample KS.
TestResult ks_two_sample(std::span<const double> a, std::span<const double> b);

/// Asymptotic Kolmogorov survival function: P(sqrt(n) D > x).
double kolmogorov_survival(double x);

/// Chi-square goodness of fit from observed counts and expected counts.
/// `extra_constraints` = number of parameters estimated from the data
/// (subtracted from the degrees of freedom along with the usual 1).
TestResult chi_square_test(std::span<const double> observed,
                           std::span<const double> expected,
                           std::size_t extra_constraints = 0);

/// Chi-square survival function via the regularized incomplete gamma.
double chi_square_survival(double statistic, double dof);

}  // namespace failmine::stats
