#include "tasklog/task.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::tasklog {

const std::vector<std::string>& task_csv_header() {
  static const std::vector<std::string> header = {
      "task_id", "job_id",     "sequence",      "start_time", "end_time",
      "nodes_used", "ranks_per_node", "exit_code", "exit_signal"};
  return header;
}

TaskLog::TaskLog(std::vector<TaskRecord> tasks) : tasks_(std::move(tasks)) {
  finalize();
}

void TaskLog::append(TaskRecord task) { tasks_.push_back(std::move(task)); }

void TaskLog::finalize() {
  std::sort(tasks_.begin(), tasks_.end(),
            [](const TaskRecord& a, const TaskRecord& b) {
              if (a.job_id != b.job_id) return a.job_id < b.job_id;
              return a.sequence < b.sequence;
            });
  by_job_.clear();
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    by_job_[tasks_[i].job_id].push_back(i);
}

std::vector<TaskRecord> TaskLog::tasks_of_job(std::uint64_t job_id) const {
  std::vector<TaskRecord> out;
  const auto it = by_job_.find(job_id);
  if (it == by_job_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t i : it->second) out.push_back(tasks_[i]);
  return out;
}

std::size_t TaskLog::task_count(std::uint64_t job_id) const {
  const auto it = by_job_.find(job_id);
  return it == by_job_.end() ? 0 : it->second.size();
}

void TaskLog::write_csv(const std::string& path) const {
  util::CsvWriter writer(path, task_csv_header());
  for (const auto& t : tasks_) {
    writer.write_row({
        std::to_string(t.task_id),
        std::to_string(t.job_id),
        std::to_string(t.sequence),
        util::format_timestamp(t.start_time),
        util::format_timestamp(t.end_time),
        std::to_string(t.nodes_used),
        std::to_string(t.ranks_per_node),
        std::to_string(t.exit_code),
        std::to_string(t.exit_signal),
    });
  }
  writer.close();
}

namespace {

// Row is std::vector<std::string> (serial reader) or util::FieldVec
// (ingest engine); both index to something convertible to string_view.
template <class Row>
void parse_row_into(const Row& row, TaskRecord& t) {
  t.task_id = util::parse_uint(row[0]);
  t.job_id = util::parse_uint(row[1]);
  t.sequence = static_cast<std::uint32_t>(util::parse_uint(row[2]));
  t.start_time = util::parse_timestamp(row[3]);
  t.end_time = util::parse_timestamp(row[4]);
  t.nodes_used = static_cast<std::uint32_t>(util::parse_uint(row[5]));
  t.ranks_per_node = static_cast<std::uint32_t>(util::parse_uint(row[6]));
  t.exit_code = static_cast<int>(util::parse_int(row[7]));
  t.exit_signal = static_cast<int>(util::parse_int(row[8]));
  if (t.end_time < t.start_time)
    throw failmine::ParseError("task " + std::string(row[0]) +
                               " ends before it starts");
}

template <class Row>
tasklog::TaskRecord parse_row(const Row& row) {
  TaskRecord t;
  parse_row_into(row, t);
  return t;
}

}  // namespace

void parse_csv_row(const util::FieldVec& row, TaskRecord& out) {
  parse_row_into(row, out);
}

TaskLog TaskLog::read_csv(const std::string& path,
                          const ingest::LoadOptions& options,
                          ingest::Engine engine) {
  FAILMINE_TRACE_SPAN("tasklog.read_csv");
  if (!ingest::use_serial_reader(options, engine)) {
    return TaskLog(ingest::load_csv<TaskRecord>(
        path, task_csv_header(), "tasklog", "task log", "parse.tasklog.records",
        [](const util::FieldVec& row) { return parse_row(row); }, options));
  }
  util::CsvReader reader(path);
  if (reader.header() != task_csv_header())
    throw failmine::ParseError("unexpected task log header in " + path);
  obs::Counter& records = obs::metrics().counter("parse.tasklog.records");
  std::vector<TaskRecord> tasks;
  std::vector<std::string> row;
  while (reader.next(row)) {
    try {
      tasks.push_back(parse_row(row));
    } catch (const failmine::Error& e) {
      obs::metrics().counter("parse.lines_rejected").add();
      obs::logger().warn("parse.record_rejected",
                         {{"source", "tasklog"},
                          {"file", path},
                          {"row", reader.rows_read() + 1},
                          {"error", e.what()}});
      throw;
    }
    records.add();
  }
  return TaskLog(std::move(tasks));
}

}  // namespace failmine::tasklog
