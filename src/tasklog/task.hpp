// failmine/tasklog/task.hpp
//
// runjob-style task execution records.
//
// One Cobalt job script typically launches several physical execution
// tasks (runjob invocations); the paper's job-structure analysis (T-B)
// correlates failures with the number of tasks. Each task records its own
// time window, node usage and exit status within the parent job.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ingest/loader.hpp"
#include "joblog/exit_status.hpp"
#include "util/time.hpp"

namespace failmine::util {
class FieldVec;
}  // namespace failmine::util

namespace failmine::tasklog {

/// One physical execution task of a job.
struct TaskRecord {
  std::uint64_t task_id = 0;
  std::uint64_t job_id = 0;
  std::uint32_t sequence = 0;       ///< task index within the job, 0-based
  util::UnixSeconds start_time = 0;
  util::UnixSeconds end_time = 0;
  std::uint32_t nodes_used = 0;
  std::uint32_t ranks_per_node = 1;
  int exit_code = 0;
  int exit_signal = 0;

  std::int64_t runtime_seconds() const { return end_time - start_time; }
  bool failed() const { return exit_code != 0 || exit_signal != 0; }

  friend bool operator==(const TaskRecord&, const TaskRecord&) = default;
};

/// The task log CSV column order.
const std::vector<std::string>& task_csv_header();

/// Parses one CSV row (task_csv_header() order) into `out` in place.
/// Throws failmine::Error on invalid rows; `out` is unspecified
/// afterwards.
void parse_csv_row(const util::FieldVec& row, TaskRecord& out);

/// In-memory task log with a per-job index.
class TaskLog {
 public:
  TaskLog() = default;
  explicit TaskLog(std::vector<TaskRecord> tasks);

  const std::vector<TaskRecord>& tasks() const { return tasks_; }
  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  void append(TaskRecord task);
  void finalize();

  /// Tasks belonging to a job, in sequence order (empty if none).
  std::vector<TaskRecord> tasks_of_job(std::uint64_t job_id) const;

  /// Number of tasks of a job.
  std::size_t task_count(std::uint64_t job_id) const;

  void write_csv(const std::string& path) const;

  /// Reads a log written by write_csv. Defaults to the parallel mmap
  /// ingest engine; `options.threads == 1` (or Engine::kSerial) selects
  /// the serial reader. Both paths produce identical results.
  static TaskLog read_csv(const std::string& path,
                          const ingest::LoadOptions& options = {},
                          ingest::Engine engine = ingest::Engine::kAuto);

 private:
  std::vector<TaskRecord> tasks_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_job_;
};

}  // namespace failmine::tasklog
