// failmine/iolog/io_record.hpp
//
// Darshan-style per-job I/O behaviour records.
//
// Darshan instruments each job's POSIX/MPI-IO activity; the paper joins
// this log with the scheduler log to contrast the I/O volume of failed
// versus successful jobs (experiment E12). We keep the aggregate counters
// the analysis needs.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ingest/loader.hpp"

namespace failmine::util {
class FieldVec;
}  // namespace failmine::util

namespace failmine::iolog {

/// Aggregated I/O counters of one job.
struct IoRecord {
  std::uint64_t job_id = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  double read_time_seconds = 0.0;
  double write_time_seconds = 0.0;
  std::uint32_t files_accessed = 0;
  std::uint32_t ranks_doing_io = 0;

  std::uint64_t total_bytes() const { return bytes_read + bytes_written; }

  friend bool operator==(const IoRecord&, const IoRecord&) = default;
};

/// The I/O log CSV column order.
const std::vector<std::string>& io_csv_header();

/// Parses one CSV row (io_csv_header() order) into `out` in place.
/// Throws failmine::Error on invalid rows; `out` is unspecified
/// afterwards.
void parse_csv_row(const util::FieldVec& row, IoRecord& out);

/// In-memory I/O log, keyed by job id. Not every job has a record —
/// Darshan coverage on Mira was partial, which the simulator reproduces.
class IoLog {
 public:
  IoLog() = default;
  explicit IoLog(std::vector<IoRecord> records);

  const std::vector<IoRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  void append(IoRecord record);
  void finalize();

  bool contains(std::uint64_t job_id) const;
  /// Throws DomainError if absent.
  const IoRecord& by_job(std::uint64_t job_id) const;

  void write_csv(const std::string& path) const;

  /// Reads a log written by write_csv. Defaults to the parallel mmap
  /// ingest engine; `options.threads == 1` (or Engine::kSerial) selects
  /// the serial reader. Both paths produce identical results.
  static IoLog read_csv(const std::string& path,
                        const ingest::LoadOptions& options = {},
                        ingest::Engine engine = ingest::Engine::kAuto);

 private:
  std::vector<IoRecord> records_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace failmine::iolog
