#include "iolog/io_record.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::iolog {

const std::vector<std::string>& io_csv_header() {
  static const std::vector<std::string> header = {
      "job_id",        "bytes_read",        "bytes_written",
      "read_time_s",   "write_time_s",      "files_accessed",
      "ranks_doing_io"};
  return header;
}

IoLog::IoLog(std::vector<IoRecord> records) : records_(std::move(records)) {
  finalize();
}

void IoLog::append(IoRecord record) { records_.push_back(record); }

void IoLog::finalize() {
  std::sort(records_.begin(), records_.end(),
            [](const IoRecord& a, const IoRecord& b) { return a.job_id < b.job_id; });
  index_.clear();
  index_.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto [it, inserted] = index_.emplace(records_[i].job_id, i);
    if (!inserted)
      throw failmine::DomainError("duplicate I/O record for job " +
                                  std::to_string(records_[i].job_id));
  }
}

bool IoLog::contains(std::uint64_t job_id) const { return index_.contains(job_id); }

const IoRecord& IoLog::by_job(std::uint64_t job_id) const {
  const auto it = index_.find(job_id);
  if (it == index_.end())
    throw failmine::DomainError("no I/O record for job " + std::to_string(job_id));
  return records_[it->second];
}

void IoLog::write_csv(const std::string& path) const {
  util::CsvWriter writer(path, io_csv_header());
  for (const auto& r : records_) {
    writer.write_row({
        std::to_string(r.job_id),
        std::to_string(r.bytes_read),
        std::to_string(r.bytes_written),
        util::format_double(r.read_time_seconds, 3),
        util::format_double(r.write_time_seconds, 3),
        std::to_string(r.files_accessed),
        std::to_string(r.ranks_doing_io),
    });
  }
  writer.close();
}

namespace {

// Row is std::vector<std::string> (serial reader) or util::FieldVec
// (ingest engine); both index to something convertible to string_view.
template <class Row>
void parse_row_into(const Row& row, IoRecord& r) {
  r.job_id = util::parse_uint(row[0]);
  r.bytes_read = util::parse_uint(row[1]);
  r.bytes_written = util::parse_uint(row[2]);
  r.read_time_seconds = util::parse_double(row[3]);
  r.write_time_seconds = util::parse_double(row[4]);
  r.files_accessed = static_cast<std::uint32_t>(util::parse_uint(row[5]));
  r.ranks_doing_io = static_cast<std::uint32_t>(util::parse_uint(row[6]));
}

template <class Row>
iolog::IoRecord parse_row(const Row& row) {
  IoRecord r;
  parse_row_into(row, r);
  return r;
}

}  // namespace

void parse_csv_row(const util::FieldVec& row, IoRecord& out) {
  parse_row_into(row, out);
}

IoLog IoLog::read_csv(const std::string& path,
                      const ingest::LoadOptions& options,
                      ingest::Engine engine) {
  FAILMINE_TRACE_SPAN("iolog.read_csv");
  if (!ingest::use_serial_reader(options, engine)) {
    return IoLog(ingest::load_csv<IoRecord>(
        path, io_csv_header(), "iolog", "I/O log", "parse.iolog.records",
        [](const util::FieldVec& row) { return parse_row(row); }, options));
  }
  util::CsvReader reader(path);
  if (reader.header() != io_csv_header())
    throw failmine::ParseError("unexpected I/O log header in " + path);
  obs::Counter& records_counter = obs::metrics().counter("parse.iolog.records");
  std::vector<IoRecord> records;
  std::vector<std::string> row;
  while (reader.next(row)) {
    try {
      records.push_back(parse_row(row));
    } catch (const failmine::Error& e) {
      obs::metrics().counter("parse.lines_rejected").add();
      obs::logger().warn("parse.record_rejected",
                         {{"source", "iolog"},
                          {"file", path},
                          {"row", reader.rows_read() + 1},
                          {"error", e.what()}});
      throw;
    }
    records_counter.add();
  }
  return IoLog(std::move(records));
}

}  // namespace failmine::iolog
