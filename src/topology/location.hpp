// failmine/topology/location.hpp
//
// BG/Q hardware location codes.
//
// RAS events carry a location string identifying the failing component at
// a variable depth of the hardware hierarchy:
//   "R17"              - a rack (row 1, column 7 hex)
//   "R17-M0"           - a midplane
//   "R17-M0-N09"       - a node board
//   "R17-M0-N09-J23"   - a compute card (one node)
//   "R17-M0-N09-J23-C05" - a core on that node
// The similarity-based filter and the locality analysis both reason about
// containment ("are these two events on the same node board?"), which this
// class provides, along with exact parse/format round-tripping.

#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>

#include "topology/machine.hpp"

namespace failmine::topology {

/// Depth of a location within the hardware hierarchy.
enum class Level {
  kRack,
  kMidplane,
  kNodeBoard,
  kComputeCard,
  kCore,
};

/// Human-readable level name ("rack", "midplane", ...).
std::string level_name(Level level);

/// A parsed hardware location at some level of the hierarchy.
class Location {
 public:
  /// Builds a rack-level location.
  static Location rack(int row, int column);

  /// Extends with deeper components. Each throws DomainError if out of
  /// range for the supplied config (checked at parse/validate time).
  Location with_midplane(int midplane) const;
  Location with_board(int board) const;
  Location with_card(int card) const;
  Location with_core(int core) const;

  /// Parses a location string. Throws ParseError on malformed input and
  /// DomainError if a component is out of range for `config`.
  static Location parse(std::string_view text, const MachineConfig& config);

  /// Formats back to the canonical string.
  std::string to_string() const;

  Level level() const { return level_; }
  int rack_row() const { return rack_row_; }
  int rack_column() const { return rack_column_; }
  int rack_index(const MachineConfig& config) const;
  int midplane() const;  ///< throws if level < midplane
  int board() const;     ///< throws if level < node board
  int card() const;      ///< throws if level < compute card
  int core() const;      ///< throws if level < core

  /// True if `other` is at or below this location in the hierarchy
  /// (a location contains itself).
  bool contains(const Location& other) const;

  /// Truncates to a shallower (or equal) level.
  Location ancestor(Level level) const;

  /// The deepest level at which the two locations agree, if they share a
  /// rack at all.
  std::optional<Level> common_level(const Location& other) const;

  /// Node index of a card-or-deeper location in the linearized machine.
  NodeIndex node_index(const MachineConfig& config) const;

  /// Builds a card-level location from a node index.
  static Location from_node_index(NodeIndex node, const MachineConfig& config);

  friend bool operator==(const Location&, const Location&) = default;
  friend std::strong_ordering operator<=>(const Location&, const Location&) = default;

 private:
  Location() = default;

  Level level_ = Level::kRack;
  int rack_row_ = 0;
  int rack_column_ = 0;
  int midplane_ = 0;
  int board_ = 0;
  int card_ = 0;
  int core_ = 0;
};

}  // namespace failmine::topology
