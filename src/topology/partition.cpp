#include "topology/partition.hpp"

#include "util/error.hpp"

namespace failmine::topology {

Partition::Partition(int first_midplane, int midplane_count,
                     const MachineConfig& config)
    : first_(first_midplane), count_(midplane_count) {
  const int total = config.racks() * config.midplanes_per_rack;
  if (midplane_count < 1) throw failmine::DomainError("partition needs >= 1 midplane");
  if (first_midplane < 0 || first_midplane + midplane_count > total)
    throw failmine::DomainError("partition outside machine");
}

std::uint32_t Partition::node_count(const MachineConfig& config) const {
  return static_cast<std::uint32_t>(count_) * config.nodes_per_midplane();
}

bool Partition::covers(const Location& loc, const MachineConfig& config) const {
  if (loc.level() < Level::kMidplane) return false;
  const int idx = global_midplane_index(loc, config);
  return idx >= first_ && idx < first_ + count_;
}

std::vector<Location> Partition::midplanes(const MachineConfig& config) const {
  std::vector<Location> result;
  result.reserve(static_cast<std::size_t>(count_));
  for (int i = first_; i < first_ + count_; ++i)
    result.push_back(midplane_location(i, config));
  return result;
}

std::string Partition::to_string() const {
  return "MID[" + std::to_string(first_) + ".." +
         std::to_string(first_ + count_ - 1) + "]";
}

int Partition::global_midplane_index(const Location& loc,
                                     const MachineConfig& config) {
  if (loc.level() < Level::kMidplane)
    throw failmine::DomainError("location lacks a midplane component");
  return loc.rack_index(config) * config.midplanes_per_rack + loc.midplane();
}

Location Partition::midplane_location(int global_index, const MachineConfig& config) {
  const int total = config.racks() * config.midplanes_per_rack;
  if (global_index < 0 || global_index >= total)
    throw failmine::DomainError("global midplane index out of machine");
  const int rack = global_index / config.midplanes_per_rack;
  const int mid = global_index % config.midplanes_per_rack;
  return Location::rack(rack / config.rack_columns, rack % config.rack_columns)
      .with_midplane(mid);
}

int midplanes_for_nodes(std::uint32_t nodes, const MachineConfig& config) {
  if (nodes == 0) throw failmine::DomainError("job must use >= 1 node");
  if (nodes > config.total_nodes())
    throw failmine::DomainError("job larger than machine");
  const std::uint32_t per_mid = config.nodes_per_midplane();
  std::uint32_t mids = (nodes + per_mid - 1) / per_mid;
  // Round up to a power of two (BG/Q partition sizes double).
  std::uint32_t p2 = 1;
  while (p2 < mids) p2 *= 2;
  const std::uint32_t total_mids =
      static_cast<std::uint32_t>(config.racks() * config.midplanes_per_rack);
  if (p2 > total_mids) p2 = total_mids;
  return static_cast<int>(p2);
}

}  // namespace failmine::topology
