// failmine/topology/machine.hpp
//
// IBM Blue Gene/Q machine model.
//
// Mira (the system studied in the paper) is 48 racks; each rack holds two
// midplanes, each midplane 16 node boards, each node board 32 compute
// cards, each compute card one node with 16 application cores:
//   48 x 2 x 16 x 32 = 49,152 nodes = 786,432 cores.
// Racks are laid out in 3 rows x 16 columns and named R<row><col-hex>
// (R00..R2F). Full-machine node coordinates form a 5D torus
// (A,B,C,D,E) = (8,12,16,16,2).
//
// `MachineConfig` parameterizes the hierarchy so tests and small
// simulations can run on fractional machines while production analyses use
// the full Mira geometry.

#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace failmine::topology {

/// Node index into the linearized machine, in [0, total_nodes()).
using NodeIndex = std::uint32_t;

/// Dimensions of a Blue Gene/Q-style machine.
struct MachineConfig {
  int rack_rows = 3;
  int rack_columns = 16;
  int midplanes_per_rack = 2;
  int boards_per_midplane = 16;
  int cards_per_board = 32;
  int cores_per_node = 16;

  /// The full Mira configuration (48 racks, 49,152 nodes).
  static MachineConfig mira();

  /// A single-rack machine, handy for unit tests.
  static MachineConfig single_rack();

  int racks() const { return rack_rows * rack_columns; }
  std::uint32_t nodes_per_board() const {
    return static_cast<std::uint32_t>(cards_per_board);
  }
  std::uint32_t nodes_per_midplane() const {
    return static_cast<std::uint32_t>(boards_per_midplane * cards_per_board);
  }
  std::uint32_t nodes_per_rack() const {
    return nodes_per_midplane() * static_cast<std::uint32_t>(midplanes_per_rack);
  }
  std::uint32_t total_nodes() const {
    return nodes_per_rack() * static_cast<std::uint32_t>(racks());
  }
  std::uint64_t total_cores() const {
    return static_cast<std::uint64_t>(total_nodes()) *
           static_cast<std::uint64_t>(cores_per_node);
  }

  friend bool operator==(const MachineConfig&, const MachineConfig&) = default;
};

/// 5D torus coordinate (A, B, C, D, E).
struct TorusCoord {
  std::array<int, 5> dims{};

  friend bool operator==(const TorusCoord&, const TorusCoord&) = default;
};

/// The 5D torus shape of a machine (full Mira: 8 x 12 x 16 x 16 x 2).
struct TorusShape {
  std::array<int, 5> extent{};

  /// Derives a torus shape covering all nodes of `config`. The A dimension
  /// absorbs the rack rows/columns so any config maps onto a valid torus.
  static TorusShape for_machine(const MachineConfig& config);

  std::uint64_t volume() const;

  /// Maps a node index to its torus coordinate (row-major unfolding).
  TorusCoord coord_of(NodeIndex node) const;

  /// Inverse of coord_of.
  NodeIndex node_of(const TorusCoord& coord) const;

  /// Hop distance with wraparound in every dimension.
  int torus_distance(const TorusCoord& a, const TorusCoord& b) const;
};

}  // namespace failmine::topology
