#include "topology/location.hpp"

#include <array>
#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::topology {

namespace {

int hex_digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  throw failmine::ParseError(std::string("bad hex digit '") + c + "' in location");
}

char hex_digit_char(int v) {
  return v < 10 ? static_cast<char>('0' + v) : static_cast<char>('A' + v - 10);
}

int parse_two_digits(std::string_view part, char tag) {
  if (part.size() != 3 || part[0] != tag || part[1] < '0' || part[1] > '9' ||
      part[2] < '0' || part[2] > '9')
    throw failmine::ParseError("bad location component '" + std::string(part) + "'");
  return (part[1] - '0') * 10 + (part[2] - '0');
}

}  // namespace

std::string level_name(Level level) {
  switch (level) {
    case Level::kRack: return "rack";
    case Level::kMidplane: return "midplane";
    case Level::kNodeBoard: return "node_board";
    case Level::kComputeCard: return "compute_card";
    case Level::kCore: return "core";
  }
  throw failmine::DomainError("unknown level");
}

Location Location::rack(int row, int column) {
  if (row < 0 || row > 9 || column < 0 || column > 15)
    throw failmine::DomainError("rack row/column out of representable range");
  Location loc;
  loc.level_ = Level::kRack;
  loc.rack_row_ = row;
  loc.rack_column_ = column;
  return loc;
}

Location Location::with_midplane(int midplane) const {
  if (level_ != Level::kRack)
    throw failmine::DomainError("with_midplane requires a rack-level location");
  if (midplane < 0 || midplane > 9)
    throw failmine::DomainError("midplane out of representable range");
  Location loc = *this;
  loc.level_ = Level::kMidplane;
  loc.midplane_ = midplane;
  return loc;
}

Location Location::with_board(int board) const {
  if (level_ != Level::kMidplane)
    throw failmine::DomainError("with_board requires a midplane-level location");
  if (board < 0 || board > 99)
    throw failmine::DomainError("board out of representable range");
  Location loc = *this;
  loc.level_ = Level::kNodeBoard;
  loc.board_ = board;
  return loc;
}

Location Location::with_card(int card) const {
  if (level_ != Level::kNodeBoard)
    throw failmine::DomainError("with_card requires a node-board-level location");
  if (card < 0 || card > 99)
    throw failmine::DomainError("card out of representable range");
  Location loc = *this;
  loc.level_ = Level::kComputeCard;
  loc.card_ = card;
  return loc;
}

Location Location::with_core(int core) const {
  if (level_ != Level::kComputeCard)
    throw failmine::DomainError("with_core requires a compute-card-level location");
  if (core < 0 || core > 99)
    throw failmine::DomainError("core out of representable range");
  Location loc = *this;
  loc.level_ = Level::kCore;
  loc.core_ = core;
  return loc;
}

Location Location::parse(std::string_view text, const MachineConfig& config) {
  const auto parts = util::split(text, '-');
  if (parts.empty() || parts[0].empty())
    throw failmine::ParseError("empty location string");

  // Rack part: R<row><col-hex>, e.g. "R17" or "R2F".
  const std::string& r = parts[0];
  if (r.size() != 3 || r[0] != 'R' || r[1] < '0' || r[1] > '9')
    throw failmine::ParseError("bad rack component '" + r + "'");
  const int row = r[1] - '0';
  const int col = hex_digit_value(r[2]);
  if (row >= config.rack_rows || col >= config.rack_columns)
    throw failmine::DomainError("rack " + r + " outside machine");
  Location loc = rack(row, col);

  if (parts.size() >= 2) {
    const int m = [&] {
      const std::string& p = parts[1];
      if (p.size() != 2 || p[0] != 'M' || p[1] < '0' || p[1] > '9')
        throw failmine::ParseError("bad midplane component '" + p + "'");
      return p[1] - '0';
    }();
    if (m >= config.midplanes_per_rack)
      throw failmine::DomainError("midplane out of machine range");
    loc = loc.with_midplane(m);
  }
  if (parts.size() >= 3) {
    const int n = parse_two_digits(parts[2], 'N');
    if (n >= config.boards_per_midplane)
      throw failmine::DomainError("node board out of machine range");
    loc = loc.with_board(n);
  }
  if (parts.size() >= 4) {
    const int j = parse_two_digits(parts[3], 'J');
    if (j >= config.cards_per_board)
      throw failmine::DomainError("compute card out of machine range");
    loc = loc.with_card(j);
  }
  if (parts.size() >= 5) {
    const int c = parse_two_digits(parts[4], 'C');
    if (c >= config.cores_per_node)
      throw failmine::DomainError("core out of machine range");
    loc = loc.with_core(c);
  }
  if (parts.size() > 5)
    throw failmine::ParseError("location has too many components: '" +
                               std::string(text) + "'");
  return loc;
}

std::string Location::to_string() const {
  std::string out = "R";
  out.push_back(static_cast<char>('0' + rack_row_));
  out.push_back(hex_digit_char(rack_column_));
  if (level_ == Level::kRack) return out;
  char buf[8];
  out += "-M";
  out.push_back(static_cast<char>('0' + midplane_));
  if (level_ == Level::kMidplane) return out;
  std::snprintf(buf, sizeof(buf), "-N%02d", board_);
  out += buf;
  if (level_ == Level::kNodeBoard) return out;
  std::snprintf(buf, sizeof(buf), "-J%02d", card_);
  out += buf;
  if (level_ == Level::kComputeCard) return out;
  std::snprintf(buf, sizeof(buf), "-C%02d", core_);
  out += buf;
  return out;
}

int Location::rack_index(const MachineConfig& config) const {
  return rack_row_ * config.rack_columns + rack_column_;
}

int Location::midplane() const {
  if (level_ < Level::kMidplane)
    throw failmine::DomainError("location has no midplane component");
  return midplane_;
}

int Location::board() const {
  if (level_ < Level::kNodeBoard)
    throw failmine::DomainError("location has no board component");
  return board_;
}

int Location::card() const {
  if (level_ < Level::kComputeCard)
    throw failmine::DomainError("location has no card component");
  return card_;
}

int Location::core() const {
  if (level_ < Level::kCore)
    throw failmine::DomainError("location has no core component");
  return core_;
}

bool Location::contains(const Location& other) const {
  if (other.level_ < level_) return false;
  return other.ancestor(level_) == *this;
}

Location Location::ancestor(Level level) const {
  if (level > level_)
    throw failmine::DomainError("ancestor level deeper than location level");
  Location loc = *this;
  loc.level_ = level;
  if (level < Level::kCore) loc.core_ = 0;
  if (level < Level::kComputeCard) loc.card_ = 0;
  if (level < Level::kNodeBoard) loc.board_ = 0;
  if (level < Level::kMidplane) loc.midplane_ = 0;
  return loc;
}

std::optional<Level> Location::common_level(const Location& other) const {
  if (rack_row_ != other.rack_row_ || rack_column_ != other.rack_column_)
    return std::nullopt;
  Level best = Level::kRack;
  const Level max_level = std::min(level_, other.level_);
  if (max_level >= Level::kMidplane && midplane_ == other.midplane_) {
    best = Level::kMidplane;
    if (max_level >= Level::kNodeBoard && board_ == other.board_) {
      best = Level::kNodeBoard;
      if (max_level >= Level::kComputeCard && card_ == other.card_) {
        best = Level::kComputeCard;
        if (max_level >= Level::kCore && core_ == other.core_) best = Level::kCore;
      }
    }
  }
  return best;
}

NodeIndex Location::node_index(const MachineConfig& config) const {
  if (level_ < Level::kComputeCard)
    throw failmine::DomainError("node_index requires a card-level location");
  const std::uint32_t rack = static_cast<std::uint32_t>(rack_index(config));
  return rack * config.nodes_per_rack() +
         static_cast<std::uint32_t>(midplane_) * config.nodes_per_midplane() +
         static_cast<std::uint32_t>(board_) * config.nodes_per_board() +
         static_cast<std::uint32_t>(card_);
}

Location Location::from_node_index(NodeIndex node, const MachineConfig& config) {
  if (node >= config.total_nodes())
    throw failmine::DomainError("node index out of machine");
  const std::uint32_t per_rack = config.nodes_per_rack();
  const std::uint32_t per_mid = config.nodes_per_midplane();
  const std::uint32_t per_board = config.nodes_per_board();
  const int rack = static_cast<int>(node / per_rack);
  const std::uint32_t in_rack = node % per_rack;
  const int mid = static_cast<int>(in_rack / per_mid);
  const std::uint32_t in_mid = in_rack % per_mid;
  const int board = static_cast<int>(in_mid / per_board);
  const int card = static_cast<int>(in_mid % per_board);
  return Location::rack(rack / config.rack_columns, rack % config.rack_columns)
      .with_midplane(mid)
      .with_board(board)
      .with_card(card);
}

}  // namespace failmine::topology
