#include "topology/machine.hpp"

#include <cmath>

#include "util/error.hpp"

namespace failmine::topology {

MachineConfig MachineConfig::mira() { return MachineConfig{}; }

MachineConfig MachineConfig::single_rack() {
  MachineConfig c;
  c.rack_rows = 1;
  c.rack_columns = 1;
  return c;
}

TorusShape TorusShape::for_machine(const MachineConfig& config) {
  // Mira's published torus is 8x12x16x16x2 = 49,152. For arbitrary configs
  // we keep the B..E extents fixed to the midplane-internal geometry
  // (midplane = 4x4x4x4x2 torus per BG/Q wiring; two midplanes pair in E...
  // the precise cabling is proprietary) and scale A with the rack count so
  // that volume == total_nodes. What the analyses need is a consistent,
  // invertible node<->coordinate map with wraparound distance, which this
  // provides.
  TorusShape s;
  const std::uint32_t nodes = config.total_nodes();
  s.extent = {1, 12, 16, 16, 2};
  const std::uint64_t base = 12ULL * 16 * 16 * 2;
  if (nodes % base == 0) {
    s.extent[0] = static_cast<int>(nodes / base);
  } else {
    // Fall back to a flat 1D "torus" over the node count.
    s.extent = {static_cast<int>(nodes), 1, 1, 1, 1};
  }
  return s;
}

std::uint64_t TorusShape::volume() const {
  std::uint64_t v = 1;
  for (int e : extent) v *= static_cast<std::uint64_t>(e);
  return v;
}

TorusCoord TorusShape::coord_of(NodeIndex node) const {
  if (node >= volume()) throw failmine::DomainError("node index out of torus");
  TorusCoord c;
  std::uint64_t rest = node;
  for (int d = 4; d >= 0; --d) {
    c.dims[static_cast<std::size_t>(d)] =
        static_cast<int>(rest % static_cast<std::uint64_t>(extent[static_cast<std::size_t>(d)]));
    rest /= static_cast<std::uint64_t>(extent[static_cast<std::size_t>(d)]);
  }
  return c;
}

NodeIndex TorusShape::node_of(const TorusCoord& coord) const {
  std::uint64_t idx = 0;
  for (std::size_t d = 0; d < 5; ++d) {
    if (coord.dims[d] < 0 || coord.dims[d] >= extent[d])
      throw failmine::DomainError("torus coordinate out of range");
    idx = idx * static_cast<std::uint64_t>(extent[d]) +
          static_cast<std::uint64_t>(coord.dims[d]);
  }
  return static_cast<NodeIndex>(idx);
}

int TorusShape::torus_distance(const TorusCoord& a, const TorusCoord& b) const {
  int dist = 0;
  for (std::size_t d = 0; d < 5; ++d) {
    const int e = extent[d];
    int diff = std::abs(a.dims[d] - b.dims[d]);
    dist += std::min(diff, e - diff);
  }
  return dist;
}

}  // namespace failmine::topology
