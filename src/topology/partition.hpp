// failmine/topology/partition.hpp
//
// Blue Gene/Q job partitions.
//
// Cobalt allocates jobs onto contiguous partitions whose sizes are powers
// of two from 512 nodes (one midplane) up to the full machine (49,152 on
// Mira). A partition is described by its first midplane and its midplane
// count; jobs smaller than one midplane still occupy a full midplane
// (BG/Q partitions do not subdivide midplanes for scheduling purposes on
// Mira's production queues). Mapping a job to the set of nodes it occupied
// is what lets the joint analysis attribute a located RAS event to a job.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/location.hpp"
#include "topology/machine.hpp"

namespace failmine::topology {

/// A contiguous allocation of whole midplanes.
class Partition {
 public:
  /// [first_midplane, first_midplane + midplane_count) in global midplane
  /// order (rack-major). Throws DomainError if out of machine range.
  Partition(int first_midplane, int midplane_count, const MachineConfig& config);

  int first_midplane() const { return first_; }
  int midplane_count() const { return count_; }
  std::uint32_t node_count(const MachineConfig& config) const;

  /// True if the located event falls inside this partition.
  bool covers(const Location& loc, const MachineConfig& config) const;

  /// Midplane-level locations making up the partition.
  std::vector<Location> midplanes(const MachineConfig& config) const;

  /// "MID[first..last]" label for reports.
  std::string to_string() const;

  /// Global midplane index of a location (rack-major). Requires at least
  /// midplane depth.
  static int global_midplane_index(const Location& loc, const MachineConfig& config);

  /// Midplane-level location from a global midplane index.
  static Location midplane_location(int global_index, const MachineConfig& config);

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  int first_;
  int count_;
};

/// Number of midplanes a job of `nodes` nodes occupies (rounded up to a
/// power-of-two count of midplanes, per BG/Q partitioning).
int midplanes_for_nodes(std::uint32_t nodes, const MachineConfig& config);

}  // namespace failmine::topology
