#include "stream/fleet.hpp"

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "util/error.hpp"

namespace failmine::stream {

std::string StreamFleet::twin_name(std::size_t i) {
  return "t" + std::to_string(i);
}

StreamFleet::StreamFleet(FleetConfig config) : config_(std::move(config)) {
  if (config_.twin_count == 0)
    throw failmine::DomainError("FleetConfig.twin_count must be positive");
  twins_.reserve(config_.twin_count);
  for (std::size_t i = 0; i < config_.twin_count; ++i) {
    StreamConfig twin_config = config_.base;
    twin_config.twin = twin_name(i);
    // The first twin arms the process-wide causal tracer; the rest must
    // not reconfigure it while twin 0's threads are already stamping.
    twin_config.configure_tracer = i == 0;
    twins_.push_back(std::make_unique<StreamPipeline>(twin_config));
  }
  obs::logger().info(
      "stream.fleet_started",
      {obs::Field("twins", static_cast<std::int64_t>(config_.twin_count)),
       obs::Field("shards_per_twin",
                  static_cast<std::int64_t>(config_.base.shard_count))});
}

StreamFleet::~StreamFleet() { finish(); }

void StreamFleet::finish() {
  for (auto& twin : twins_) twin->finish();
}

bool StreamFleet::healthy() const {
  for (const auto& twin : twins_)
    if (!twin->healthy()) return false;
  return true;
}

SpaceSavingSketch StreamFleet::merged_users_by_failures() const {
  SpaceSavingSketch merged(config_.base.heavy_hitter_capacity);
  for (const auto& twin : twins_)
    merged.merge(twin->users_by_failures_sketch());
  return merged;
}

std::string StreamFleet::fleet_json() const {
  std::string out = "{\"twins\":[";
  std::uint64_t records_in = 0, records_processed = 0, records_dropped = 0;
  std::size_t healthy_twins = 0;
  for (std::size_t i = 0; i < twins_.size(); ++i) {
    const StreamSnapshot snap = twins_[i]->snapshot();
    const bool twin_healthy = twins_[i]->healthy();
    records_in += snap.records_in;
    records_processed += snap.records_processed;
    records_dropped += snap.records_dropped;
    if (twin_healthy) ++healthy_twins;
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    obs::append_json_string(out, twin_name(i));
    out += std::string(",\"healthy\":") + (twin_healthy ? "true" : "false");
    out += std::string(",\"finished\":") + (snap.finished ? "true" : "false");
    out += ",\"records_in\":" + std::to_string(snap.records_in);
    out += ",\"records_processed\":" + std::to_string(snap.records_processed);
    out += ",\"records_dropped\":" + std::to_string(snap.records_dropped);
    out += ",\"queue_depth\":" + std::to_string(snap.queue_depth);
    out += ",\"watermark\":" + std::to_string(snap.watermark);
    out += ",\"window_jobs\":" + std::to_string(snap.window_jobs);
    out += ",\"window_failures\":" + std::to_string(snap.window_failures);
    out += ",\"window_failure_rate\":" +
           obs::json_number(snap.window_failure_rate);
    out += ",\"interruptions\":" + std::to_string(snap.interruptions);
    out.push_back('}');
  }
  out += "],\"fleet\":{\"twin_count\":" + std::to_string(twins_.size());
  out += ",\"healthy_twins\":" + std::to_string(healthy_twins);
  out += ",\"records_in\":" + std::to_string(records_in);
  out += ",\"records_processed\":" + std::to_string(records_processed);
  out += ",\"records_dropped\":" + std::to_string(records_dropped);
  const SpaceSavingSketch merged = merged_users_by_failures();
  out += ",\"heavy_hitter_error_bound\":" +
         std::to_string(merged.error_bound());
  out += ",\"top_users_by_failures\":[";
  const auto top = merged.top(10);
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"user\":" + std::to_string(top[i].key);
    out += ",\"count\":" + std::to_string(top[i].count);
    out += ",\"error\":" + std::to_string(top[i].error);
    out.push_back('}');
  }
  out += "]}}\n";
  return out;
}

}  // namespace failmine::stream
