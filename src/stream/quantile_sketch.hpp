// failmine/stream/quantile_sketch.hpp
//
// Greenwald–Khanna ε-approximate quantile summary (streaming job-runtime
// quantiles).
//
// The batch toolkit answers "median failed-job runtime" by sorting every
// runtime; a stream cannot hold them. A GK summary keeps a small sorted
// set of tuples (value, g, Δ) maintaining, for tuple i,
//   rmin_i = Σ_{j≤i} g_j   and   rmax_i = rmin_i + Δ_i,
// bounds on the value's true rank, with the invariant
// g_i + Δ_i ≤ max(1, ⌊2εn⌋). quantile(q) then returns a value whose true
// rank is within ±εn of ⌈qn⌉ using O((1/ε)·log(εn)) memory.
//
// Inserts are buffered: values accumulate in a small unsorted buffer and
// fold into the summary in one sorted merge pass (amortizing the O(s)
// insertion cost that a tuple-per-insert implementation pays in memmove).
//
// merge() combines summaries built on disjoint substreams (one per
// pipeline shard). Rank bounds add across the two inputs, so merging
// summaries with errors ε₁n₁ and ε₂n₂ yields error ≤ ε₁n₁ + ε₂n₂ — for
// equal ε the merged summary keeps the same ε. The merged summary is NOT
// re-compressed (compression after merge would add another ε), so
// snapshot-time merges preserve the documented per-shard bound.

#pragma once

#include <cstdint>
#include <vector>

namespace failmine::stream {

class GkQuantileSketch {
 public:
  /// `epsilon` is the rank-error bound as a fraction of the stream length
  /// (e.g. 0.005 → a p50 query returns a value of true rank p50 ± 0.5 %).
  explicit GkQuantileSketch(double epsilon = 0.005);

  void insert(double value);

  /// Folds `other` into this sketch (disjoint substreams). Both sketches'
  /// buffered values are flushed first.
  void merge(const GkQuantileSketch& other);

  /// Value whose rank is within ±epsilon()*count() of ceil(q*count()).
  /// q is clamped to [0,1]. Throws DomainError when the sketch is empty.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double epsilon() const { return eps_; }
  double min() const;
  double max() const;

  /// Number of stored tuples after flushing (memory footprint probe).
  std::size_t summary_size() const;

 private:
  struct Tuple {
    double value = 0.0;
    std::uint64_t g = 0;      ///< rmin increment over the previous tuple
    std::uint64_t delta = 0;  ///< rmax - rmin for this tuple
  };

  void flush() const;     // folds buffer_ into tuples_
  void compress() const;  // merges adjacent tuples within the invariant
  std::uint64_t invariant_bound() const;

  double eps_;
  std::uint64_t count_ = 0;            ///< includes buffered values
  std::size_t buffer_capacity_ = 256;
  mutable std::vector<Tuple> tuples_;  ///< sorted by value
  mutable std::vector<double> buffer_;
};

}  // namespace failmine::stream
