// failmine/stream/fleet.hpp
//
// Fleet mode: several streaming pipelines ("twins") in one process,
// each a digital twin of the machine replaying its own record stream —
// different seeds, scales or failure mixes — sharing a single metrics
// registry, time-series store, alert engine and telemetry server.
//
// Isolation comes from the twin label: every pipeline instrument of
// twin i is registered as `family{twin="t<i>"}` (StreamConfig.twin), so
// N twins produce N disjoint label-disambiguated series per family
// instead of colliding on shared counters. Cross-twin views then fall
// out of the label-aware query layer:
//
//   sum by (twin) (rate(stream.records_in{twin=~"*"}[1m]))
//   value(stream.window.failure_rate{twin="t3"})
//
// and the alert engine's per-label-group rules fire independently per
// twin (a stalled t2 flips only `...{twin="t2"}`).
//
// The fleet configures the process-wide causal tracer exactly once (via
// the first twin's constructor) and clears configure_tracer on the
// rest, so twin N cannot clobber the stage table mid-run.
//
// fleet_json() is the body of the telemetry server's GET /fleet: a
// per-twin health/snapshot rollup (ingest accounting, rolling-window
// failure rate — byte-identical to the same twin's StreamSnapshot
// fields) plus the cross-fleet heavy-hitter view, built by merging the
// twins' users-by-failures space-saving sketches; the merge keeps the
// sketch's superset property and error bound, so a user heavy across
// the whole fleet is reported even if no single twin ranks them first.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "stream/pipeline.hpp"

namespace failmine::stream {

struct FleetConfig {
  /// Number of twins; each gets StreamConfig.twin = "t0".."tN-1".
  std::size_t twin_count = 2;

  /// Per-twin pipeline configuration. `twin` and `configure_tracer` are
  /// overwritten per twin; everything else is shared.
  StreamConfig base;
};

class StreamFleet {
 public:
  /// Constructs and starts every twin pipeline. Throws DomainError on a
  /// zero twin_count.
  explicit StreamFleet(FleetConfig config);
  ~StreamFleet();

  StreamFleet(const StreamFleet&) = delete;
  StreamFleet& operator=(const StreamFleet&) = delete;

  std::size_t size() const { return twins_.size(); }
  StreamPipeline& twin(std::size_t i) { return *twins_.at(i); }
  const StreamPipeline& twin(std::size_t i) const { return *twins_.at(i); }
  static std::string twin_name(std::size_t i);

  /// Drains and stops every twin (idempotent, like
  /// StreamPipeline::finish).
  void finish();

  /// False while any twin's stall watchdog reports a stalled shard —
  /// the fleet-level /healthz verdict.
  bool healthy() const;

  /// The cross-fleet users-by-failures sketch: every twin's shard
  /// sketches merged into one fixed-capacity summary.
  SpaceSavingSketch merged_users_by_failures() const;

  /// {"twins":[{"name":...,"healthy":...,"records_in":...,
  ///  "window_failure_rate":...},...],"fleet":{...}} — the /fleet body
  /// (newline-terminated). Snapshot fields are taken from each twin's
  /// StreamSnapshot under its locks, so they match a concurrent
  /// GET /snapshot of that twin exactly.
  std::string fleet_json() const;

 private:
  FleetConfig config_;
  std::vector<std::unique_ptr<StreamPipeline>> twins_;
};

}  // namespace failmine::stream
