#include "stream/heavy_hitters.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace failmine::stream {

SpaceSavingSketch::SpaceSavingSketch(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0)
    throw failmine::DomainError("SpaceSavingSketch capacity must be positive");
  counts_.reserve(capacity);
}

void SpaceSavingSketch::add(std::uint64_t key, std::uint64_t weight) {
  total_weight_ += weight;
  const auto it = counts_.find(key);
  if (it != counts_.end()) {
    it->second.count += weight;
    return;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(key, Entry{key, weight, 0});
    return;
  }
  evict_and_insert(key, weight);
}

void SpaceSavingSketch::evict_and_insert(std::uint64_t key,
                                         std::uint64_t weight) {
  // O(capacity) min scan; capacities are small (tens) and the common
  // heavy-tailed traffic hits monitored keys, so evictions are rare.
  auto min_it = counts_.begin();
  for (auto it = counts_.begin(); it != counts_.end(); ++it)
    if (it->second.count < min_it->second.count ||
        (it->second.count == min_it->second.count &&
         it->second.key > min_it->second.key))
      min_it = it;
  const std::uint64_t floor = min_it->second.count;
  counts_.erase(min_it);
  counts_.emplace(key, Entry{key, floor + weight, floor});
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::entries() const {
  std::vector<Entry> out;
  out.reserve(counts_.size());
  for (const auto& [key, entry] : counts_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::top(
    std::size_t k) const {
  std::vector<Entry> out = entries();
  if (out.size() > k) out.resize(k);
  return out;
}

void SpaceSavingSketch::merge(const SpaceSavingSketch& other) {
  // A key absent from one (full) summary could still have accumulated up
  // to that summary's minimum count there; fold that in as error.
  auto min_count = [](const SpaceSavingSketch& s) -> std::uint64_t {
    if (s.counts_.size() < s.capacity_) return 0;  // nothing was evicted
    std::uint64_t m = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [key, entry] : s.counts_) m = std::min(m, entry.count);
    return m;
  };
  const std::uint64_t self_floor = min_count(*this);
  const std::uint64_t other_floor = min_count(other);

  std::unordered_map<std::uint64_t, Entry> merged;
  merged.reserve(counts_.size() + other.counts_.size());
  for (const auto& [key, entry] : counts_) {
    Entry e = entry;
    e.count += other_floor;
    e.error += other_floor;
    merged.emplace(key, e);
  }
  for (const auto& [key, entry] : other.counts_) {
    auto it = merged.find(key);
    if (it == merged.end()) {
      Entry e = entry;
      e.count += self_floor;
      e.error += self_floor;
      merged.emplace(key, e);
    } else {
      // Present in both: undo the unseen-floor padding for this key.
      it->second.count += entry.count - other_floor;
      it->second.error += entry.error - other_floor;
    }
  }

  counts_ = std::move(merged);
  total_weight_ += other.total_weight_;
  merged_error_floor_ += other_floor + self_floor;
  if (counts_.size() > capacity_) {
    // Keep the heaviest `capacity_` keys.
    std::vector<Entry> ordered;
    ordered.reserve(counts_.size());
    for (const auto& [key, entry] : counts_) ordered.push_back(entry);
    std::sort(ordered.begin(), ordered.end(),
              [](const Entry& a, const Entry& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.key < b.key;
              });
    counts_.clear();
    for (std::size_t i = 0; i < capacity_; ++i)
      counts_.emplace(ordered[i].key, ordered[i]);
  }
}

std::uint64_t SpaceSavingSketch::error_bound() const {
  return total_weight_ / static_cast<std::uint64_t>(capacity_) +
         merged_error_floor_;
}

}  // namespace failmine::stream
