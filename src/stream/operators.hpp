// failmine/stream/operators.hpp
//
// Incremental operators maintaining the paper's headline statistics over
// an ordered record stream.
//
// Two execution contexts exist in the pipeline:
//  * order-sensitive operators (interruption clustering, rolling windows)
//    run on the router thread, which sees the whole stream in watermark
//    order;
//  * order-insensitive, mergeable aggregates (exit breakdown, quantile
//    and heavy-hitter sketches, severity totals) run sharded — each shard
//    owns a ShardAggregates updated from its partition of the stream, and
//    snapshots merge the partials.
// Batch/stream parity anchors correctness: on the same trace the
// streaming exit breakdown and interruption count equal the
// JointAnalyzer's batch results exactly; sketched statistics carry
// documented error bounds instead.

#pragma once

#include <array>
#include <cstdint>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "core/event_filter.hpp"
#include "core/joint_analyzer.hpp"
#include "core/mtti.hpp"
#include "stream/heavy_hitters.hpp"
#include "stream/quantile_sketch.hpp"
#include "stream/record.hpp"
#include "topology/machine.hpp"

namespace failmine::stream {

/// Streaming E02: per-exit-class job and core-hour totals. Pure counting,
/// so shard partials merge into the exact batch answer.
class ExitBreakdownAccumulator {
 public:
  void add(const joblog::JobRecord& job, const topology::MachineConfig& machine);
  void merge(const ExitBreakdownAccumulator& other);

  /// Same row structure, ordering and share conventions as
  /// JointAnalyzer::exit_breakdown().
  core::ExitBreakdown finalize() const;

  std::uint64_t total_jobs() const { return total_jobs_; }
  std::uint64_t total_failures() const { return total_failures_; }
  double total_core_hours() const;

 private:
  static constexpr std::size_t kClasses = std::size(joblog::kAllExitClasses);
  std::array<std::uint64_t, kClasses> jobs_{};
  std::array<double, kClasses> core_hours_{};
  std::uint64_t total_jobs_ = 0;
  std::uint64_t total_failures_ = 0;
  std::uint64_t user_caused_ = 0;
  std::uint64_t system_caused_ = 0;
};

/// A trailing-window counter ring: counts bucketed by absolute bucket
/// index (event_time / bucket_seconds), so expiry needs no per-record
/// bookkeeping — a slot is lazily reset when its index is reclaimed.
/// `Columns` independent counts are kept per bucket (exit classes,
/// severities, ...).
template <std::size_t Columns>
class RollingWindow {
 public:
  RollingWindow(std::int64_t bucket_seconds, std::size_t bucket_count)
      : bucket_seconds_(bucket_seconds), buckets_(bucket_count) {}

  void add(util::UnixSeconds t, std::size_t column, std::uint64_t n = 1) {
    const std::int64_t idx = bucket_index(t);
    Bucket& b = buckets_[slot(idx)];
    if (b.index != idx) {
      b.index = idx;
      b.counts.fill(0);
    }
    b.counts[column] += n;
  }

  /// Sum of `column` over buckets inside the trailing window ending at
  /// `now` (buckets older than the ring span are excluded even if a stale
  /// slot still holds them).
  std::array<std::uint64_t, Columns> totals(util::UnixSeconds now) const {
    std::array<std::uint64_t, Columns> out{};
    const std::int64_t newest = bucket_index(now);
    const std::int64_t oldest =
        newest - static_cast<std::int64_t>(buckets_.size()) + 1;
    for (const Bucket& b : buckets_) {
      if (b.index < oldest || b.index > newest) continue;
      for (std::size_t c = 0; c < Columns; ++c) out[c] += b.counts[c];
    }
    return out;
  }

  std::int64_t window_seconds() const {
    return bucket_seconds_ * static_cast<std::int64_t>(buckets_.size());
  }

 private:
  struct Bucket {
    std::int64_t index = std::numeric_limits<std::int64_t>::min();
    std::array<std::uint64_t, Columns> counts{};
  };

  std::int64_t bucket_index(util::UnixSeconds t) const {
    // Floor division (event times can precede the epoch in tests).
    std::int64_t q = t / bucket_seconds_;
    if (t % bucket_seconds_ < 0) --q;
    return q;
  }
  std::size_t slot(std::int64_t idx) const {
    const auto m = static_cast<std::int64_t>(buckets_.size());
    return static_cast<std::size_t>(((idx % m) + m) % m);
  }

  std::int64_t bucket_seconds_;
  std::vector<Bucket> buckets_;
};

/// Streaming E07/E08: single-pass similarity clustering of FATAL (or
/// configured-severity) RAS events, replicating core::filter_events's
/// greedy join order exactly, so the streamed interruption count matches
/// the batch filter on the same ordered stream.
class StreamingInterruptions {
 public:
  explicit StreamingInterruptions(core::FilterConfig config);

  /// Feeds one RAS event (any severity; mismatches are ignored). Events
  /// must arrive in the stream's watermark order.
  void add(const raslog::RasEvent& event);

  std::uint64_t input_events() const { return input_events_; }
  std::uint64_t interruptions() const { return first_times_.size(); }

  /// MTTI over [begin, end), matching core::compute_mtti on the batch
  /// filter's clusters.
  core::MttiResult mtti(util::UnixSeconds begin, util::UnixSeconds end) const;

  const core::FilterConfig& config() const { return config_; }

 private:
  struct OpenCluster {
    raslog::RasEvent representative;
    util::UnixSeconds last_time = 0;
  };

  core::FilterConfig config_;
  std::vector<OpenCluster> open_;          ///< creation order, expired lazily
  std::vector<util::UnixSeconds> first_times_;  ///< one per cluster, in order
  std::uint64_t input_events_ = 0;
};

/// The mergeable per-shard aggregate bank.
struct ShardAggregates {
  ShardAggregates(const topology::MachineConfig& machine_config,
                  double quantile_epsilon, std::size_t heavy_hitter_capacity);

  void apply(const StreamRecord& record);
  void merge(const ShardAggregates& other);

  topology::MachineConfig machine;
  std::array<std::uint64_t, kRecordSourceCount> records_by_source{};
  ExitBreakdownAccumulator exits;
  GkQuantileSketch runtime_sketch;           ///< job runtimes, seconds
  SpaceSavingSketch users_by_failures;       ///< streaming E03
  SpaceSavingSketch projects_by_failures;
  SpaceSavingSketch boards_by_events;        ///< weak-board detection (T-D)
  std::array<std::uint64_t, 3> severity_totals{};  ///< INFO, WARN, FATAL
  std::uint64_t task_failures = 0;
  std::uint64_t io_bytes_total = 0;
};

/// Packs a node-board location into the space-saving key space (and back
/// out for display): rack row/column, midplane, board.
std::uint64_t board_key(const topology::Location& location);
std::string board_key_name(std::uint64_t key);

}  // namespace failmine::stream
