// failmine/stream/record.hpp
//
// The unified event type flowing through the streaming pipeline.
//
// A live Mira-style feed interleaves records from all four log sources
// (Cobalt job completions, runjob task completions, RAS events, Darshan
// I/O summaries). A StreamRecord tags one payload with its event time —
// the instant the record becomes knowable (a job record exists only once
// the job has ended and its exit status is recorded) — plus a sequence
// number assigned by the emitter that provides a stable total order for
// tie-breaking and for restoring the original order after bounded
// out-of-order delivery.

#pragma once

#include <cstdint>
#include <variant>

#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "tasklog/task.hpp"
#include "util/time.hpp"

namespace failmine::stream {

/// Which log source a record came from (indexes per-source counters).
enum class RecordSource { kJob = 0, kTask = 1, kRas = 2, kIo = 3 };

inline constexpr std::size_t kRecordSourceCount = 4;

struct StreamRecord {
  util::UnixSeconds time = 0;   ///< event time (not arrival time)
  std::uint64_t sequence = 0;   ///< emitter-assigned total-order tie-break
  std::variant<joblog::JobRecord, tasklog::TaskRecord, raslog::RasEvent,
               iolog::IoRecord>
      payload;
  /// Causal-trace ref from obs::CausalTracer::maybe_begin (0 for the
  /// ~99% of records that are not sampled). Declared last so existing
  /// `{time, sequence, payload}` aggregate initializers stay valid.
  std::uint32_t trace = 0;

  RecordSource source() const {
    return static_cast<RecordSource>(payload.index());
  }
};

/// SplitMix64 finalizer — cheap, well-mixed hash for shard routing.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The record's shard routing key: user hash for job records, owning-job
/// hash for task and I/O records (so a job's records land together), and
/// location (rack/midplane/board) hash for RAS events.
inline std::uint64_t shard_key(const StreamRecord& record) {
  switch (record.source()) {
    case RecordSource::kJob:
      return mix64(std::get<joblog::JobRecord>(record.payload).user_id);
    case RecordSource::kTask:
      return mix64(std::get<tasklog::TaskRecord>(record.payload).job_id);
    case RecordSource::kIo:
      return mix64(std::get<iolog::IoRecord>(record.payload).job_id);
    case RecordSource::kRas: {
      const auto& loc = std::get<raslog::RasEvent>(record.payload).location;
      std::uint64_t packed = (static_cast<std::uint64_t>(loc.rack_row()) << 24) |
                             (static_cast<std::uint64_t>(loc.rack_column()) << 16);
      if (loc.level() >= topology::Level::kMidplane)
        packed |= static_cast<std::uint64_t>(loc.midplane()) << 8;
      if (loc.level() >= topology::Level::kNodeBoard)
        packed |= static_cast<std::uint64_t>(loc.board());
      return mix64(packed);
    }
  }
  return 0;  // unreachable
}

inline std::size_t shard_of(const StreamRecord& record,
                            std::size_t shard_count) {
  return shard_count <= 1
             ? 0
             : static_cast<std::size_t>(shard_key(record) % shard_count);
}

}  // namespace failmine::stream
