#include "stream/pipeline.hpp"

#include <pthread.h>

#include <algorithm>
#include <cstdio>

#include "obs/causal.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::stream {

namespace {

/// Names the calling thread (<=15 chars + NUL, the pthread limit) and
/// registers it with the sampling profiler, so folded stacks from
/// obs::profile carry pipeline-role identity ("fm.shard3;...").
void name_and_attach(const char* name) {
  (void)::pthread_setname_np(::pthread_self(), name);
  obs::profile_attach_this_thread();
}

/// Microsecond bounds for the per-shard batch-apply latency histograms.
std::vector<double> stage_latency_bounds() {
  return {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000};
}

/// Causal-trace stage indices, matching the stage list the pipeline
/// constructor hands to obs::causal_tracer().configure(). Stage 0
/// (emit) is stamped by maybe_begin itself.
enum CausalStage : std::size_t {
  kCausalEmit = 0,     ///< record accepted into the ingest ring
  kCausalRing = 1,     ///< router popped it off the ring
  kCausalReorder = 2,  ///< watermark reorderer released it in order
  kCausalShard = 3,    ///< shard worker dequeued it
  kCausalApply = 4,    ///< incremental aggregates applied it
};

std::vector<std::string> causal_stage_names() {
  return {"emit", "ring", "reorder", "shard", "apply"};
}

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

StreamPipeline::RouterState::RouterState(const StreamConfig& config)
    : interruptions(config.filter),
      job_window(config.window_bucket_seconds, config.window_buckets),
      severity_window(config.window_bucket_seconds, config.window_buckets) {}

StreamPipeline::Shard::Shard(const StreamConfig& config, std::size_t index,
                             const std::vector<obs::MetricLabel>& labels)
    : queue(config.queue_capacity, BackpressurePolicy::kBlock),
      aggregates(config.machine, config.quantile_epsilon,
                 config.heavy_hitter_capacity) {
  const std::string prefix = "stream.shard" + std::to_string(index);
  apply_us = &obs::metrics().histogram(prefix + ".apply_us", labels,
                                       stage_latency_bounds());
  processed_counter = &obs::metrics().counter(prefix + ".processed", labels);
  queue.set_occupancy_gauge(
      &obs::metrics().gauge(prefix + ".occupancy", labels));
}

StreamPipeline::StreamPipeline(StreamConfig config)
    : config_(std::move(config)),
      ingest_(config_.queue_capacity, config_.policy),
      router_(config_) {
  if (config_.shard_count == 0)
    throw failmine::DomainError("StreamConfig.shard_count must be positive");
  if (config_.dispatch_batch == 0)
    throw failmine::DomainError("StreamConfig.dispatch_batch must be positive");
  if (config_.window_bucket_seconds <= 0 || config_.window_buckets == 0)
    throw failmine::DomainError("StreamConfig rolling window must be non-empty");
  if (config_.watchdog_grace_ms > 0 && config_.watchdog_poll_ms <= 0)
    throw failmine::DomainError(
        "StreamConfig.watchdog_poll_ms must be positive");

  if (!config_.twin.empty()) labels_.push_back({"twin", config_.twin});

  // Resolve every pipeline-wide instrument once, twin label applied.
  // Doing it up front also means time-series scrapes (obs::tsdb) see
  // them from the very first sample — the reconciliation guarantee for
  // rate(stream.records_processed) needs a zero baseline captured
  // before any batch lands.
  obs::MetricsRegistry& reg = obs::metrics();
  inst_.records_in = &reg.counter("stream.records_in", labels_);
  inst_.records_dropped = &reg.counter("stream.records_dropped", labels_);
  inst_.records_late = &reg.counter("stream.records_late", labels_);
  inst_.records_processed = &reg.counter("stream.records_processed", labels_);
  inst_.window_failure_rate =
      &reg.gauge("stream.window.failure_rate", labels_);
  inst_.window_fatal = &reg.gauge("stream.window.fatal", labels_);
  inst_.queue_depth = &reg.gauge("stream.queue_depth", labels_);
  inst_.watermark_lag = &reg.gauge("stream.watermark_lag_s", labels_);
  inst_.reorder_buffered = &reg.gauge("stream.reorder.buffered", labels_);
  inst_.stalled_shards = &reg.gauge("stream.stalled_shards", labels_);
  inst_.shard_stalls = &reg.counter("stream.shard_stalls", labels_);
  inst_.router_batch_us = &reg.histogram(
      "stream.router.batch_us", labels_,
      {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000});
  ingest_.set_occupancy_gauge(&reg.gauge("stream.ingest.occupancy", labels_));

  // (Re)arm the process-wide causal tracer before any thread can stamp:
  // thread creation below publishes the tracer's internal pointers. A
  // fleet configures it once itself and clears configure_tracer on its
  // member pipelines.
  if (config_.configure_tracer)
    obs::causal_tracer().configure(causal_stage_names(),
                                   config_.trace_sample_period);

  shards_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>(config_, i, labels_));
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->worker = std::thread(
        [this, s = shards_[i].get(), i] { worker_loop(*s, i); });
  router_thread_ = std::thread([this] { router_loop(); });
  if (config_.watchdog_grace_ms > 0)
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });

  obs::logger().info(
      "stream.pipeline_started",
      {obs::Field("shards", static_cast<std::int64_t>(config_.shard_count)),
       obs::Field("queue_capacity",
                  static_cast<std::int64_t>(config_.queue_capacity)),
       obs::Field("policy", backpressure_policy_name(config_.policy)),
       obs::Field("max_lateness_s", config_.max_lateness_seconds)});
}

StreamPipeline::~StreamPipeline() { finish(); }

bool StreamPipeline::push(StreamRecord record) {
  // Sampling keys on the emitter-assigned sequence: stable across runs,
  // unique across sources. Not sampled (the common case) costs one hash
  // and one branch.
  record.trace = obs::causal_tracer().maybe_begin(record.sequence);
  const bool accepted = ingest_.push(std::move(record));
  if (accepted)
    inst_.records_in->add();
  else
    inst_.records_dropped->add();
  return accepted;
}

std::size_t StreamPipeline::push_batch(std::vector<StreamRecord>&& records) {
  const std::size_t offered = records.size();
  for (StreamRecord& record : records)
    record.trace = obs::causal_tracer().maybe_begin(record.sequence);
  const std::size_t accepted = ingest_.push_batch(std::move(records));
  inst_.records_in->add(accepted);
  inst_.records_dropped->add(offered - accepted);
  return accepted;
}

void StreamPipeline::route_ordered(
    StreamRecord&& record, std::vector<std::vector<StreamRecord>>& pending) {
  // Caller holds router_mutex_: the record arrives here in watermark
  // order, so the order-sensitive operators see the sorted stream.
  switch (record.source()) {
    case RecordSource::kJob: {
      const auto& job = std::get<joblog::JobRecord>(record.payload);
      if (!router_.any_event) {
        router_.window_begin = job.submit_time;
        router_.window_end = job.end_time;
        router_.any_event = true;
      } else {
        router_.window_begin = std::min(router_.window_begin, job.submit_time);
        router_.window_end = std::max(router_.window_end, job.end_time);
      }
      router_.job_window.add(record.time, 0);
      if (job.failed()) router_.job_window.add(record.time, 1);
      break;
    }
    case RecordSource::kRas: {
      const auto& event = std::get<raslog::RasEvent>(record.payload);
      if (!router_.any_event) {
        router_.window_begin = event.timestamp;
        router_.window_end = event.timestamp + 1;
        router_.any_event = true;
      } else {
        router_.window_begin = std::min(router_.window_begin, event.timestamp);
        router_.window_end = std::max(router_.window_end, event.timestamp + 1);
      }
      router_.severity_window.add(record.time,
                                  static_cast<std::size_t>(event.severity));
      router_.interruptions.add(event);
      break;
    }
    case RecordSource::kTask:
    case RecordSource::kIo:
      break;  // nothing order-sensitive; the batch window ignores these too
  }
  if (config_.router_operator) config_.router_operator->observe(record);
  if (record.trace != 0)
    obs::causal_tracer().stamp(record.trace, kCausalReorder);
  const std::size_t shard = shard_of(record, shards_.size());
  pending[shard].push_back(std::move(record));
}

void StreamPipeline::dispatch(std::vector<std::vector<StreamRecord>>& pending,
                              bool force) {
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].empty()) continue;
    if (!force && pending[i].size() < config_.dispatch_batch) continue;
    // Shard queues block, so every accepted record reaches its worker.
    shards_[i]->queue.push_batch(std::move(pending[i]));
  }
}

void StreamPipeline::router_loop() {
  name_and_attach("fm.router");
  WatermarkReorderer reorderer(config_.max_lateness_seconds);
  std::vector<std::vector<StreamRecord>> pending(shards_.size());
  std::vector<StreamRecord> batch;
  batch.reserve(config_.dispatch_batch);

  for (;;) {
    batch.clear();
    const std::size_t n = ingest_.pop_batch(batch, config_.dispatch_batch);
    if (n == 0) break;  // closed and drained
    const auto batch_start = std::chrono::steady_clock::now();
    {
      FAILMINE_TRACE_SPAN("stream.router.batch");
      std::lock_guard<std::mutex> lock(router_mutex_);
      for (StreamRecord& record : batch) {
        if (record.trace != 0)
          obs::causal_tracer().stamp(record.trace, kCausalRing);
        reorderer.push(std::move(record), [&](StreamRecord&& ordered) {
          route_ordered(std::move(ordered), pending);
        });
      }
      router_.newest_seen = reorderer.newest_seen();
      router_.watermark = reorderer.watermark();
      router_.watermark_lag_seconds = reorderer.lag_seconds();
      inst_.records_late->add(reorderer.late_records() -
                                 router_.late_records);
      router_.late_records = reorderer.late_records();

      // Rolling-window health gauges: the E01 failure-rate and FATAL
      // pressure trends, refreshed per batch so the time-series store
      // captures them as they evolve instead of only at snapshot time.
      const auto jobs = router_.job_window.totals(router_.newest_seen);
      inst_.window_failure_rate->set(
          jobs[0] > 0
              ? static_cast<double>(jobs[1]) / static_cast<double>(jobs[0])
              : 0.0);
      inst_.window_fatal->set(static_cast<double>(
          router_.severity_window.totals(router_.newest_seen)[2]));
    }
    dispatch(pending, /*force=*/false);
    inst_.router_batch_us->observe(elapsed_us(batch_start));

    std::size_t depth = ingest_.size();
    for (const auto& shard : shards_) depth += shard->queue.size();
    inst_.queue_depth->set(static_cast<double>(depth));
    inst_.watermark_lag->set(
        static_cast<double>(reorderer.lag_seconds()));
    inst_.reorder_buffered->set(static_cast<double>(reorderer.buffered()));
  }

  {
    std::lock_guard<std::mutex> lock(router_mutex_);
    reorderer.flush([&](StreamRecord&& ordered) {
      route_ordered(std::move(ordered), pending);
    });
    router_.watermark = reorderer.newest_seen();
    router_.watermark_lag_seconds = 0;
    if (config_.router_operator) config_.router_operator->finish();
  }
  dispatch(pending, /*force=*/true);
  for (auto& shard : shards_) shard->queue.close();
  inst_.watermark_lag->set(0.0);
  inst_.reorder_buffered->set(0.0);
}

void StreamPipeline::worker_loop(Shard& shard, std::size_t index) {
  char name[16];
  std::snprintf(name, sizeof(name), "fm.shard%zu", index);
  name_and_attach(name);
  std::vector<StreamRecord> batch;
  batch.reserve(config_.dispatch_batch);
  for (;;) {
    {
      std::unique_lock<std::mutex> pause(shard.pause_mutex);
      shard.pause_cv.wait(pause, [&] { return !shard.paused; });
    }
    batch.clear();
    const std::size_t n = shard.queue.pop_batch(batch, config_.dispatch_batch);
    if (n == 0) break;
    const auto apply_start = std::chrono::steady_clock::now();
    {
      FAILMINE_TRACE_SPAN("stream.shard.apply");
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const StreamRecord& record : batch) {
        if (record.trace != 0)
          obs::causal_tracer().stamp(record.trace, kCausalShard);
        shard.aggregates.apply(record);
        if (record.trace != 0)
          obs::causal_tracer().stamp(record.trace, kCausalApply);
      }
    }
    shard.processed.fetch_add(n, std::memory_order_relaxed);
    shard.apply_us->observe(elapsed_us(apply_start));
    shard.processed_counter->add(n);
    inst_.records_processed->add(n);
  }
}

void StreamPipeline::pause_shard_for_test(std::size_t shard, bool paused) {
  Shard& s = *shards_.at(shard);
  {
    std::lock_guard<std::mutex> lock(s.pause_mutex);
    s.paused = paused;
  }
  s.pause_cv.notify_all();
}

void StreamPipeline::watchdog_loop() {
  name_and_attach("fm.watchdog");
  const auto grace = std::chrono::milliseconds(config_.watchdog_grace_ms);
  const auto poll = std::chrono::milliseconds(config_.watchdog_poll_ms);
  std::vector<std::uint64_t> last_processed(shards_.size(), 0);
  std::vector<std::chrono::steady_clock::time_point> stagnant_since(
      shards_.size(), std::chrono::steady_clock::now());
  std::vector<bool> stalled(shards_.size(), false);

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mutex_);
      if (watchdog_cv_.wait_for(lock, poll, [&] { return watchdog_stop_; }))
        break;
    }
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = *shards_[i];
      const std::uint64_t processed =
          shard.processed.load(std::memory_order_relaxed);
      const std::size_t backlog = shard.queue.size();
      if (processed != last_processed[i] || backlog == 0) {
        // Progress (or nothing owed): the shard is live.
        last_processed[i] = processed;
        stagnant_since[i] = now;
        if (stalled[i]) {
          stalled[i] = false;
          stalled_shards_.fetch_sub(1, std::memory_order_relaxed);
          inst_.stalled_shards->set(
              static_cast<double>(stalled_shards_.load()));
          obs::logger().info(
              "stream.shard_recovered",
              {obs::Field("shard", static_cast<std::uint64_t>(i))});
        }
      } else if (!stalled[i] && now - stagnant_since[i] >= grace) {
        stalled[i] = true;
        stalled_shards_.fetch_add(1, std::memory_order_relaxed);
        inst_.stalled_shards->set(static_cast<double>(stalled_shards_.load()));
        inst_.shard_stalls->add();
        obs::logger().warn(
            "stream.shard_stalled",
            {obs::Field("shard", static_cast<std::uint64_t>(i)),
             obs::Field("queued", static_cast<std::uint64_t>(backlog)),
             obs::Field("grace_ms", config_.watchdog_grace_ms)});
      }
    }
  }
}

void StreamPipeline::finish() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (finished_) return;
  FAILMINE_TRACE_SPAN("stream.finish");
  ingest_.close();
  if (router_thread_.joinable()) router_thread_.join();
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  stalled_shards_.store(0, std::memory_order_relaxed);
  finished_ = true;
  inst_.queue_depth->set(0.0);
  obs::logger().info(
      "stream.pipeline_finished",
      {obs::Field("records_in",
                  static_cast<std::int64_t>(ingest_.pushed())),
       obs::Field("records_dropped",
                  static_cast<std::int64_t>(ingest_.dropped()))});
}

StreamSnapshot StreamPipeline::snapshot() const {
  FAILMINE_TRACE_SPAN("stream.snapshot");
  StreamSnapshot snap;

  ShardAggregates merged(config_.machine, config_.quantile_epsilon,
                         config_.heavy_hitter_capacity);
  std::uint64_t processed = 0;
  std::size_t depth = ingest_.size();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    merged.merge(shard->aggregates);
    processed += shard->processed;
    depth += shard->queue.size();
  }

  snap.records_in = ingest_.pushed();
  snap.records_dropped = ingest_.dropped();
  snap.records_processed = processed;
  snap.records_by_source = merged.records_by_source;
  snap.queue_depth = depth;
  {
    std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
    snap.finished = finished_;
  }

  {
    std::lock_guard<std::mutex> lock(router_mutex_);
    snap.records_late = router_.late_records;
    snap.watermark = router_.watermark;
    snap.watermark_lag_seconds = router_.watermark_lag_seconds;
    snap.window_begin = router_.window_begin;
    snap.window_end = router_.window_end;

    const auto jobs = router_.job_window.totals(router_.newest_seen);
    snap.window_seconds = router_.job_window.window_seconds();
    snap.window_jobs = jobs[0];
    snap.window_failures = jobs[1];
    snap.window_failure_rate =
        jobs[0] > 0 ? static_cast<double>(jobs[1]) / static_cast<double>(jobs[0])
                    : 0.0;
    snap.window_severity = router_.severity_window.totals(router_.newest_seen);

    snap.fatal_input_events = router_.interruptions.input_events();
    snap.interruptions = router_.interruptions.interruptions();
    if (router_.any_event && snap.window_end > snap.window_begin)
      snap.mtti =
          router_.interruptions.mtti(snap.window_begin, snap.window_end);
  }
  snap.span_days = static_cast<double>(snap.window_end - snap.window_begin) /
                   static_cast<double>(util::kSecondsPerDay);

  snap.exit_breakdown = merged.exits.finalize();
  snap.total_core_hours = merged.exits.total_core_hours();
  snap.severity_totals = merged.severity_totals;
  snap.task_failures = merged.task_failures;
  snap.io_bytes_total = merged.io_bytes_total;

  snap.runtime_samples = merged.runtime_sketch.count();
  snap.quantile_epsilon = merged.runtime_sketch.epsilon();
  if (!merged.runtime_sketch.empty()) {
    snap.runtime_p50 = merged.runtime_sketch.quantile(0.50);
    snap.runtime_p90 = merged.runtime_sketch.quantile(0.90);
    snap.runtime_p99 = merged.runtime_sketch.quantile(0.99);
  }

  snap.heavy_hitter_error_bound =
      std::max({merged.users_by_failures.error_bound(),
                merged.projects_by_failures.error_bound(),
                merged.boards_by_events.error_bound()});
  auto numeric_top = [](const SpaceSavingSketch& sketch, const char* prefix) {
    std::vector<TopEntry> out;
    for (const auto& e : sketch.top(10))
      out.push_back({e.key, prefix + std::to_string(e.key), e.count, e.error});
    return out;
  };
  snap.top_users_by_failures = numeric_top(merged.users_by_failures, "user-");
  snap.top_projects_by_failures =
      numeric_top(merged.projects_by_failures, "project-");
  for (const auto& e : merged.boards_by_events.top(10))
    snap.top_boards_by_events.push_back(
        {e.key, board_key_name(e.key), e.count, e.error});

  if (config_.router_operator)
    snap.sections.emplace_back(config_.router_operator->section_name(),
                               operator_snapshot_json());

  obs::CausalTracer& tracer = obs::causal_tracer();
  snap.trace_sample_period = tracer.sample_period();
  if (tracer.enabled()) {
    snap.traces_sampled = tracer.sampled();
    snap.causal_stages = tracer.stage_stats();
    obs::Histogram& e2e = obs::metrics().histogram("causal.e2e_us");
    obs::HistogramSample e2e_sample;
    e2e_sample.upper_bounds = e2e.upper_bounds();
    e2e_sample.buckets = e2e.bucket_counts();
    snap.causal_e2e_p50_us = obs::histogram_quantile(e2e_sample, 0.50);
    snap.causal_e2e_p99_us = obs::histogram_quantile(e2e_sample, 0.99);
  }

  return snap;
}

SpaceSavingSketch StreamPipeline::users_by_failures_sketch() const {
  SpaceSavingSketch merged(config_.heavy_hitter_capacity);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    merged.merge(shard->aggregates.users_by_failures);
  }
  return merged;
}

std::string StreamPipeline::operator_snapshot_json() const {
  if (!config_.router_operator) return std::string();
  std::lock_guard<std::mutex> lock(router_mutex_);
  return config_.router_operator->snapshot_json();
}

}  // namespace failmine::stream
