#include "stream/snapshot.hpp"

#include "joblog/exit_status.hpp"
#include "obs/json.hpp"
#include "raslog/severity.hpp"

namespace failmine::stream {

namespace {

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true) {
  obs::append_json_string(out, key);
  out += ':';
  out += std::to_string(v);
  if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, double v,
               bool comma = true) {
  obs::append_json_string(out, key);
  out += ':';
  out += obs::json_number(v);
  if (comma) out += ',';
}

void append_severity_array(std::string& out, const char* key,
                           const std::array<std::uint64_t, 3>& counts) {
  obs::append_json_string(out, key);
  out += ":{";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    obs::append_json_string(out,
                            raslog::severity_name(raslog::kAllSeverities[i]));
    out += ':';
    out += std::to_string(counts[i]);
    if (i + 1 < counts.size()) out += ',';
  }
  out += '}';
}

void append_top_entries(std::string& out, const char* key,
                        const std::vector<TopEntry>& entries) {
  obs::append_json_string(out, key);
  out += ":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TopEntry& e = entries[i];
    out += '{';
    obs::append_json_string(out, "key");
    out += ':';
    obs::append_json_string(out, e.label);
    out += ',';
    append_kv(out, "count", e.count);
    append_kv(out, "error", e.error, /*comma=*/false);
    out += '}';
    if (i + 1 < entries.size()) out += ',';
  }
  out += ']';
}

}  // namespace

std::string StreamSnapshot::to_json() const {
  std::string out;
  out.reserve(2048);
  out += '{';

  obs::append_json_string(out, "ingest");
  out += ":{";
  append_kv(out, "records_in", records_in);
  append_kv(out, "records_processed", records_processed);
  append_kv(out, "records_dropped", records_dropped);
  append_kv(out, "records_late", records_late);
  append_kv(out, "jobs", records_by_source[0]);
  append_kv(out, "tasks", records_by_source[1]);
  append_kv(out, "ras_events", records_by_source[2]);
  append_kv(out, "io_records", records_by_source[3]);
  append_kv(out, "watermark", static_cast<std::uint64_t>(
                                  watermark < 0 ? 0 : watermark));
  append_kv(out, "watermark_lag_s",
            static_cast<std::uint64_t>(
                watermark_lag_seconds < 0 ? 0 : watermark_lag_seconds));
  append_kv(out, "queue_depth", static_cast<std::uint64_t>(queue_depth));
  obs::append_json_string(out, "finished");
  out += finished ? ":true" : ":false";
  out += "},";

  obs::append_json_string(out, "window");
  out += ":{";
  append_kv(out, "begin", static_cast<std::uint64_t>(window_begin));
  append_kv(out, "end", static_cast<std::uint64_t>(window_end));
  append_kv(out, "span_days", span_days, /*comma=*/false);
  out += "},";

  obs::append_json_string(out, "exit_breakdown");
  out += ":{";
  append_kv(out, "total_jobs", exit_breakdown.total_jobs);
  append_kv(out, "total_failures", exit_breakdown.total_failures);
  append_kv(out, "user_caused_share", exit_breakdown.user_caused_share);
  append_kv(out, "system_caused_share", exit_breakdown.system_caused_share);
  append_kv(out, "total_core_hours", total_core_hours);
  obs::append_json_string(out, "classes");
  out += ":{";
  for (std::size_t i = 0; i < exit_breakdown.rows.size(); ++i) {
    const auto& row = exit_breakdown.rows[i];
    obs::append_json_string(out, joblog::exit_class_name(row.exit_class));
    out += ":{";
    append_kv(out, "jobs", row.jobs);
    append_kv(out, "core_hours", row.core_hours);
    append_kv(out, "share_of_jobs", row.share_of_jobs);
    append_kv(out, "share_of_failures", row.share_of_failures,
              /*comma=*/false);
    out += '}';
    if (i + 1 < exit_breakdown.rows.size()) out += ',';
  }
  out += "}},";

  obs::append_json_string(out, "rolling_window");
  out += ":{";
  append_kv(out, "window_seconds", static_cast<std::uint64_t>(window_seconds));
  append_kv(out, "jobs", window_jobs);
  append_kv(out, "failures", window_failures);
  append_kv(out, "failure_rate", window_failure_rate);
  append_severity_array(out, "severity", window_severity);
  out += "},";

  append_severity_array(out, "severity_totals", severity_totals);
  out += ',';

  obs::append_json_string(out, "interruptions");
  out += ":{";
  append_kv(out, "fatal_input_events", fatal_input_events);
  append_kv(out, "count", interruptions);
  append_kv(out, "mtti_days", mtti.mtti_days);
  append_kv(out, "mean_interval_days", mtti.mean_interval_days);
  append_kv(out, "median_interval_days", mtti.median_interval_days,
            /*comma=*/false);
  out += "},";

  obs::append_json_string(out, "runtime_quantiles");
  out += ":{";
  append_kv(out, "samples", runtime_samples);
  append_kv(out, "epsilon", quantile_epsilon);
  append_kv(out, "p50_seconds", runtime_p50);
  append_kv(out, "p90_seconds", runtime_p90);
  append_kv(out, "p99_seconds", runtime_p99, /*comma=*/false);
  out += "},";

  obs::append_json_string(out, "heavy_hitters");
  out += ":{";
  append_kv(out, "error_bound", heavy_hitter_error_bound);
  append_top_entries(out, "users_by_failures", top_users_by_failures);
  out += ',';
  append_top_entries(out, "projects_by_failures", top_projects_by_failures);
  out += ',';
  append_top_entries(out, "boards_by_events", top_boards_by_events);
  out += "},";

  append_kv(out, "task_failures", task_failures);
  append_kv(out, "io_bytes_total", io_bytes_total);

  obs::append_json_string(out, "causal");
  out += ":{";
  append_kv(out, "sample_period", static_cast<std::uint64_t>(trace_sample_period));
  append_kv(out, "sampled", traces_sampled);
  append_kv(out, "e2e_p50_us", causal_e2e_p50_us);
  append_kv(out, "e2e_p99_us", causal_e2e_p99_us);
  obs::append_json_string(out, "stages");
  out += ":[";
  for (std::size_t i = 0; i < causal_stages.size(); ++i) {
    const obs::CausalStageStat& s = causal_stages[i];
    out += '{';
    obs::append_json_string(out, "stage");
    out += ':';
    obs::append_json_string(out, s.stage);
    out += ',';
    append_kv(out, "count", s.count);
    append_kv(out, "p50_us", s.p50_us);
    append_kv(out, "p99_us", s.p99_us);
    append_kv(out, "mean_us", s.mean_us);
    append_kv(out, "share", s.share, /*comma=*/false);
    out += '}';
    if (i + 1 < causal_stages.size()) out += ',';
  }
  out += "]}";

  for (const auto& [name, json] : sections) {
    out += ',';
    obs::append_json_string(out, name);
    out += ':';
    out += json.empty() ? "{}" : json;
  }

  out += "}\n";
  return out;
}

}  // namespace failmine::stream
