// failmine/stream/router_operator.hpp
//
// Extension point for order-sensitive operators that are composed into
// the pipeline from outside the stream library (the failure predictor in
// src/predict is the first user). The router calls observe() for every
// record *after* watermark reordering, so an operator sees the exact
// event-time order a batch pass over the same records would — the basis
// for the batch/stream parity guarantees downstream subsystems rely on.
//
// Threading contract: observe(), finish() and snapshot_json() are all
// invoked under the pipeline's router mutex (observe/finish from the
// router thread, snapshot_json from whichever thread asks for a
// snapshot), so implementations need no internal synchronization as long
// as they are only touched through the pipeline. Use
// StreamPipeline::operator_snapshot_json() for live access from other
// threads; direct method calls are only safe once finish() has returned.

#pragma once

#include <string>

namespace failmine::stream {

struct StreamRecord;

class RouterOperator {
 public:
  virtual ~RouterOperator() = default;

  /// One record in watermark (event-time) order.
  virtual void observe(const StreamRecord& record) = 0;

  /// End of stream: flush any pending windows so the next snapshot is
  /// exact. Called once, after the reorder buffer has drained.
  virtual void finish() = 0;

  /// Key under which snapshot_json() is spliced into StreamSnapshot's
  /// JSON (must be a valid, unique JSON key).
  virtual std::string section_name() const = 0;

  /// Point-in-time state as one JSON object (no trailing newline).
  virtual std::string snapshot_json() const = 0;
};

}  // namespace failmine::stream
