#include "stream/operators.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::stream {

namespace {

obs::Counter& interruptions_opened_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("stream.interruptions_opened");
  return counter;
}

std::size_t class_index(joblog::ExitClass cls) {
  for (std::size_t i = 0; i < std::size(joblog::kAllExitClasses); ++i)
    if (joblog::kAllExitClasses[i] == cls) return i;
  throw failmine::DomainError("unknown exit class");
}

}  // namespace

// ---- ExitBreakdownAccumulator ----------------------------------------

void ExitBreakdownAccumulator::add(const joblog::JobRecord& job,
                                   const topology::MachineConfig& machine) {
  const std::size_t idx = class_index(job.exit_class);
  ++jobs_[idx];
  core_hours_[idx] += job.core_hours(machine);
  ++total_jobs_;
  if (job.failed()) {
    ++total_failures_;
    if (joblog::is_user_caused(job.exit_class)) ++user_caused_;
    if (joblog::is_system_caused(job.exit_class)) ++system_caused_;
  }
}

void ExitBreakdownAccumulator::merge(const ExitBreakdownAccumulator& other) {
  for (std::size_t i = 0; i < kClasses; ++i) {
    jobs_[i] += other.jobs_[i];
    core_hours_[i] += other.core_hours_[i];
  }
  total_jobs_ += other.total_jobs_;
  total_failures_ += other.total_failures_;
  user_caused_ += other.user_caused_;
  system_caused_ += other.system_caused_;
}

core::ExitBreakdown ExitBreakdownAccumulator::finalize() const {
  core::ExitBreakdown b;
  b.total_jobs = total_jobs_;
  b.total_failures = total_failures_;
  for (std::size_t i = 0; i < kClasses; ++i) {
    if (jobs_[i] == 0) continue;
    core::ExitBreakdownRow row;
    row.exit_class = joblog::kAllExitClasses[i];
    row.jobs = jobs_[i];
    row.core_hours = core_hours_[i];
    row.share_of_jobs =
        static_cast<double>(row.jobs) / static_cast<double>(total_jobs_);
    row.share_of_failures =
        joblog::is_failure(row.exit_class) && total_failures_ > 0
            ? static_cast<double>(row.jobs) /
                  static_cast<double>(total_failures_)
            : 0.0;
    b.rows.push_back(row);
  }
  if (total_failures_ > 0) {
    b.user_caused_share = static_cast<double>(user_caused_) /
                          static_cast<double>(total_failures_);
    b.system_caused_share = static_cast<double>(system_caused_) /
                            static_cast<double>(total_failures_);
  }
  return b;
}

double ExitBreakdownAccumulator::total_core_hours() const {
  double total = 0.0;
  for (double h : core_hours_) total += h;
  return total;
}

// ---- StreamingInterruptions ------------------------------------------

StreamingInterruptions::StreamingInterruptions(core::FilterConfig config)
    : config_(std::move(config)) {
  if (config_.window_seconds < 0)
    throw failmine::DomainError("filter window must be non-negative");
}

void StreamingInterruptions::add(const raslog::RasEvent& event) {
  if (event.severity != config_.severity) return;
  ++input_events_;

  // Mirror of core::filter_events: expire open clusters whose last
  // member fell out of the sliding window, then join the most recently
  // opened similar cluster, else open a new one.
  std::erase_if(open_, [&](const OpenCluster& c) {
    return c.last_time < event.timestamp - config_.window_seconds;
  });
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (core::spatially_similar(it->representative, event, config_)) {
      it->last_time = event.timestamp;
      return;
    }
  }
  OpenCluster c;
  c.representative = event;
  c.last_time = event.timestamp;
  open_.push_back(std::move(c));
  first_times_.push_back(event.timestamp);
  interruptions_opened_counter().add(1);
}

core::MttiResult StreamingInterruptions::mtti(util::UnixSeconds begin,
                                              util::UnixSeconds end) const {
  if (end <= begin) throw failmine::DomainError("empty observation window");
  core::MttiResult r;
  r.span_days = static_cast<double>(end - begin) /
                static_cast<double>(util::kSecondsPerDay);
  std::vector<util::UnixSeconds> times;
  times.reserve(first_times_.size());
  for (util::UnixSeconds t : first_times_)
    if (t >= begin && t < end) times.push_back(t);
  r.interruptions = times.size();
  if (times.empty()) {
    r.mtti_days = r.span_days;  // censored, as in core::compute_mtti
    return r;
  }
  r.mtti_days = r.span_days / static_cast<double>(times.size());
  for (std::size_t i = 1; i < times.size(); ++i)
    r.intervals_days.push_back(static_cast<double>(times[i] - times[i - 1]) /
                               static_cast<double>(util::kSecondsPerDay));
  if (!r.intervals_days.empty()) {
    r.mean_interval_days = stats::mean(r.intervals_days);
    r.median_interval_days = stats::median(r.intervals_days);
  }
  return r;
}

// ---- ShardAggregates --------------------------------------------------

ShardAggregates::ShardAggregates(const topology::MachineConfig& machine_config,
                                 double quantile_epsilon,
                                 std::size_t heavy_hitter_capacity)
    : machine(machine_config),
      runtime_sketch(quantile_epsilon),
      users_by_failures(heavy_hitter_capacity),
      projects_by_failures(heavy_hitter_capacity),
      boards_by_events(heavy_hitter_capacity) {}

void ShardAggregates::apply(const StreamRecord& record) {
  ++records_by_source[static_cast<std::size_t>(record.source())];
  switch (record.source()) {
    case RecordSource::kJob: {
      const auto& job = std::get<joblog::JobRecord>(record.payload);
      exits.add(job, machine);
      runtime_sketch.insert(static_cast<double>(job.runtime_seconds()));
      if (job.failed()) {
        users_by_failures.add(job.user_id);
        projects_by_failures.add(job.project_id);
      }
      break;
    }
    case RecordSource::kTask: {
      const auto& task = std::get<tasklog::TaskRecord>(record.payload);
      if (task.failed()) ++task_failures;
      break;
    }
    case RecordSource::kRas: {
      const auto& event = std::get<raslog::RasEvent>(record.payload);
      ++severity_totals[static_cast<std::size_t>(event.severity)];
      boards_by_events.add(board_key(event.location));
      break;
    }
    case RecordSource::kIo: {
      const auto& io = std::get<iolog::IoRecord>(record.payload);
      io_bytes_total += io.total_bytes();
      break;
    }
  }
}

void ShardAggregates::merge(const ShardAggregates& other) {
  for (std::size_t i = 0; i < kRecordSourceCount; ++i)
    records_by_source[i] += other.records_by_source[i];
  exits.merge(other.exits);
  runtime_sketch.merge(other.runtime_sketch);
  users_by_failures.merge(other.users_by_failures);
  projects_by_failures.merge(other.projects_by_failures);
  boards_by_events.merge(other.boards_by_events);
  for (std::size_t i = 0; i < severity_totals.size(); ++i)
    severity_totals[i] += other.severity_totals[i];
  task_failures += other.task_failures;
  io_bytes_total += other.io_bytes_total;
}

std::uint64_t board_key(const topology::Location& location) {
  const topology::Level effective =
      std::min(location.level(), topology::Level::kNodeBoard);
  const topology::Location board = location.ancestor(effective);
  std::uint64_t key = (static_cast<std::uint64_t>(board.rack_row()) << 16) |
                      (static_cast<std::uint64_t>(board.rack_column()) << 12);
  if (board.level() >= topology::Level::kMidplane)
    key |= static_cast<std::uint64_t>(board.midplane()) << 8;
  if (board.level() >= topology::Level::kNodeBoard)
    key |= static_cast<std::uint64_t>(board.board()) | (1ULL << 20);
  return key;
}

std::string board_key_name(std::uint64_t key) {
  char buf[32];
  if (key & (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "R%d%X-M%d-N%02d",
                  static_cast<int>((key >> 16) & 0xF),
                  static_cast<unsigned>((key >> 12) & 0xF),
                  static_cast<int>((key >> 8) & 0xF),
                  static_cast<int>(key & 0xFF));
  } else {
    std::snprintf(buf, sizeof(buf), "R%d%X-M%d",
                  static_cast<int>((key >> 16) & 0xF),
                  static_cast<unsigned>((key >> 12) & 0xF),
                  static_cast<int>((key >> 8) & 0xF));
  }
  return buf;
}

}  // namespace failmine::stream
