// failmine/stream/pipeline.hpp
//
// The streaming pipeline: bounded ingestion, watermark reordering, and
// sharded incremental analytics.
//
//   producers --> ingest ring --> router thread --> shard queues --> workers
//                 (bounded,       (watermark         (bounded,       (merge-
//                  backpressure)   reorder +          block)          able
//                                  order-sensitive                    aggre-
//                                  operators)                         gates)
//
// The router is the single consumer of the ingest ring. It restores
// bounded out-of-order arrivals to event-time order, runs the
// order-sensitive operators (interruption clustering for streaming MTTI,
// rolling windows) on the ordered stream, and routes each record to a
// shard worker by stable key (user for jobs, owning job for tasks/IO,
// location for RAS) for the mergeable per-record work: exit-class
// accounting, the runtime quantile sketch and the heavy-hitter sketches.
//
// snapshot() is safe to call at any time from any thread; it merges the
// per-shard partials and the router state under their locks, so every
// snapshot is a consistent prefix view. After finish() returns, the
// snapshot is exact over the full input and (under the blocking
// backpressure policy) matches a batch pass over the same records.
//
// Observability: the pipeline feeds the failmine::obs metrics registry —
// counters `stream.records_in`, `stream.records_dropped`,
// `stream.records_late`, `stream.records_processed` (cross-shard total,
// the canonical throughput series for obs::tsdb range queries),
// `stream.shard_stalls`, per-shard `stream.shard<i>.processed`; gauges
// `stream.queue_depth`, `stream.watermark_lag_s`,
// `stream.reorder.buffered`, `stream.stalled_shards`,
// `stream.ingest.occupancy`, rolling-window trends
// `stream.window.failure_rate` / `stream.window.fatal`, per-shard
// `stream.shard<i>.occupancy`; histograms `stream.router.batch_us` and
// per-shard `stream.shard<i>.apply_us`. When StreamConfig.twin is set
// every one of these carries a `twin` label
// (`stream.records_in{twin="t0"}`), so a fleet of pipelines in one
// process keeps disjoint series. A stall watchdog thread watches
// every shard: when a shard's processed counter stops advancing while
// its queue is non-empty for the grace period, the pipeline reports
// unhealthy (healthy() == false — the telemetry server's /healthz turns
// 503) and logs `stream.shard_stalled` until the shard recovers.
//
// Every pipeline thread names itself (pthread_setname_np: "fm.router",
// "fm.shard<i>", "fm.watchdog") and registers with the sampling profiler
// (obs/profile.hpp), and the hot loops run under `stream.router.batch` /
// `stream.shard.apply` spans — so a live `GET /profile` capture yields
// folded stacks keyed by pipeline role and a per-span CPU table that
// names the stream stages.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

#include "core/event_filter.hpp"
#include "stream/operators.hpp"
#include "stream/record.hpp"
#include "stream/ring_buffer.hpp"
#include "stream/router_operator.hpp"
#include "stream/snapshot.hpp"
#include "stream/watermark.hpp"
#include "topology/machine.hpp"

namespace failmine::stream {

struct StreamConfig {
  topology::MachineConfig machine;

  /// Fleet identity. Empty (the default) keeps the legacy bare metric
  /// spellings (`stream.records_in`, ...). Non-empty stamps every
  /// pipeline instrument with a `twin` label
  /// (`stream.records_in{twin="t0"}`), so several pipelines in one
  /// process register disjoint series instead of colliding on shared
  /// counters.
  std::string twin;

  /// Whether the constructor (re)configures the process-wide
  /// obs::causal_tracer(). A fleet configures the tracer once and turns
  /// this off for its member pipelines so twin N does not clobber the
  /// stage table while twin M is stamping.
  bool configure_tracer = true;

  /// Number of shard workers. 1 serializes all aggregate work behind the
  /// router; N partitions it by key hash.
  std::size_t shard_count = 4;

  /// Capacity of the ingest ring and of each shard queue.
  std::size_t queue_capacity = 1 << 14;

  /// What a full ingest ring does to producers. Shard queues always
  /// block: once a record is accepted it is never dropped internally.
  BackpressurePolicy policy = BackpressurePolicy::kBlock;

  /// Bound on out-of-order event-time skew tolerated without reordering
  /// errors. 0 means the input is promised to be in order.
  std::int64_t max_lateness_seconds = 900;

  /// Rolling-window geometry (streaming E01/E02 views): trailing
  /// `window_buckets * window_bucket_seconds` of event time.
  std::int64_t window_bucket_seconds = 3600;
  std::size_t window_buckets = 24;

  /// Interruption filter for streaming MTTI (streaming E08); defaults
  /// match the batch pipeline's FilterConfig defaults.
  core::FilterConfig filter;

  /// Rank-error bound of the runtime quantile sketch.
  double quantile_epsilon = 0.005;

  /// Monitored-key budget of each space-saving sketch.
  std::size_t heavy_hitter_capacity = 64;

  /// Records moved per queue handoff (amortizes locking).
  std::size_t dispatch_batch = 256;

  /// Stall watchdog: a shard whose processed counter stops advancing
  /// while its queue is non-empty for at least this long is reported
  /// stalled. 0 disables the watchdog thread entirely.
  std::int64_t watchdog_grace_ms = 2000;

  /// How often the watchdog samples shard progress.
  std::int64_t watchdog_poll_ms = 100;

  /// Causal-trace sampling: 1-in-N records (deterministic hash of the
  /// record sequence) carries a trace context that is stamped at every
  /// stage (emit -> ring -> reorder -> shard -> apply), feeding the
  /// `causal.stage.<name>_us` / `causal.e2e_us` histograms, their
  /// OpenMetrics exemplars and the /trace endpoint (obs/causal.hpp).
  /// 0 disables tracing entirely (the non-sampled path is one hash and
  /// one branch per record). The pipeline constructor (re)configures the
  /// process-wide obs::causal_tracer() with this period.
  std::uint32_t trace_sample_period = 100;

  /// Optional order-sensitive operator run by the router on the exact
  /// watermark-ordered stream (see router_operator.hpp for the threading
  /// contract). Its snapshot JSON is spliced into StreamSnapshot under
  /// section_name(). The predictor (`--predict`) plugs in here.
  std::shared_ptr<RouterOperator> router_operator;
};

class StreamPipeline {
 public:
  explicit StreamPipeline(StreamConfig config);
  ~StreamPipeline();

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Offers one record. Returns false if backpressure dropped it (only
  /// possible under kDropNewest) or the pipeline is finished.
  bool push(StreamRecord record);

  /// Offers a batch; returns how many records were accepted.
  std::size_t push_batch(std::vector<StreamRecord>&& records);

  /// Drains and stops the pipeline: closes ingestion, flushes the
  /// reorder buffer, joins every thread. Idempotent. After this returns
  /// snapshot() is exact over all accepted records.
  void finish();

  /// Consistent point-in-time view (see header comment).
  StreamSnapshot snapshot() const;

  /// Live JSON snapshot of the attached RouterOperator, taken under the
  /// router mutex (empty string when no operator is configured). This is
  /// the only thread-safe way to read the operator while the pipeline is
  /// running — it backs the telemetry server's /predict endpoint.
  std::string operator_snapshot_json() const;

  /// Stall-watchdog verdict: false while at least one shard has sat on a
  /// non-empty queue without progress for the grace period. Wire this
  /// into obs::TelemetryServer::set_health_handler for a live /healthz.
  bool healthy() const {
    return stalled_shards_.load(std::memory_order_relaxed) == 0;
  }

  /// Test hook: blocks shard `shard`'s worker before its next batch
  /// (true) or releases it (false). Exists to let tests stall a shard
  /// deterministically and watch the watchdog flip healthy() — never
  /// call it in production code.
  void pause_shard_for_test(std::size_t shard, bool paused);

  /// The merged users-by-failures space-saving sketch across all shards
  /// (taken under the shard locks). The fleet layer merges these across
  /// twins for the /fleet cross-fleet heavy-hitter view; the per-twin
  /// guarantees (superset property, error bound) survive the merge.
  SpaceSavingSketch users_by_failures_sketch() const;

  const StreamConfig& config() const { return config_; }

 private:
  struct RouterState {
    RouterState(const StreamConfig& config);

    StreamingInterruptions interruptions;
    RollingWindow<2> job_window;       ///< [0]=jobs ended, [1]=failures
    RollingWindow<3> severity_window;  ///< INFO / WARN / FATAL
    util::UnixSeconds window_begin = 0;
    util::UnixSeconds window_end = 0;
    bool any_event = false;
    util::UnixSeconds newest_seen = 0;
    util::UnixSeconds watermark = 0;
    std::int64_t watermark_lag_seconds = 0;
    std::uint64_t late_records = 0;
  };

  struct Shard {
    Shard(const StreamConfig& config, std::size_t index,
          const std::vector<obs::MetricLabel>& labels);

    RingBuffer<StreamRecord> queue;
    mutable std::mutex mutex;
    ShardAggregates aggregates;
    /// Atomic so the watchdog reads progress without the shard mutex.
    std::atomic<std::uint64_t> processed{0};
    std::thread worker;

    // Per-shard instruments (registry-owned; cached at construction).
    obs::Histogram* apply_us = nullptr;
    obs::Counter* processed_counter = nullptr;

    // Test-only pause gate (see pause_shard_for_test).
    std::mutex pause_mutex;
    std::condition_variable pause_cv;
    bool paused = false;
  };

  /// Pipeline-wide instruments, resolved once at construction with the
  /// twin label applied (registry-owned; plain pointers are stable for
  /// the registry's lifetime). Replaces the former function-local
  /// statics, which pinned every pipeline in the process to one shared
  /// series.
  struct Instruments {
    obs::Counter* records_in = nullptr;
    obs::Counter* records_dropped = nullptr;
    obs::Counter* records_late = nullptr;
    obs::Counter* records_processed = nullptr;
    obs::Gauge* window_failure_rate = nullptr;
    obs::Gauge* window_fatal = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* watermark_lag = nullptr;
    obs::Gauge* reorder_buffered = nullptr;
    obs::Gauge* stalled_shards = nullptr;
    obs::Counter* shard_stalls = nullptr;
    obs::Histogram* router_batch_us = nullptr;
  };

  void router_loop();
  void worker_loop(Shard& shard, std::size_t index);
  void watchdog_loop();
  void route_ordered(StreamRecord&& record,
                     std::vector<std::vector<StreamRecord>>& pending);
  void dispatch(std::vector<std::vector<StreamRecord>>& pending, bool force);

  StreamConfig config_;
  std::vector<obs::MetricLabel> labels_;  ///< {} or {{"twin", config_.twin}}
  Instruments inst_;
  RingBuffer<StreamRecord> ingest_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex router_mutex_;
  RouterState router_;

  std::thread router_thread_;
  mutable std::mutex lifecycle_mutex_;
  bool finished_ = false;

  std::thread watchdog_thread_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::atomic<std::size_t> stalled_shards_{0};
};

}  // namespace failmine::stream
