// failmine/stream/watermark.hpp
//
// Watermark-based handling of bounded out-of-order arrival.
//
// Real RAS/Cobalt feeds are only approximately time-ordered: records from
// different daemons arrive skewed by collection latency. The reorderer
// accepts a bound (`max_lateness_seconds`) and buffers arrivals in a
// min-heap keyed by (event time, sequence); a record is released once
// the watermark — the newest event time seen minus the lateness bound —
// strictly passes its own event time. When arrival order deviates from
// event-time order by at most S seconds, a lateness bound of 2*S
// restores the exact total order (two records can arrive swapped while
// their event times are up to 2*S apart), so every order-sensitive
// operator downstream (interruption clustering, rolling windows) sees
// the same stream a batch pass over the sorted log would.
//
// A record arriving with an event time already behind the watermark
// violated the bound. It is counted as late and still released
// immediately (analytics prefer a slightly misordered record over a
// dropped one); exactly-once counting operators are unaffected, windowed
// operators may misbucket it by at most the excess skew.

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "stream/record.hpp"
#include "util/error.hpp"

namespace failmine::stream {

class WatermarkReorderer {
 public:
  explicit WatermarkReorderer(std::int64_t max_lateness_seconds)
      : lateness_(max_lateness_seconds) {
    if (max_lateness_seconds < 0)
      throw failmine::DomainError("watermark lateness must be non-negative");
  }

  /// Feeds one arrival; invokes `emit(StreamRecord&&)` zero or more times
  /// with records whose release the arrival unlocked, in (time, sequence)
  /// order.
  template <typename Emit>
  void push(StreamRecord record, Emit&& emit) {
    if (!seen_any_ || record.time > max_seen_) {
      max_seen_ = record.time;
      seen_any_ = true;
    }
    if (record.time < watermark()) ++late_records_;
    if (lateness_ == 0 && heap_.empty()) {
      ++released_records_;
      emit(std::move(record));  // in-order fast path: nothing can overtake
      return;
    }
    heap_.push(std::move(record));
    drain(watermark(), emit);
  }

  /// Releases everything still buffered (end of stream).
  template <typename Emit>
  void flush(Emit&& emit) {
    while (!heap_.empty()) {
      ++released_records_;
      emit(StreamRecord(heap_.top()));
      heap_.pop();
    }
  }

  /// Newest event time seen minus the lateness bound (the frontier up to
  /// which the released stream is guaranteed complete and ordered).
  util::UnixSeconds watermark() const {
    return seen_any_ ? max_seen_ - lateness_ : 0;
  }

  util::UnixSeconds newest_seen() const { return seen_any_ ? max_seen_ : 0; }

  /// Seconds of event time currently held back (newest seen minus the
  /// oldest buffered record) — the `stream.watermark_lag_s` gauge.
  std::int64_t lag_seconds() const {
    return heap_.empty() ? 0 : max_seen_ - heap_.top().time;
  }

  std::uint64_t late_records() const { return late_records_; }
  /// Records handed downstream so far; arrivals minus released is what
  /// the reorder heap currently holds back (`stream.reorder.buffered`).
  std::uint64_t released_records() const { return released_records_; }
  std::size_t buffered() const { return heap_.size(); }
  std::int64_t max_lateness_seconds() const { return lateness_; }

 private:
  struct ReleasesLater {
    bool operator()(const StreamRecord& a, const StreamRecord& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  template <typename Emit>
  void drain(util::UnixSeconds frontier, Emit&& emit) {
    while (!heap_.empty() && heap_.top().time < frontier) {
      ++released_records_;
      emit(StreamRecord(heap_.top()));
      heap_.pop();
    }
  }

  const std::int64_t lateness_;
  std::priority_queue<StreamRecord, std::vector<StreamRecord>, ReleasesLater>
      heap_;
  util::UnixSeconds max_seen_ = 0;
  bool seen_any_ = false;
  std::uint64_t late_records_ = 0;
  std::uint64_t released_records_ = 0;
};

}  // namespace failmine::stream
