// failmine/stream/ring_buffer.hpp
//
// Bounded multi-producer / single-consumer ring buffer with pluggable
// backpressure.
//
// The ingestion edge of the streaming pipeline: producers push records,
// one consumer (the router thread) drains them in batches. When the
// buffer is full the configured BackpressurePolicy decides what happens —
// kBlock parks the producer until space frees up (lossless; the policy
// the parity tests and the throughput bench run under), kDropNewest
// rejects the incoming record and counts it (lossy but non-blocking; the
// right choice when the producer is a real-time feed that must not
// stall). Storage is a fixed circular array; the mutex/condvar pair keeps
// the implementation obviously correct — batched push/pop keep the
// per-record lock cost amortized well below the per-record analysis cost.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace failmine::stream {

/// What a full buffer does to an incoming record.
enum class BackpressurePolicy {
  kBlock,       ///< producer waits for space (no loss)
  kDropNewest,  ///< incoming record is discarded and counted
};

/// "block" / "drop".
inline const char* backpressure_policy_name(BackpressurePolicy policy) {
  return policy == BackpressurePolicy::kBlock ? "block" : "drop";
}

template <typename T>
class RingBuffer {
 public:
  RingBuffer(std::size_t capacity, BackpressurePolicy policy)
      : policy_(policy), items_(capacity) {
    if (capacity == 0)
      throw failmine::DomainError("RingBuffer capacity must be positive");
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  /// Publishes the buffer's occupancy to `gauge` at the end of every
  /// push/pop (relaxed store; nullptr disables). The gauge is not owned
  /// and must outlive the buffer — registry instruments do.
  void set_occupancy_gauge(obs::Gauge* gauge) {
    std::lock_guard<std::mutex> lock(mutex_);
    occupancy_gauge_ = gauge;
    if (gauge != nullptr) gauge->set(static_cast<double>(size_));
  }

  /// Enqueues one value. Returns false — counting the value as dropped —
  /// if the buffer was full under kDropNewest or is closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!wait_for_space(lock)) {
      ++dropped_;
      return false;
    }
    place(std::move(value));
    publish_occupancy();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues a batch under one lock acquisition (modulo blocking waits).
  /// Returns how many values were accepted; every value not accepted is
  /// counted as dropped.
  std::size_t push_batch(std::vector<T>&& values) {
    std::size_t accepted = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!wait_for_space(lock)) {
        if (closed_) {
          dropped_ += values.size() - i;
          break;
        }
        ++dropped_;
        continue;  // full; later values may still fit after pops
      }
      place(std::move(values[i]));
      ++accepted;
    }
    publish_occupancy();
    lock.unlock();
    if (accepted > 0) not_empty_.notify_one();
    values.clear();
    return accepted;
  }

  /// Dequeues up to `max` values, blocking until at least one is
  /// available or the buffer is closed and drained. Appends to `out` and
  /// returns the number popped (0 means closed-and-empty).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    const std::size_t n = std::min(max, size_);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_[head_]));
      head_ = (head_ + 1) % items_.size();
    }
    size_ -= n;
    publish_occupancy();
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// No further pushes are accepted; blocked producers wake and fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return items_.size(); }

  /// Values accepted / rejected over the buffer's lifetime.
  std::uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

 private:
  /// Returns true when there is a slot to place a value into (lock
  /// held); callers account for drops.
  bool wait_for_space(std::unique_lock<std::mutex>& lock) {
    if (policy_ == BackpressurePolicy::kBlock) {
      // About to sleep until the consumer drains: wake it now, because a
      // batched push may have filled the buffer without its end-of-batch
      // notify having run yet (deferring this wakeup deadlocks both sides).
      if (size_ == items_.size()) not_empty_.notify_one();
      not_full_.wait(lock, [&] { return size_ < items_.size() || closed_; });
      return !closed_;  // push-after-close fails even if space opened up
    }
    return !closed_ && size_ < items_.size();
  }

  void place(T&& value) {
    items_[(head_ + size_) % items_.size()] = std::move(value);
    ++size_;
    ++pushed_;
  }

  void publish_occupancy() {  // lock held
    if (occupancy_gauge_ != nullptr)
      occupancy_gauge_->set(static_cast<double>(size_));
  }

  const BackpressurePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> items_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
  obs::Gauge* occupancy_gauge_ = nullptr;
};

}  // namespace failmine::stream
