// failmine/stream/heavy_hitters.hpp
//
// Space-saving heavy-hitter sketch (Metwally et al.) for the streaming
// concentration analyses.
//
// The paper's takeaway T-B is that a handful of users/projects account
// for most failures. Batch code counts every group exactly; a stream over
// millions of users cannot. The space-saving summary keeps a fixed number
// of monitored keys; an unmonitored arrival evicts the key with the
// smallest count and inherits that count as its over-estimation error.
// Guarantees for a summary of capacity m over total weight n:
//   * every reported count over-estimates: true <= count <= true + error,
//     with error <= n/m;
//   * every key with true weight > n/m is present in the summary —
//     so the batch top-k is a subset of the reported keys whenever the
//     k-th group's weight clears n/m (the superset property the parity
//     tests assert).
// merge() folds summaries from disjoint substreams (pipeline shards): a
// key missing from one side could have accumulated at most that side's
// minimum count, which is added to the error bound; the result is
// truncated back to capacity.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace failmine::stream {

class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(std::size_t capacity);

  void add(std::uint64_t key, std::uint64_t weight = 1);

  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  ///< over-estimate of the true weight
    std::uint64_t error = 0;  ///< count - error <= true weight <= count
  };

  /// Monitored keys sorted by count descending (key ascending on ties,
  /// so output is deterministic).
  std::vector<Entry> entries() const;

  /// The `k` heaviest monitored keys.
  std::vector<Entry> top(std::size_t k) const;

  /// Point lookup of one monitored key (nullopt when unmonitored — i.e.
  /// its true weight is at most error_bound()).
  std::optional<Entry> find(std::uint64_t key) const {
    const auto it = counts_.find(key);
    if (it == counts_.end()) return std::nullopt;
    return it->second;
  }

  void merge(const SpaceSavingSketch& other);

  std::uint64_t total_weight() const { return total_weight_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return counts_.size(); }

  /// Worst-case over-estimation of any reported count (n/m, or the
  /// accumulated bound after merges).
  std::uint64_t error_bound() const;

 private:
  void evict_and_insert(std::uint64_t key, std::uint64_t weight);

  std::size_t capacity_;
  std::uint64_t total_weight_ = 0;
  std::uint64_t merged_error_floor_ = 0;
  std::unordered_map<std::uint64_t, Entry> counts_;
};

}  // namespace failmine::stream
