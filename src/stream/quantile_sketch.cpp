#include "stream/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace failmine::stream {

GkQuantileSketch::GkQuantileSketch(double epsilon) : eps_(epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 0.5))
    throw failmine::DomainError("GK epsilon must lie in (0, 0.5)");
  // Flushing more often than the summary can compress just wastes sort
  // passes; 1/(2ε) matches the capacity of one compression band.
  buffer_capacity_ = std::max<std::size_t>(
      64, static_cast<std::size_t>(1.0 / (2.0 * epsilon)));
  buffer_.reserve(buffer_capacity_);
}

void GkQuantileSketch::insert(double value) {
  buffer_.push_back(value);
  ++count_;
  if (buffer_.size() >= buffer_capacity_) flush();
}

std::uint64_t GkQuantileSketch::invariant_bound() const {
  const double band = 2.0 * eps_ * static_cast<double>(count_);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(band));
}

void GkQuantileSketch::flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  // One merged pass over (sorted buffer) x (sorted tuples). A new value
  // inserted between existing tuples gets g=1 and the loosest delta the
  // invariant allows — always >= the exact per-position uncertainty
  // g_next + delta_next - 1, so rank bounds never understate. New
  // extremes get delta=0 so min/max stay exact.
  const std::uint64_t interior_delta = invariant_bound() - 1;

  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  std::size_t ti = 0;
  for (double v : buffer_) {
    while (ti < tuples_.size() && tuples_[ti].value <= v)
      merged.push_back(tuples_[ti++]);
    Tuple t;
    t.value = v;
    t.g = 1;
    const bool is_min = merged.empty();
    const bool is_max = ti == tuples_.size();
    t.delta = is_min || is_max ? 0 : interior_delta;
    merged.push_back(t);
  }
  while (ti < tuples_.size()) merged.push_back(tuples_[ti++]);
  tuples_ = std::move(merged);
  buffer_.clear();
  compress();
}

void GkQuantileSketch::compress() const {
  if (tuples_.size() < 3) return;
  const std::uint64_t bound = invariant_bound();
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  // Walk from the largest value down, greedily folding each tuple into
  // its successor while the invariant g_i + g_{i+1} + delta_{i+1} <= bound
  // holds. The first and last tuples are kept verbatim (exact extremes).
  out.push_back(tuples_.back());
  for (std::size_t i = tuples_.size() - 1; i-- > 1;) {
    Tuple& successor = out.back();
    const Tuple& t = tuples_[i];
    if (t.g + successor.g + successor.delta <= bound)
      successor.g += t.g;
    else
      out.push_back(t);
  }
  out.push_back(tuples_.front());
  std::reverse(out.begin(), out.end());
  tuples_ = std::move(out);
}

void GkQuantileSketch::merge(const GkQuantileSketch& other) {
  if (other.count_ == 0) return;
  flush();
  other.flush();
  if (tuples_.empty()) {
    tuples_ = other.tuples_;
    count_ = other.count_;
    return;
  }

  // Merge by value, recomputing each output tuple's rank bounds from both
  // inputs: for a tuple from A,
  //   rmin = rmin_A + rmin_B(predecessor in B)
  //   rmax = rmax_A + (rmax_B(successor in B) - 1, or n_B past the end).
  // Bounds add, so the merged error is eps_A*n_A + eps_B*n_B.
  struct Bounded {
    double value;
    std::uint64_t rmin;
    std::uint64_t rmax;
  };
  auto bounded = [](const std::vector<Tuple>& tuples) {
    std::vector<Bounded> out;
    out.reserve(tuples.size());
    std::uint64_t rmin = 0;
    for (const Tuple& t : tuples) {
      rmin += t.g;
      out.push_back({t.value, rmin, rmin + t.delta});
    }
    return out;
  };
  const std::vector<Bounded> a = bounded(tuples_);
  const std::vector<Bounded> b = bounded(other.tuples_);
  const std::uint64_t na = count_;
  const std::uint64_t nb = other.count_;

  std::vector<Bounded> combined;
  combined.reserve(a.size() + b.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  auto take = [&](const std::vector<Bounded>& self,
                  const std::vector<Bounded>& peer, std::size_t i,
                  std::size_t ipeer, std::uint64_t n_peer) {
    const std::uint64_t peer_rmin = ipeer > 0 ? peer[ipeer - 1].rmin : 0;
    const std::uint64_t peer_rmax =
        ipeer < peer.size() ? peer[ipeer].rmax - 1 : n_peer;
    combined.push_back({self[i].value, self[i].rmin + peer_rmin,
                        self[i].rmax + peer_rmax});
  };
  while (ia < a.size() || ib < b.size()) {
    if (ib == b.size() || (ia < a.size() && a[ia].value <= b[ib].value)) {
      take(a, b, ia, ib, nb);
      ++ia;
    } else {
      take(b, a, ib, ia, na);
      ++ib;
    }
  }

  std::vector<Tuple> merged;
  merged.reserve(combined.size());
  std::uint64_t prev_rmin = 0;
  for (const Bounded& t : combined) {
    // rmin must stay strictly increasing for the g-decomposition; clamp
    // (equal values from both inputs can tie their lower bounds).
    const std::uint64_t rmin = std::max(t.rmin, prev_rmin + 1);
    const std::uint64_t rmax = std::max(t.rmax, rmin);
    merged.push_back({t.value, rmin - prev_rmin, rmax - rmin});
    prev_rmin = rmin;
  }
  tuples_ = std::move(merged);
  count_ = na + nb;
  // Deliberately no compress() here: re-compression after a merge would
  // widen the error beyond the documented per-shard epsilon.
}

double GkQuantileSketch::quantile(double q) const {
  if (count_ == 0)
    throw failmine::DomainError("quantile of an empty sketch");
  flush();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(1, rank);
  const double tolerance = eps_ * static_cast<double>(count_);

  std::uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const std::uint64_t rmax = rmin + t.delta;
    const double low = static_cast<double>(target) - static_cast<double>(rmin);
    const double high = static_cast<double>(rmax) - static_cast<double>(target);
    if (low <= tolerance && high <= tolerance) return t.value;
  }
  return tuples_.back().value;
}

double GkQuantileSketch::min() const {
  if (count_ == 0) throw failmine::DomainError("min of an empty sketch");
  flush();
  return tuples_.front().value;
}

double GkQuantileSketch::max() const {
  if (count_ == 0) throw failmine::DomainError("max of an empty sketch");
  flush();
  return tuples_.back().value;
}

std::size_t GkQuantileSketch::summary_size() const {
  flush();
  return tuples_.size();
}

}  // namespace failmine::stream
