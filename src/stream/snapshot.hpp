// failmine/stream/snapshot.hpp
//
// Point-in-time view of everything the streaming pipeline maintains.
//
// A snapshot is assembled by merging per-shard aggregates with the
// router's order-sensitive state under their locks, so every number in
// one snapshot reflects a single prefix of each shard's substream (and,
// once the pipeline is finished, the exact complete stream). The JSON
// form is the CLI's machine-readable output and what the parity tooling
// diffs against batch results.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/joint_analyzer.hpp"
#include "core/mtti.hpp"
#include "obs/causal.hpp"
#include "util/time.hpp"

namespace failmine::stream {

/// One reported heavy hitter.
struct TopEntry {
  std::uint64_t key = 0;
  std::string label;          ///< display form (user id, project id, board)
  std::uint64_t count = 0;    ///< over-estimate
  std::uint64_t error = 0;    ///< count - error <= true <= count
};

struct StreamSnapshot {
  // -- ingest accounting -----------------------------------------------
  std::uint64_t records_in = 0;       ///< accepted into the pipeline
  std::uint64_t records_processed = 0;///< applied to shard aggregates
  std::uint64_t records_dropped = 0;  ///< rejected by backpressure
  std::uint64_t records_late = 0;     ///< arrived behind the watermark
  std::array<std::uint64_t, 4> records_by_source{};  ///< job/task/ras/io
  util::UnixSeconds watermark = 0;
  std::int64_t watermark_lag_seconds = 0;
  std::size_t queue_depth = 0;
  bool finished = false;

  // -- observation window ----------------------------------------------
  util::UnixSeconds window_begin = 0;  ///< earliest event time seen
  util::UnixSeconds window_end = 0;    ///< latest event time seen + 1
  double span_days = 0.0;

  // -- streaming E02: exit breakdown ------------------------------------
  core::ExitBreakdown exit_breakdown;
  double total_core_hours = 0.0;

  // -- rolling window (trailing `window_seconds` of event time) ---------
  std::int64_t window_seconds = 0;
  std::uint64_t window_jobs = 0;
  std::uint64_t window_failures = 0;
  double window_failure_rate = 0.0;
  std::array<std::uint64_t, 3> window_severity{};  ///< streaming E01 mix

  // -- lifetime severity mix -------------------------------------------
  std::array<std::uint64_t, 3> severity_totals{};

  // -- streaming E08: interruptions / MTTI ------------------------------
  std::uint64_t fatal_input_events = 0;
  std::uint64_t interruptions = 0;
  core::MttiResult mtti;

  // -- runtime quantile sketch ------------------------------------------
  std::uint64_t runtime_samples = 0;
  double quantile_epsilon = 0.0;  ///< documented rank-error bound
  double runtime_p50 = 0.0;
  double runtime_p90 = 0.0;
  double runtime_p99 = 0.0;

  // -- streaming E03: heavy hitters -------------------------------------
  std::uint64_t heavy_hitter_error_bound = 0;
  std::vector<TopEntry> top_users_by_failures;
  std::vector<TopEntry> top_projects_by_failures;
  std::vector<TopEntry> top_boards_by_events;

  // -- misc per-source aggregates ---------------------------------------
  std::uint64_t task_failures = 0;
  std::uint64_t io_bytes_total = 0;

  // -- causal tracing (sampled per-record stage latency) ----------------
  std::uint32_t trace_sample_period = 0;  ///< 0 when tracing is off
  std::uint64_t traces_sampled = 0;
  std::vector<obs::CausalStageStat> causal_stages;  ///< ring/reorder/...
  double causal_e2e_p50_us = 0.0;  ///< emit -> apply, sampled records
  double causal_e2e_p99_us = 0.0;

  // -- attached router operators ----------------------------------------
  /// (section name, pre-serialized JSON object) pairs spliced verbatim
  /// into to_json() — how plug-in operators (stream/router_operator.hpp,
  /// e.g. the predictor) surface their state without the stream library
  /// knowing their schema.
  std::vector<std::pair<std::string, std::string>> sections;

  /// Machine-readable form (single JSON object, newline-terminated).
  std::string to_json() const;
};

}  // namespace failmine::stream
