// failmine/analysis/locality.hpp
//
// Spatial locality of RAS events (takeaway T-D): how concentrated fatal
// events are across racks, midplanes and node boards, and how much of the
// fatal mass the top-k hottest components absorb.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "raslog/event.hpp"
#include "topology/location.hpp"
#include "topology/machine.hpp"

namespace failmine::analysis {

/// Event count at one hardware component.
struct LocationCount {
  topology::Location location = topology::Location::rack(0, 0);
  std::uint64_t events = 0;
};

/// Counts events per component at `level` (rack/midplane/board), sorted
/// hottest-first. Events whose location is shallower than `level` are
/// attributed to their own (shallower) component only if `level` equals
/// their depth; otherwise they are skipped (cannot be localized deeper).
std::vector<LocationCount> events_per_component(
    const raslog::RasLog& log, topology::Level level,
    raslog::Severity min_severity = raslog::Severity::kFatal);

/// Locality summary at one level.
struct LocalitySummary {
  topology::Level level = topology::Level::kRack;
  std::size_t components_hit = 0;    ///< components with >= 1 event
  std::size_t components_total = 0;  ///< all components at this level
  double top1_share = 0.0;
  double top5_share = 0.0;
  double top10pct_share = 0.0;  ///< share held by the hottest 10 % of hit components
  double gini = 0.0;
};

/// Computes the locality summary of fatal events at `level`.
LocalitySummary locality_summary(const raslog::RasLog& log,
                                 const topology::MachineConfig& machine,
                                 topology::Level level);

/// Number of components the machine has at `level`.
std::size_t components_at_level(const topology::MachineConfig& machine,
                                topology::Level level);

}  // namespace failmine::analysis
