#include "analysis/ras_breakdown.hpp"

#include "obs/trace.hpp"

namespace failmine::analysis {

RasBreakdown ras_breakdown(const std::vector<raslog::RasEvent>& events) {
  FAILMINE_TRACE_SPAN("e06.ras_breakdown");
  RasBreakdown b;
  b.total_events = events.size();
  for (const auto& e : events) {
    const auto sev = static_cast<std::size_t>(e.severity);
    ++b.by_severity[sev];
    ++b.by_component[e.component][sev];
    ++b.by_category[e.category][sev];
  }
  return b;
}

RasBreakdown ras_breakdown(const raslog::RasLog& log) {
  return ras_breakdown(log.events());
}

}  // namespace failmine::analysis
