// failmine/analysis/structure.hpp
//
// Failure rate versus job execution structure (takeaway T-B): allocation
// scale (node count), task count, and consumed core-hours.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "joblog/job.hpp"
#include "topology/machine.hpp"

namespace failmine::analysis {

/// One bucket of the structure analysis.
struct StructureBucket {
  std::string label;
  double lower = 0.0;   ///< inclusive lower edge of the bucket
  double upper = 0.0;   ///< exclusive upper edge
  std::uint64_t jobs = 0;
  std::uint64_t failures = 0;

  double failure_rate() const {
    return jobs == 0 ? 0.0 : static_cast<double>(failures) / static_cast<double>(jobs);
  }
};

/// Failure rate per allocation size; one bucket per distinct power-of-two
/// node count present in the log.
std::vector<StructureBucket> failure_rate_by_scale(const joblog::JobLog& log);

/// Failure rate per task count (1, 2, ..., cap; last bucket is ">= cap").
std::vector<StructureBucket> failure_rate_by_task_count(const joblog::JobLog& log,
                                                        std::uint32_t cap = 8);

/// Failure rate per log-spaced core-hour bucket.
std::vector<StructureBucket> failure_rate_by_core_hours(
    const joblog::JobLog& log, const topology::MachineConfig& machine,
    std::size_t buckets = 8);

/// Spearman rank correlation between a per-bucket structural metric and
/// the bucket failure rates (monotonicity check for T-B).
double bucket_trend(const std::vector<StructureBucket>& buckets);

}  // namespace failmine::analysis
