// failmine/analysis/io_behavior.hpp
//
// Joint analysis of the Darshan-style I/O log with the job log
// (experiment E12): do failed jobs read/write differently?

#pragma once

#include <cstdint>
#include <vector>

#include "iolog/io_record.hpp"
#include "joblog/job.hpp"

namespace failmine::analysis {

/// Summary of one job population's I/O behaviour.
struct IoPopulationSummary {
  std::uint64_t jobs_covered = 0;      ///< jobs with a Darshan record
  std::uint64_t jobs_total = 0;        ///< jobs in the population
  double coverage = 0.0;
  double median_read_bytes = 0.0;
  double median_write_bytes = 0.0;
  double mean_read_bytes = 0.0;
  double mean_write_bytes = 0.0;
  double total_read_bytes = 0.0;
  double total_write_bytes = 0.0;
};

/// Side-by-side I/O comparison of failed vs successful jobs.
struct IoComparison {
  IoPopulationSummary successful;
  IoPopulationSummary failed;

  /// Ratio of failed to successful median written bytes (< 1 when failed
  /// jobs lose their final checkpoint, as the paper observes).
  double write_median_ratio() const;
};

/// Joins the two logs and computes the comparison.
IoComparison compare_io(const joblog::JobLog& jobs, const iolog::IoLog& io);

/// Per-job written bytes of a population (for distribution plots);
/// `failed_population` selects failed or successful jobs.
std::vector<double> write_bytes_sample(const joblog::JobLog& jobs,
                                       const iolog::IoLog& io,
                                       bool failed_population);

}  // namespace failmine::analysis
