// failmine/analysis/user_stats.hpp
//
// Per-user and per-project aggregation of the job log (takeaway T-B:
// failures concentrate on few users/projects).

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "joblog/job.hpp"
#include "topology/machine.hpp"

namespace failmine::analysis {

/// Aggregate counters for one user or project.
struct GroupStats {
  std::uint32_t group_id = 0;
  std::uint64_t jobs = 0;
  std::uint64_t failures = 0;
  std::uint64_t user_caused_failures = 0;
  std::uint64_t system_caused_failures = 0;
  double core_hours = 0.0;
  double failed_core_hours = 0.0;

  double failure_rate() const {
    return jobs == 0 ? 0.0 : static_cast<double>(failures) / static_cast<double>(jobs);
  }
};

/// Per-user stats, keyed by user id, one entry per user seen in the log.
std::vector<GroupStats> per_user_stats(const joblog::JobLog& log,
                                       const topology::MachineConfig& machine);

/// Per-project stats.
std::vector<GroupStats> per_project_stats(const joblog::JobLog& log,
                                          const topology::MachineConfig& machine);

/// Record-vector overloads (time order expected): identical results to
/// the JobLog versions without building the container index — shared by
/// the row-path benches and the columnar parity tests.
std::vector<GroupStats> per_user_stats(const std::vector<joblog::JobRecord>& jobs,
                                       const topology::MachineConfig& machine);
std::vector<GroupStats> per_project_stats(
    const std::vector<joblog::JobRecord>& jobs,
    const topology::MachineConfig& machine);

/// Concentration summary of a stats vector with respect to a metric.
struct ConcentrationSummary {
  double gini = 0.0;
  double top1_share = 0.0;    ///< share of the single heaviest group
  double top10_share = 0.0;   ///< share of the 10 heaviest groups
  std::size_t groups_for_half = 0;  ///< groups needed to cover 50 %
  std::size_t group_count = 0;
};

/// Metric selector for concentration analyses.
enum class GroupMetric { kJobs, kFailures, kCoreHours };

ConcentrationSummary concentration(const std::vector<GroupStats>& stats,
                                   GroupMetric metric);

/// Extracts the metric column (ordered as `stats`).
std::vector<double> metric_column(const std::vector<GroupStats>& stats,
                                  GroupMetric metric);

}  // namespace failmine::analysis
