#include "analysis/locality.hpp"

#include <algorithm>
#include <map>

#include "obs/trace.hpp"
#include "stats/concentration.hpp"
#include "util/error.hpp"

namespace failmine::analysis {

using topology::Level;

std::vector<LocationCount> events_per_component(const raslog::RasLog& log,
                                                Level level,
                                                raslog::Severity min_severity) {
  std::map<topology::Location, std::uint64_t> counts;
  for (const auto& e : log.events()) {
    if (static_cast<int>(e.severity) < static_cast<int>(min_severity)) continue;
    if (e.location.level() < level) continue;  // cannot localize deeper
    ++counts[e.location.ancestor(level)];
  }
  std::vector<LocationCount> out;
  out.reserve(counts.size());
  for (const auto& [loc, n] : counts) out.push_back({loc, n});
  std::sort(out.begin(), out.end(),
            [](const LocationCount& a, const LocationCount& b) {
              return a.events > b.events;
            });
  return out;
}

std::size_t components_at_level(const topology::MachineConfig& machine,
                                Level level) {
  const std::size_t racks = static_cast<std::size_t>(machine.racks());
  switch (level) {
    case Level::kRack: return racks;
    case Level::kMidplane:
      return racks * static_cast<std::size_t>(machine.midplanes_per_rack);
    case Level::kNodeBoard:
      return racks * static_cast<std::size_t>(machine.midplanes_per_rack) *
             static_cast<std::size_t>(machine.boards_per_midplane);
    case Level::kComputeCard: return machine.total_nodes();
    case Level::kCore: return machine.total_nodes() *
                              static_cast<std::size_t>(machine.cores_per_node);
  }
  throw failmine::DomainError("unknown level");
}

LocalitySummary locality_summary(const raslog::RasLog& log,
                                 const topology::MachineConfig& machine,
                                 Level level) {
  FAILMINE_TRACE_SPAN("e09.locality");
  const auto counts =
      events_per_component(log, level, raslog::Severity::kFatal);
  LocalitySummary s;
  s.level = level;
  s.components_total = components_at_level(machine, level);
  s.components_hit = counts.size();
  if (counts.empty()) return s;

  std::vector<double> values;
  values.reserve(counts.size());
  for (const auto& c : counts) values.push_back(static_cast<double>(c.events));
  s.top1_share = stats::top_k_share(values, 1);
  s.top5_share = stats::top_k_share(values, std::min<std::size_t>(5, values.size()));
  const std::size_t top10pct =
      std::max<std::size_t>(1, counts.size() / 10);
  s.top10pct_share = stats::top_k_share(values, top10pct);
  s.gini = values.size() > 1 ? stats::gini(values) : 0.0;
  return s;
}

}  // namespace failmine::analysis
