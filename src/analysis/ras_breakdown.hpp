// failmine/analysis/ras_breakdown.hpp
//
// RAS event counts by severity, component and category (experiment
// E06, takeaway T-D: the raw stream is INFO-dominated with a thin FATAL
// tail concentrated in a few components). Extracted from the E06 bench
// formatter so the row and columnar backends share one result type.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "raslog/category.hpp"
#include "raslog/component.hpp"
#include "raslog/event.hpp"
#include "raslog/severity.hpp"

namespace failmine::analysis {

/// Counts indexed INFO, WARN, FATAL.
using SeverityCounts = std::array<std::uint64_t, 3>;

struct RasBreakdown {
  std::uint64_t total_events = 0;
  SeverityCounts by_severity{};
  /// Per-component / per-category severity counts; only keys that occur
  /// are present, in enum order.
  std::map<raslog::Component, SeverityCounts> by_component;
  std::map<raslog::Category, SeverityCounts> by_category;
};

/// One pass over the events (time order).
RasBreakdown ras_breakdown(const std::vector<raslog::RasEvent>& events);

/// Container convenience overload.
RasBreakdown ras_breakdown(const raslog::RasLog& log);

}  // namespace failmine::analysis
