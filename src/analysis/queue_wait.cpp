#include "analysis/queue_wait.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "stats/correlation.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::analysis {

namespace {

WaitSummary summarize_waits(std::vector<double>& waits) {
  WaitSummary s;
  s.jobs = waits.size();
  if (waits.empty()) return s;
  std::sort(waits.begin(), waits.end());
  s.mean_wait_seconds = stats::mean(waits);
  s.median_wait_seconds = stats::quantile_sorted(waits, 0.5);
  s.p90_wait_seconds = stats::quantile_sorted(waits, 0.9);
  s.max_wait_seconds = waits.back();
  return s;
}

template <typename Key, typename KeyOf>
std::map<Key, WaitSummary> waits_grouped(const joblog::JobLog& log,
                                         KeyOf key_of) {
  std::map<Key, std::vector<double>> buckets;
  for (const auto& j : log.jobs())
    buckets[key_of(j)].push_back(static_cast<double>(j.wait_seconds()));
  std::map<Key, WaitSummary> out;
  for (auto& [key, waits] : buckets) out[key] = summarize_waits(waits);
  return out;
}

}  // namespace

std::map<std::uint32_t, WaitSummary> wait_by_scale(const joblog::JobLog& log) {
  FAILMINE_TRACE_SPAN("x04.queue_wait.by_scale");
  return waits_grouped<std::uint32_t>(
      log, [](const joblog::JobRecord& j) { return j.nodes_used; });
}

std::map<std::string, WaitSummary> wait_by_queue(const joblog::JobLog& log) {
  FAILMINE_TRACE_SPAN("x04.queue_wait.by_queue");
  return waits_grouped<std::string>(
      log, [](const joblog::JobRecord& j) { return j.queue; });
}

WaitByOutcome wait_by_outcome(const joblog::JobLog& log) {
  FAILMINE_TRACE_SPAN("x04.queue_wait.by_outcome");
  std::vector<double> ok, bad;
  for (const auto& j : log.jobs())
    (j.failed() ? bad : ok).push_back(static_cast<double>(j.wait_seconds()));
  WaitByOutcome out;
  out.successful = summarize_waits(ok);
  out.failed = summarize_waits(bad);
  return out;
}

double wait_scale_trend(const joblog::JobLog& log) {
  const auto by_scale = wait_by_scale(log);
  std::vector<double> sizes, medians;
  for (const auto& [nodes, summary] : by_scale) {
    if (summary.jobs == 0) continue;
    sizes.push_back(static_cast<double>(nodes));
    medians.push_back(summary.median_wait_seconds);
  }
  if (sizes.size() < 2)
    throw failmine::DomainError("wait_scale_trend needs >= 2 size buckets");
  return stats::spearman(sizes, medians);
}

}  // namespace failmine::analysis
