#include "analysis/structure.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/trace.hpp"
#include "stats/correlation.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::analysis {

std::vector<StructureBucket> failure_rate_by_scale(const joblog::JobLog& log) {
  FAILMINE_TRACE_SPAN("e04.structure.by_scale");
  std::map<std::uint32_t, StructureBucket> by_size;
  for (const auto& job : log.jobs()) {
    StructureBucket& b = by_size[job.nodes_used];
    ++b.jobs;
    if (job.failed()) ++b.failures;
  }
  std::vector<StructureBucket> out;
  for (auto& [nodes, b] : by_size) {
    b.label = std::to_string(nodes) + " nodes";
    b.lower = static_cast<double>(nodes);
    b.upper = static_cast<double>(nodes) + 1.0;
    out.push_back(b);
  }
  return out;
}

std::vector<StructureBucket> failure_rate_by_task_count(const joblog::JobLog& log,
                                                        std::uint32_t cap) {
  FAILMINE_TRACE_SPAN("e04.structure.by_task_count");
  if (cap < 2) throw failmine::DomainError("task-count cap must be >= 2");
  std::vector<StructureBucket> buckets(cap);
  for (std::uint32_t i = 0; i < cap; ++i) {
    buckets[i].lower = static_cast<double>(i + 1);
    buckets[i].upper = static_cast<double>(i + 2);
    buckets[i].label = i + 1 == cap ? ">=" + std::to_string(cap) + " tasks"
                                    : std::to_string(i + 1) + " tasks";
  }
  buckets[cap - 1].upper = 1e18;
  for (const auto& job : log.jobs()) {
    const std::uint32_t t = std::max<std::uint32_t>(1, job.task_count);
    StructureBucket& b = buckets[std::min(t, cap) - 1];
    ++b.jobs;
    if (job.failed()) ++b.failures;
  }
  return buckets;
}

std::vector<StructureBucket> failure_rate_by_core_hours(
    const joblog::JobLog& log, const topology::MachineConfig& machine,
    std::size_t buckets) {
  FAILMINE_TRACE_SPAN("e04.structure.by_core_hours");
  if (buckets < 2) throw failmine::DomainError("need >= 2 core-hour buckets");
  if (log.empty()) throw failmine::DomainError("empty job log");
  double lo = 1e300, hi = 0.0;
  for (const auto& job : log.jobs()) {
    const double ch = std::max(1e-3, job.core_hours(machine));
    lo = std::min(lo, ch);
    hi = std::max(hi, ch);
  }
  if (hi <= lo) hi = lo * 10.0;
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi * 1.0000001);
  std::vector<StructureBucket> out(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    out[i].lower = std::exp(log_lo + (log_hi - log_lo) *
                                         static_cast<double>(i) /
                                         static_cast<double>(buckets));
    out[i].upper = std::exp(log_lo + (log_hi - log_lo) *
                                         static_cast<double>(i + 1) /
                                         static_cast<double>(buckets));
    out[i].label = util::format_double(out[i].lower, 0) + ".." +
                   util::format_double(out[i].upper, 0) + " core-h";
  }
  for (const auto& job : log.jobs()) {
    const double ch = std::max(1e-3, job.core_hours(machine));
    const double pos = (std::log(ch) - log_lo) / (log_hi - log_lo) *
                       static_cast<double>(buckets);
    std::size_t idx = static_cast<std::size_t>(
        std::clamp(pos, 0.0, static_cast<double>(buckets) - 1.0));
    ++out[idx].jobs;
    if (job.failed()) ++out[idx].failures;
  }
  return out;
}

double bucket_trend(const std::vector<StructureBucket>& buckets) {
  std::vector<double> x, y;
  for (const auto& b : buckets) {
    if (b.jobs == 0) continue;  // empty buckets carry no information
    x.push_back(b.lower);
    y.push_back(b.failure_rate());
  }
  if (x.size() < 2)
    throw failmine::DomainError("bucket_trend needs >= 2 populated buckets");
  return stats::spearman(x, y);
}

}  // namespace failmine::analysis
