// failmine/analysis/torus_locality.hpp
//
// Network-topology view of fatal-event locality.
//
// The containment-hierarchy locality (analysis/locality.hpp) asks "do
// fatal events share racks/boards?". The 5D torus view asks a different
// question: are fatal events *close in the interconnect*, i.e. would a
// topology-aware scheduler be able to route jobs around them? We measure
// the mean pairwise torus hop distance of fatal-event nodes and compare
// it against the machine-wide expectation for uniformly random nodes; a
// ratio < 1 is network-level clustering.

#pragma once

#include <cstdint>
#include <vector>

#include "raslog/event.hpp"
#include "topology/machine.hpp"
#include "util/rng.hpp"

namespace failmine::analysis {

struct TorusLocalityResult {
  std::size_t located_events = 0;      ///< events with card-level locations
  double mean_pair_distance = 0.0;     ///< over fatal-event node pairs
  double baseline_distance = 0.0;      ///< uniform-random expectation
  /// mean / baseline; < 1 = clustered in the interconnect, ~1 = spread.
  double clustering_ratio = 0.0;
};

/// Computes pairwise torus distance statistics of the `severity` events
/// with card-level (node-resolvable) locations. If more than `max_nodes`
/// events qualify, a deterministic subsample keeps the pair enumeration
/// bounded. The baseline is estimated from `baseline_pairs` uniformly
/// random node pairs drawn with `rng`.
TorusLocalityResult torus_locality(
    const raslog::RasLog& log, const topology::MachineConfig& machine,
    util::Rng& rng, raslog::Severity severity = raslog::Severity::kFatal,
    std::size_t max_nodes = 800, std::size_t baseline_pairs = 20000);

}  // namespace failmine::analysis
