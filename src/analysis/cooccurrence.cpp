#include "analysis/cooccurrence.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::analysis {

namespace {

bool severity_at_least(raslog::Severity s, raslog::Severity threshold) {
  return static_cast<int>(s) >= static_cast<int>(threshold);
}

bool neighbourhood_match(const raslog::RasEvent& a, const raslog::RasEvent& b,
                         topology::Level level) {
  const auto common = a.location.common_level(b.location);
  if (!common.has_value()) return false;
  const topology::Level required =
      std::min({level, a.location.level(), b.location.level()});
  return *common >= required;
}

}  // namespace

CooccurrenceResult category_cooccurrence(const raslog::RasLog& log,
                                         const CooccurrenceConfig& config) {
  FAILMINE_TRACE_SPAN("x07.cooccurrence");
  if (config.window_seconds <= 0)
    throw failmine::DomainError("co-occurrence window must be positive");

  // Qualifying events, already time-sorted by the log.
  std::vector<const raslog::RasEvent*> events;
  for (const auto& e : log.events())
    if (severity_at_least(e.severity, config.min_severity))
      events.push_back(&e);

  CooccurrenceResult result;
  result.qualifying_events = events.size();
  if (events.size() < 2) return result;
  result.span_seconds = static_cast<double>(events.back()->timestamp -
                                            events.front()->timestamp);

  for (const auto* e : events)
    ++result.totals[static_cast<std::size_t>(e->category)];

  // Forward scan: for each trigger, count followers inside the window on
  // the same neighbourhood. The window is short relative to the span, so
  // the inner loop touches only a handful of events.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto* trigger = events[i];
    const std::size_t a = static_cast<std::size_t>(trigger->category);
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const auto* follower = events[j];
      if (follower->timestamp - trigger->timestamp > config.window_seconds)
        break;
      if (!neighbourhood_match(*trigger, *follower, config.spatial_level))
        continue;
      ++result.follows[a][static_cast<std::size_t>(follower->category)];
    }
  }

  // Lift: observed follows / expected follows under temporal independence
  // (base rate of the follower category falling in a same-length window,
  // ignoring the spatial restriction — so spatial clustering also raises
  // lift, which is exactly the propagation signal we want to surface).
  for (std::size_t a = 0; a < kCategoryCount; ++a) {
    if (result.totals[a] == 0) continue;
    for (std::size_t b = 0; b < kCategoryCount; ++b) {
      if (result.totals[b] == 0 || result.span_seconds <= 0) continue;
      const double rate_b =
          static_cast<double>(result.totals[b]) / result.span_seconds;
      const double expected = static_cast<double>(result.totals[a]) *
                              rate_b *
                              static_cast<double>(config.window_seconds);
      if (expected > 0)
        result.lift[a][b] =
            static_cast<double>(result.follows[a][b]) / expected;
    }
  }
  return result;
}

std::vector<PropagationChannel> top_channels(const CooccurrenceResult& result,
                                             double min_lift,
                                             std::uint64_t min_count) {
  std::vector<PropagationChannel> channels;
  for (std::size_t a = 0; a < kCategoryCount; ++a) {
    for (std::size_t b = 0; b < kCategoryCount; ++b) {
      if (result.lift[a][b] < min_lift) continue;
      if (result.follows[a][b] < min_count) continue;
      channels.push_back(PropagationChannel{
          raslog::kAllCategories[a], raslog::kAllCategories[b],
          result.lift[a][b], result.follows[a][b]});
    }
  }
  std::sort(channels.begin(), channels.end(),
            [](const PropagationChannel& x, const PropagationChannel& y) {
              return x.lift > y.lift;
            });
  return channels;
}

}  // namespace failmine::analysis
