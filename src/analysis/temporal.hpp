// failmine/analysis/temporal.hpp
//
// Temporal patterns of job submissions, failures and RAS events
// (experiment E11): hour-of-day, day-of-week and per-month series.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "util/time.hpp"

namespace failmine::analysis {

/// 24-entry hourly profile (counts per hour of day).
using HourlyProfile = std::array<std::uint64_t, 24>;

/// 7-entry weekday profile, 0 = Monday.
using WeekdayProfile = std::array<std::uint64_t, 7>;

/// Job submissions per hour of day.
HourlyProfile submissions_by_hour(const joblog::JobLog& log);

/// Job submissions per day of week.
WeekdayProfile submissions_by_weekday(const joblog::JobLog& log);

/// Failed-job terminations per hour of day.
HourlyProfile failures_by_hour(const joblog::JobLog& log);

/// RAS events (any severity) per hour of day.
HourlyProfile events_by_hour(const raslog::RasLog& log);

/// Monthly series from `origin`: counts per calendar month index.
std::vector<std::uint64_t> monthly_submissions(const joblog::JobLog& log,
                                               util::UnixSeconds origin);
std::vector<std::uint64_t> monthly_failures(const joblog::JobLog& log,
                                            util::UnixSeconds origin);
std::vector<std::uint64_t> monthly_fatal_events(const raslog::RasLog& log,
                                                util::UnixSeconds origin);

/// Peak-to-trough ratio of a profile (max count / min count, with min
/// clamped to 1 to avoid division by zero).
double peak_to_trough(const HourlyProfile& profile);

}  // namespace failmine::analysis
