#include "analysis/temporal.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace failmine::analysis {

HourlyProfile submissions_by_hour(const joblog::JobLog& log) {
  FAILMINE_TRACE_SPAN("e11.temporal.submissions_by_hour");
  HourlyProfile p{};
  for (const auto& j : log.jobs())
    ++p[static_cast<std::size_t>(util::hour_of_day(j.submit_time))];
  return p;
}

WeekdayProfile submissions_by_weekday(const joblog::JobLog& log) {
  FAILMINE_TRACE_SPAN("e11.temporal.submissions_by_weekday");
  WeekdayProfile p{};
  for (const auto& j : log.jobs())
    ++p[static_cast<std::size_t>(util::day_of_week(j.submit_time))];
  return p;
}

HourlyProfile failures_by_hour(const joblog::JobLog& log) {
  FAILMINE_TRACE_SPAN("e11.temporal.failures_by_hour");
  HourlyProfile p{};
  for (const auto& j : log.jobs())
    if (j.failed()) ++p[static_cast<std::size_t>(util::hour_of_day(j.end_time))];
  return p;
}

HourlyProfile events_by_hour(const raslog::RasLog& log) {
  FAILMINE_TRACE_SPAN("e11.temporal.events_by_hour");
  HourlyProfile p{};
  for (const auto& e : log.events())
    ++p[static_cast<std::size_t>(util::hour_of_day(e.timestamp))];
  return p;
}

namespace {

template <typename Records, typename TimeOf, typename Keep>
std::vector<std::uint64_t> monthly_series(const Records& records,
                                          util::UnixSeconds origin,
                                          TimeOf time_of, Keep keep) {
  std::vector<std::uint64_t> series;
  for (const auto& r : records) {
    if (!keep(r)) continue;
    const int idx = util::month_index(origin, time_of(r));
    if (idx < 0) continue;
    if (static_cast<std::size_t>(idx) >= series.size())
      series.resize(static_cast<std::size_t>(idx) + 1, 0);
    ++series[static_cast<std::size_t>(idx)];
  }
  return series;
}

}  // namespace

std::vector<std::uint64_t> monthly_submissions(const joblog::JobLog& log,
                                               util::UnixSeconds origin) {
  return monthly_series(
      log.jobs(), origin, [](const auto& j) { return j.submit_time; },
      [](const auto&) { return true; });
}

std::vector<std::uint64_t> monthly_failures(const joblog::JobLog& log,
                                            util::UnixSeconds origin) {
  return monthly_series(
      log.jobs(), origin, [](const auto& j) { return j.end_time; },
      [](const auto& j) { return j.failed(); });
}

std::vector<std::uint64_t> monthly_fatal_events(const raslog::RasLog& log,
                                                util::UnixSeconds origin) {
  return monthly_series(
      log.events(), origin, [](const auto& e) { return e.timestamp; },
      [](const auto& e) { return e.severity == raslog::Severity::kFatal; });
}

double peak_to_trough(const HourlyProfile& profile) {
  const std::uint64_t mx = *std::max_element(profile.begin(), profile.end());
  const std::uint64_t mn = *std::min_element(profile.begin(), profile.end());
  return static_cast<double>(mx) / static_cast<double>(std::max<std::uint64_t>(1, mn));
}

}  // namespace failmine::analysis
