#include "analysis/io_behavior.hpp"

#include "obs/trace.hpp"
#include "stats/summary.hpp"

namespace failmine::analysis {

namespace {

IoPopulationSummary summarize_population(const joblog::JobLog& jobs,
                                         const iolog::IoLog& io,
                                         bool failed_population) {
  IoPopulationSummary s;
  std::vector<double> reads;
  std::vector<double> writes;
  for (const auto& job : jobs.jobs()) {
    if (job.failed() != failed_population) continue;
    ++s.jobs_total;
    if (!io.contains(job.job_id)) continue;
    ++s.jobs_covered;
    const auto& r = io.by_job(job.job_id);
    reads.push_back(static_cast<double>(r.bytes_read));
    writes.push_back(static_cast<double>(r.bytes_written));
    s.total_read_bytes += static_cast<double>(r.bytes_read);
    s.total_write_bytes += static_cast<double>(r.bytes_written);
  }
  s.coverage = s.jobs_total == 0
                   ? 0.0
                   : static_cast<double>(s.jobs_covered) /
                         static_cast<double>(s.jobs_total);
  if (!reads.empty()) {
    s.median_read_bytes = stats::median(reads);
    s.median_write_bytes = stats::median(writes);
    s.mean_read_bytes = stats::mean(reads);
    s.mean_write_bytes = stats::mean(writes);
  }
  return s;
}

}  // namespace

double IoComparison::write_median_ratio() const {
  if (successful.median_write_bytes <= 0.0) return 0.0;
  return failed.median_write_bytes / successful.median_write_bytes;
}

IoComparison compare_io(const joblog::JobLog& jobs, const iolog::IoLog& io) {
  FAILMINE_TRACE_SPAN("e12.io_behavior");
  IoComparison c;
  c.successful = summarize_population(jobs, io, /*failed_population=*/false);
  c.failed = summarize_population(jobs, io, /*failed_population=*/true);
  return c;
}

std::vector<double> write_bytes_sample(const joblog::JobLog& jobs,
                                       const iolog::IoLog& io,
                                       bool failed_population) {
  std::vector<double> out;
  for (const auto& job : jobs.jobs()) {
    if (job.failed() != failed_population) continue;
    if (!io.contains(job.job_id)) continue;
    out.push_back(static_cast<double>(io.by_job(job.job_id).bytes_written));
  }
  return out;
}

}  // namespace failmine::analysis
