// failmine/analysis/queue_wait.hpp
//
// Queue wait-time analysis of the scheduling log.
//
// The study's scheduling-log characterization includes how long jobs sit
// in the queue before starting, and how the wait scales with the
// allocation size (big partitions wait for drains). We report wait-time
// summaries per allocation size and per queue, plus whether failed jobs
// waited differently from successful ones.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "joblog/job.hpp"

namespace failmine::analysis {

/// Wait-time summary of one job group.
struct WaitSummary {
  std::uint64_t jobs = 0;
  double mean_wait_seconds = 0.0;
  double median_wait_seconds = 0.0;
  double p90_wait_seconds = 0.0;
  double max_wait_seconds = 0.0;
};

/// Wait summaries keyed by allocation size (node count).
std::map<std::uint32_t, WaitSummary> wait_by_scale(const joblog::JobLog& log);

/// Wait summaries keyed by queue name.
std::map<std::string, WaitSummary> wait_by_queue(const joblog::JobLog& log);

/// Wait summaries for the failed and successful populations.
struct WaitByOutcome {
  WaitSummary successful;
  WaitSummary failed;
};
WaitByOutcome wait_by_outcome(const joblog::JobLog& log);

/// Spearman correlation between per-size-bucket node count and median
/// wait (monotonicity of "bigger waits longer").
double wait_scale_trend(const joblog::JobLog& log);

}  // namespace failmine::analysis
