// failmine/analysis/cooccurrence.hpp
//
// Co-occurrence structure between RAS event categories.
//
// Error propagation shows up in RAS logs as cross-category co-occurrence:
// a torus link failure drags messaging-unit errors with it, a power fault
// precedes node fatals. We quantify this with a lift matrix: for every
// ordered category pair (A, B), how much more often does a B event follow
// an A event within (window, same-midplane) than the B base rate predicts?
// Lift >> 1 marks propagation channels; lift ~ 1 marks independence.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "raslog/category.hpp"
#include "raslog/event.hpp"

namespace failmine::analysis {

inline constexpr std::size_t kCategoryCount =
    sizeof(raslog::kAllCategories) / sizeof(raslog::kAllCategories[0]);

struct CooccurrenceConfig {
  std::int64_t window_seconds = 600;   ///< forward window after the trigger
  /// Spatial scope: pairs must share an ancestor at (or deeper than) this.
  topology::Level spatial_level = topology::Level::kMidplane;
  /// Only consider events at or above this severity as triggers/followers.
  raslog::Severity min_severity = raslog::Severity::kWarn;
};

/// Lift matrix over the category set (row = trigger, column = follower).
struct CooccurrenceResult {
  /// follows[a][b]: events of category b that followed an event of
  /// category a within the window on the same hardware neighbourhood.
  std::array<std::array<std::uint64_t, kCategoryCount>, kCategoryCount>
      follows{};
  /// Number of qualifying (severity-filtered) events per category.
  std::array<std::uint64_t, kCategoryCount> totals{};
  /// lift[a][b] = P(b follows a) / P(b anywhere in a same-length window).
  std::array<std::array<double, kCategoryCount>, kCategoryCount> lift{};
  std::uint64_t qualifying_events = 0;
  double span_seconds = 0.0;
};

/// Computes the lift matrix over `log`.
CooccurrenceResult category_cooccurrence(const raslog::RasLog& log,
                                         const CooccurrenceConfig& config = {});

/// The strongest propagation channels: ordered (trigger, follower, lift)
/// rows with lift above `min_lift` and at least `min_count` follows,
/// sorted by lift descending.
struct PropagationChannel {
  raslog::Category trigger;
  raslog::Category follower;
  double lift = 0.0;
  std::uint64_t count = 0;
};

std::vector<PropagationChannel> top_channels(const CooccurrenceResult& result,
                                             double min_lift = 2.0,
                                             std::uint64_t min_count = 5);

}  // namespace failmine::analysis
