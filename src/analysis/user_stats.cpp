#include "analysis/user_stats.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.hpp"
#include "stats/concentration.hpp"
#include "util/error.hpp"

namespace failmine::analysis {

namespace {

template <typename KeyOf>
std::vector<GroupStats> aggregate(const std::vector<joblog::JobRecord>& jobs,
                                  const topology::MachineConfig& machine,
                                  KeyOf key_of) {
  std::unordered_map<std::uint32_t, GroupStats> by_key;
  for (const auto& job : jobs) {
    GroupStats& g = by_key[key_of(job)];
    g.group_id = key_of(job);
    ++g.jobs;
    const double ch = job.core_hours(machine);
    g.core_hours += ch;
    if (job.failed()) {
      ++g.failures;
      g.failed_core_hours += ch;
      if (joblog::is_user_caused(job.exit_class)) ++g.user_caused_failures;
      if (joblog::is_system_caused(job.exit_class)) ++g.system_caused_failures;
    }
  }
  std::vector<GroupStats> out;
  out.reserve(by_key.size());
  for (const auto& [id, g] : by_key) out.push_back(g);
  std::sort(out.begin(), out.end(), [](const GroupStats& a, const GroupStats& b) {
    return a.group_id < b.group_id;
  });
  return out;
}

}  // namespace

std::vector<GroupStats> per_user_stats(const joblog::JobLog& log,
                                       const topology::MachineConfig& machine) {
  return per_user_stats(log.jobs(), machine);
}

std::vector<GroupStats> per_project_stats(const joblog::JobLog& log,
                                          const topology::MachineConfig& machine) {
  return per_project_stats(log.jobs(), machine);
}

std::vector<GroupStats> per_user_stats(const std::vector<joblog::JobRecord>& jobs,
                                       const topology::MachineConfig& machine) {
  FAILMINE_TRACE_SPAN("e03.user_stats.per_user");
  return aggregate(jobs, machine,
                   [](const joblog::JobRecord& j) { return j.user_id; });
}

std::vector<GroupStats> per_project_stats(
    const std::vector<joblog::JobRecord>& jobs,
    const topology::MachineConfig& machine) {
  FAILMINE_TRACE_SPAN("e03.user_stats.per_project");
  return aggregate(jobs, machine,
                   [](const joblog::JobRecord& j) { return j.project_id; });
}

std::vector<double> metric_column(const std::vector<GroupStats>& stats,
                                  GroupMetric metric) {
  std::vector<double> col;
  col.reserve(stats.size());
  for (const auto& g : stats) {
    switch (metric) {
      case GroupMetric::kJobs: col.push_back(static_cast<double>(g.jobs)); break;
      case GroupMetric::kFailures:
        col.push_back(static_cast<double>(g.failures));
        break;
      case GroupMetric::kCoreHours: col.push_back(g.core_hours); break;
    }
  }
  return col;
}

ConcentrationSummary concentration(const std::vector<GroupStats>& stats,
                                   GroupMetric metric) {
  if (stats.empty())
    throw failmine::DomainError("concentration requires non-empty stats");
  const auto col = metric_column(stats, metric);
  ConcentrationSummary s;
  s.group_count = stats.size();
  s.gini = stats::gini(col);
  s.top1_share = stats::top_k_share(col, 1);
  s.top10_share = stats::top_k_share(col, 10);
  s.groups_for_half = stats::contributors_for_share(col, 0.5);
  return s;
}

}  // namespace failmine::analysis
