#include "analysis/torus_locality.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::analysis {

TorusLocalityResult torus_locality(const raslog::RasLog& log,
                                   const topology::MachineConfig& machine,
                                   util::Rng& rng, raslog::Severity severity,
                                   std::size_t max_nodes,
                                   std::size_t baseline_pairs) {
  FAILMINE_TRACE_SPAN("e09.torus_locality");
  if (max_nodes < 2) throw failmine::DomainError("need >= 2 nodes for pairs");
  if (baseline_pairs < 1)
    throw failmine::DomainError("need >= 1 baseline pair");

  const topology::TorusShape torus = topology::TorusShape::for_machine(machine);

  // Collect node coordinates of located events of the requested severity.
  std::vector<topology::TorusCoord> coords;
  for (const auto& e : log.events()) {
    if (e.severity != severity) continue;
    if (e.location.level() < topology::Level::kComputeCard) continue;
    coords.push_back(torus.coord_of(e.location.node_index(machine)));
  }

  TorusLocalityResult result;
  result.located_events = coords.size();
  if (coords.size() < 2) return result;

  // Deterministic reservoir-style subsample to bound the O(n^2) pass.
  if (coords.size() > max_nodes) {
    std::vector<topology::TorusCoord> sampled;
    sampled.reserve(max_nodes);
    for (std::size_t i = 0; i < coords.size(); ++i) {
      if (sampled.size() < max_nodes) {
        sampled.push_back(coords[i]);
      } else {
        const std::uint64_t j = rng.uniform_index(i + 1);
        if (j < max_nodes) sampled[j] = coords[i];
      }
    }
    coords = std::move(sampled);
  }

  double total = 0.0;
  std::uint64_t pairs = 0;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    for (std::size_t j = i + 1; j < coords.size(); ++j) {
      total += torus.torus_distance(coords[i], coords[j]);
      ++pairs;
    }
  }
  result.mean_pair_distance = total / static_cast<double>(pairs);

  double baseline_total = 0.0;
  const std::uint64_t node_count = torus.volume();
  for (std::size_t k = 0; k < baseline_pairs; ++k) {
    const auto a = torus.coord_of(
        static_cast<topology::NodeIndex>(rng.uniform_index(node_count)));
    const auto b = torus.coord_of(
        static_cast<topology::NodeIndex>(rng.uniform_index(node_count)));
    baseline_total += torus.torus_distance(a, b);
  }
  result.baseline_distance =
      baseline_total / static_cast<double>(baseline_pairs);
  result.clustering_ratio =
      result.baseline_distance > 0
          ? result.mean_pair_distance / result.baseline_distance
          : 0.0;
  return result;
}

}  // namespace failmine::analysis
