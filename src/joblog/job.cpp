#include "joblog/job.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::joblog {

double JobRecord::core_hours(const topology::MachineConfig& config) const {
  return static_cast<double>(nodes_used) *
         static_cast<double>(config.cores_per_node) *
         (static_cast<double>(runtime_seconds()) / 3600.0);
}

topology::Partition JobRecord::partition(
    const topology::MachineConfig& config) const {
  const int mids = topology::midplanes_for_nodes(nodes_used, config);
  return topology::Partition(partition_first_midplane, mids, config);
}

const std::vector<std::string>& job_csv_header() {
  static const std::vector<std::string> header = {
      "job_id",     "user_id",   "project_id",      "queue",
      "submit_time", "start_time", "end_time",      "nodes_used",
      "task_count", "requested_walltime", "exit_code", "exit_signal",
      "exit_class", "partition_first_midplane"};
  return header;
}

JobLog::JobLog(std::vector<JobRecord> jobs) : jobs_(std::move(jobs)) { finalize(); }

void JobLog::append(JobRecord job) { jobs_.push_back(std::move(job)); }

void JobLog::finalize() {
  std::sort(jobs_.begin(), jobs_.end(), [](const JobRecord& a, const JobRecord& b) {
    if (a.start_time != b.start_time) return a.start_time < b.start_time;
    return a.job_id < b.job_id;
  });
  index_.clear();
  index_.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const auto [it, inserted] = index_.emplace(jobs_[i].job_id, i);
    if (!inserted)
      throw failmine::DomainError("duplicate job id " +
                                  std::to_string(jobs_[i].job_id));
  }
}

const JobRecord& JobLog::by_id(std::uint64_t job_id) const {
  const auto it = index_.find(job_id);
  if (it == index_.end())
    throw failmine::DomainError("unknown job id " + std::to_string(job_id));
  return jobs_[it->second];
}

bool JobLog::contains(std::uint64_t job_id) const {
  return index_.contains(job_id);
}

std::vector<JobRecord> JobLog::failures() const {
  std::vector<JobRecord> out;
  for (const auto& j : jobs_)
    if (j.failed()) out.push_back(j);
  return out;
}

double JobLog::total_core_hours(const topology::MachineConfig& config) const {
  double total = 0.0;
  for (const auto& j : jobs_) total += j.core_hours(config);
  return total;
}

double JobLog::span_days() const {
  if (jobs_.empty()) return 0.0;
  util::UnixSeconds lo = jobs_.front().submit_time;
  util::UnixSeconds hi = jobs_.front().end_time;
  for (const auto& j : jobs_) {
    lo = std::min(lo, j.submit_time);
    hi = std::max(hi, j.end_time);
  }
  return static_cast<double>(hi - lo) / static_cast<double>(util::kSecondsPerDay);
}

void JobLog::write_csv(const std::string& path) const {
  util::CsvWriter writer(path, job_csv_header());
  for (const auto& j : jobs_) {
    writer.write_row({
        std::to_string(j.job_id),
        std::to_string(j.user_id),
        std::to_string(j.project_id),
        j.queue,
        util::format_timestamp(j.submit_time),
        util::format_timestamp(j.start_time),
        util::format_timestamp(j.end_time),
        std::to_string(j.nodes_used),
        std::to_string(j.task_count),
        std::to_string(j.requested_walltime),
        std::to_string(j.exit_code),
        std::to_string(j.exit_signal),
        exit_class_name(j.exit_class),
        std::to_string(j.partition_first_midplane),
    });
  }
  writer.close();
}

namespace {

// Row is std::vector<std::string> (serial reader) or util::FieldVec
// (ingest engine); both index to something convertible to string_view.
// Fills `j` in place so string fields keep their capacity when the
// caller reuses one record across rows.
template <class Row>
void parse_row_into(const Row& row, JobRecord& j) {
  j.job_id = util::parse_uint(row[0]);
  j.user_id = static_cast<std::uint32_t>(util::parse_uint(row[1]));
  j.project_id = static_cast<std::uint32_t>(util::parse_uint(row[2]));
  j.queue = std::string_view(row[3]);
  j.submit_time = util::parse_timestamp(row[4]);
  j.start_time = util::parse_timestamp(row[5]);
  j.end_time = util::parse_timestamp(row[6]);
  j.nodes_used = static_cast<std::uint32_t>(util::parse_uint(row[7]));
  j.task_count = static_cast<std::uint32_t>(util::parse_uint(row[8]));
  j.requested_walltime = util::parse_int(row[9]);
  j.exit_code = static_cast<int>(util::parse_int(row[10]));
  j.exit_signal = static_cast<int>(util::parse_int(row[11]));
  j.exit_class = exit_class_from_name(row[12]);
  j.partition_first_midplane = static_cast<int>(util::parse_int(row[13]));
  if (j.end_time < j.start_time)
    throw failmine::ParseError("job " + std::string(row[0]) +
                               " ends before it starts");
  if (j.start_time < j.submit_time)
    throw failmine::ParseError("job " + std::string(row[0]) +
                               " starts before submission");
}

template <class Row>
JobRecord parse_row(const Row& row) {
  JobRecord j;
  parse_row_into(row, j);
  return j;
}

}  // namespace

void parse_csv_row(const util::FieldVec& row, JobRecord& out) {
  parse_row_into(row, out);
}

JobLog JobLog::read_csv(const std::string& path,
                        const ingest::LoadOptions& options,
                        ingest::Engine engine) {
  if (ingest::use_serial_reader(options, engine)) {
    std::vector<JobRecord> jobs;
    for_each_csv(path, [&](const JobRecord& j) {
      jobs.push_back(j);
      return true;
    });
    return JobLog(std::move(jobs));
  }
  FAILMINE_TRACE_SPAN("joblog.read_csv");
  return JobLog(ingest::load_csv<JobRecord>(
      path, job_csv_header(), "joblog", "job log", "parse.joblog.records",
      [](const util::FieldVec& row) { return parse_row(row); }, options));
}

void JobLog::for_each_csv(
    const std::string& path,
    const std::function<bool(const JobRecord&)>& callback) {
  FAILMINE_TRACE_SPAN("joblog.read_csv");
  util::CsvReader reader(path);
  if (reader.header() != job_csv_header())
    throw failmine::ParseError("unexpected job log header in " + path);
  obs::Counter& records = obs::metrics().counter("parse.joblog.records");
  std::vector<std::string> row;
  while (reader.next(row)) {
    JobRecord j;
    try {
      j = parse_row(row);
    } catch (const failmine::Error& e) {
      obs::metrics().counter("parse.lines_rejected").add();
      obs::logger().warn("parse.record_rejected",
                         {{"source", "joblog"},
                          {"file", path},
                          {"row", reader.rows_read() + 1},
                          {"error", e.what()}});
      throw;
    }
    records.add();
    if (!callback(j)) break;
  }
}

}  // namespace failmine::joblog
