// failmine/joblog/job.hpp
//
// Cobalt-style job scheduling records and the JobLog container.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ingest/loader.hpp"
#include "joblog/exit_status.hpp"
#include "topology/machine.hpp"
#include "topology/partition.hpp"
#include "util/time.hpp"

namespace failmine::util {
class FieldVec;
}  // namespace failmine::util

namespace failmine::joblog {

/// One record from the job scheduling log.
struct JobRecord {
  std::uint64_t job_id = 0;
  std::uint32_t user_id = 0;
  std::uint32_t project_id = 0;
  std::string queue;                     ///< "prod-capability", "prod-short", ...
  util::UnixSeconds submit_time = 0;
  util::UnixSeconds start_time = 0;
  util::UnixSeconds end_time = 0;
  std::uint32_t nodes_used = 0;          ///< allocation size in nodes
  std::uint32_t task_count = 0;          ///< runjob tasks launched by the script
  std::int64_t requested_walltime = 0;   ///< seconds
  int exit_code = 0;
  int exit_signal = 0;
  ExitClass exit_class = ExitClass::kSuccess;
  int partition_first_midplane = 0;      ///< allocation placement

  /// Wall-clock runtime in seconds (end - start).
  std::int64_t runtime_seconds() const { return end_time - start_time; }

  /// Queue wait in seconds (start - submit).
  std::int64_t wait_seconds() const { return start_time - submit_time; }

  /// Core-hours consumed (nodes * cores/node * hours).
  double core_hours(const topology::MachineConfig& config) const;

  /// The partition the allocation occupied.
  topology::Partition partition(const topology::MachineConfig& config) const;

  bool failed() const { return is_failure(exit_class); }

  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

/// The job log CSV column order (what write_csv emits and read_csv
/// expects).
const std::vector<std::string>& job_csv_header();

/// Parses one CSV row (job_csv_header() order) into `out` in place —
/// string fields keep their capacity across calls, so a reused record
/// parses with no per-row allocation. Throws failmine::Error on invalid
/// rows; `out` is unspecified afterwards.
void parse_csv_row(const util::FieldVec& row, JobRecord& out);

/// In-memory job log, ordered by start time.
class JobLog {
 public:
  JobLog() = default;
  explicit JobLog(std::vector<JobRecord> jobs);

  const std::vector<JobRecord>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  void append(JobRecord job);
  void finalize();  ///< sort by (start_time, job_id) and rebuild the index

  /// Looks up a job by id; throws DomainError if absent.
  const JobRecord& by_id(std::uint64_t job_id) const;
  bool contains(std::uint64_t job_id) const;

  /// All failed jobs in time order.
  std::vector<JobRecord> failures() const;

  /// Total core-hours over all jobs.
  double total_core_hours(const topology::MachineConfig& config) const;

  /// Observation span in days (first submit to last end).
  double span_days() const;

  void write_csv(const std::string& path) const;

  /// Reads a log written by write_csv. Defaults to the parallel mmap
  /// ingest engine; `options.threads == 1` (or Engine::kSerial) selects
  /// the serial reader. Both paths produce identical results.
  static JobLog read_csv(const std::string& path,
                         const ingest::LoadOptions& options = {},
                         ingest::Engine engine = ingest::Engine::kAuto);

  /// Streams a CSV job log row by row in O(1) memory; `callback` returns
  /// false to stop early.
  static void for_each_csv(const std::string& path,
                           const std::function<bool(const JobRecord&)>& callback);

 private:
  std::vector<JobRecord> jobs_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace failmine::joblog
