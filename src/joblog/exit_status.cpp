#include "joblog/exit_status.hpp"

#include "util/error.hpp"

namespace failmine::joblog {

std::string exit_class_name(ExitClass cls) {
  switch (cls) {
    case ExitClass::kSuccess: return "SUCCESS";
    case ExitClass::kUserAppError: return "USER_APP_ERROR";
    case ExitClass::kUserConfigError: return "USER_CONFIG_ERROR";
    case ExitClass::kUserKill: return "USER_KILL";
    case ExitClass::kWalltimeLimit: return "WALLTIME_LIMIT";
    case ExitClass::kSystemHardware: return "SYSTEM_HARDWARE";
    case ExitClass::kSystemSoftware: return "SYSTEM_SOFTWARE";
    case ExitClass::kSystemIo: return "SYSTEM_IO";
  }
  throw failmine::DomainError("unknown exit class");
}

ExitClass exit_class_from_name(std::string_view name) {
  for (ExitClass c : kAllExitClasses)
    if (exit_class_name(c) == name) return c;
  throw failmine::ParseError("unknown exit class: '" + std::string(name) + "'");
}

bool is_failure(ExitClass cls) { return cls != ExitClass::kSuccess; }

bool is_user_caused(ExitClass cls) {
  switch (cls) {
    case ExitClass::kUserAppError:
    case ExitClass::kUserConfigError:
    case ExitClass::kUserKill:
    case ExitClass::kWalltimeLimit:
      return true;
    default:
      return false;
  }
}

bool is_system_caused(ExitClass cls) {
  switch (cls) {
    case ExitClass::kSystemHardware:
    case ExitClass::kSystemSoftware:
    case ExitClass::kSystemIo:
      return true;
    default:
      return false;
  }
}

ExitClass classify_exit(int exit_code, int signal, bool system_attributed,
                        bool io_attributed, bool software_attributed) {
  if (system_attributed) {
    if (io_attributed) return ExitClass::kSystemIo;
    if (software_attributed) return ExitClass::kSystemSoftware;
    return ExitClass::kSystemHardware;
  }
  if (exit_code == 0 && signal == 0) return ExitClass::kSuccess;
  if (exit_code == 24) return ExitClass::kWalltimeLimit;  // Cobalt walltime marker
  if (signal == 2 || signal == 15) return ExitClass::kUserKill;
  if (exit_code >= 125 && exit_code < 128) return ExitClass::kUserConfigError;
  return ExitClass::kUserAppError;
}

}  // namespace failmine::joblog
