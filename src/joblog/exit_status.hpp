// failmine/joblog/exit_status.hpp
//
// Exit-status taxonomy for Cobalt job records.
//
// The paper's takeaway T-A rests on classifying the 99,245 failed jobs by
// their exit codes into *user-caused* failures (bugs in code, wrong
// configuration, misoperations — 99.4 %) versus *system-caused* failures
// (0.6 %). We model the taxonomy as an exit class enum plus the mapping
// from (exit_code, signal) pairs to classes, mirroring how the study
// groups Cobalt's recorded statuses.

#pragma once

#include <string>
#include <string_view>

namespace failmine::joblog {

/// Broad outcome classes of a job, as derived from its exit status.
enum class ExitClass {
  kSuccess,         ///< exit code 0
  kUserAppError,    ///< nonzero application exit code (bug in code)
  kUserConfigError, ///< launch/env misconfiguration (runjob refused, env)
  kUserKill,        ///< user or operator killed the job (SIGINT/SIGTERM/qdel)
  kWalltimeLimit,   ///< scheduler killed the job at its walltime limit
  kSystemHardware,  ///< node/network/memory hardware fault killed the job
  kSystemSoftware,  ///< system-software fault (kernel, control system)
  kSystemIo,        ///< I/O subsystem failure (ION, filesystem)
};

/// Canonical name ("SUCCESS", "USER_APP_ERROR", ...).
std::string exit_class_name(ExitClass cls);

/// Parses the canonical name; throws ParseError.
ExitClass exit_class_from_name(std::string_view name);

/// All classes, stable order.
inline constexpr ExitClass kAllExitClasses[] = {
    ExitClass::kSuccess,        ExitClass::kUserAppError,
    ExitClass::kUserConfigError, ExitClass::kUserKill,
    ExitClass::kWalltimeLimit,  ExitClass::kSystemHardware,
    ExitClass::kSystemSoftware, ExitClass::kSystemIo};

/// A failed job (anything but success).
bool is_failure(ExitClass cls);

/// The paper's user/system attribution: user behaviour covers app errors,
/// config errors, kills and walltime overruns.
bool is_user_caused(ExitClass cls);

/// System-caused failure classes.
bool is_system_caused(ExitClass cls);

/// Derives the class from a Cobalt-style (exit_code, signal) pair.
///
/// Conventions (modeled on Cobalt/runjob):
///   code 0,  signal 0     -> SUCCESS
///   signal 9 after a scheduler walltime kill marker (code 24) -> WALLTIME
///   signal 2/15 (INT/TERM) -> USER_KILL
///   code in [125, 128)    -> USER_CONFIG (launcher could not start app)
///   signal in {7, 10, 11} on hardware-error nodes is recorded by the
///     control system as code 139/135 w/ system flag; we take an explicit
///     `system_attributed` hint carried by the record instead of guessing.
ExitClass classify_exit(int exit_code, int signal, bool system_attributed,
                        bool io_attributed = false,
                        bool software_attributed = false);

}  // namespace failmine::joblog
