// failmine/obs/log.hpp
//
// Structured, leveled logging for the toolkit.
//
// A log record is an event name plus key=value fields, not a free-form
// message: `logger().warn("parse.row_rejected", {{"file", path},
// {"row", 17}})`. Records go to pluggable sinks; the default global
// logger writes human-readable text to stderr at WARN and above (override
// the threshold with FAILMINE_LOG_LEVEL=debug|info|warn|error|off).
//
// Sinks that hit I/O failures throw failmine::ObsError — telemetry
// problems are surfaced, never silently swallowed.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace failmine::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// "debug", "info", "warn", "error", "off".
std::string_view log_level_name(LogLevel level);

/// Inverse of log_level_name; throws ParseError on unknown names.
LogLevel log_level_from_name(std::string_view name);

/// One key=value pair attached to a log record.
struct Field {
  using Value =
      std::variant<std::string, std::int64_t, std::uint64_t, double, bool>;

  std::string key;
  Value value;

  Field(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  Field(std::string k, const char* v) : key(std::move(k)), value(std::string(v)) {}
  Field(std::string k, std::string_view v)
      : key(std::move(k)), value(std::string(v)) {}
  Field(std::string k, bool v) : key(std::move(k)), value(v) {}
  Field(std::string k, double v) : key(std::move(k)), value(v) {}
  Field(std::string k, int v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  Field(std::string k, long v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  Field(std::string k, long long v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  Field(std::string k, unsigned v)
      : key(std::move(k)), value(static_cast<std::uint64_t>(v)) {}
  Field(std::string k, unsigned long v)
      : key(std::move(k)), value(static_cast<std::uint64_t>(v)) {}
  Field(std::string k, unsigned long long v)
      : key(std::move(k)), value(static_cast<std::uint64_t>(v)) {}

  /// The value rendered as plain text (no quoting).
  std::string value_string() const;
};

/// A fully assembled record handed to every sink.
struct LogRecord {
  std::chrono::system_clock::time_point time;
  LogLevel level = LogLevel::kInfo;
  std::string event;
  std::vector<Field> fields;
};

/// `record` as a single JSON object (no trailing newline):
/// {"time":"...","level":"warn","event":"...","field":value,...}.
/// Shared by JsonlFileSink and the flight recorder.
std::string log_record_json(const LogRecord& record);

/// Destination for log records. Implementations must be safe to call from
/// multiple threads (the Logger serializes writes per sink).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
  virtual void flush() {}
};

/// Human-readable text to stderr:
///   2026-08-06T12:00:00Z WARN parse.row_rejected file=jobs.csv row=17
class StderrSink : public LogSink {
 public:
  void write(const LogRecord& record) override;
};

/// One JSON object per line, appended to a file. Throws ObsError if the
/// file cannot be opened or a write fails.
class JsonlFileSink : public LogSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  void write(const LogRecord& record) override;
  void flush() override;

 private:
  std::ofstream out_;
  std::string path_;
};

/// Leveled logger fanning records out to its sinks. Cheap to query:
/// `enabled()` is one relaxed atomic load, so disabled levels cost
/// nothing beyond the check.
class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::kWarn);

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void add_sink(std::shared_ptr<LogSink> sink);
  void set_sinks(std::vector<std::shared_ptr<LogSink>> sinks);
  void flush();

  void log(LogLevel level, std::string_view event,
           std::initializer_list<Field> fields = {});

  void debug(std::string_view event, std::initializer_list<Field> fields = {}) {
    log(LogLevel::kDebug, event, fields);
  }
  void info(std::string_view event, std::initializer_list<Field> fields = {}) {
    log(LogLevel::kInfo, event, fields);
  }
  void warn(std::string_view event, std::initializer_list<Field> fields = {}) {
    log(LogLevel::kWarn, event, fields);
  }
  void error(std::string_view event, std::initializer_list<Field> fields = {}) {
    log(LogLevel::kError, event, fields);
  }

 private:
  std::atomic<int> level_;
  std::mutex mutex_;  // guards sinks_ and serializes writes
  std::vector<std::shared_ptr<LogSink>> sinks_;
};

/// The process-wide logger used by all instrumented library code.
/// Starts with a StderrSink; threshold comes from FAILMINE_LOG_LEVEL
/// (default warn).
Logger& logger();

}  // namespace failmine::obs
