#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "obs/json.hpp"
#include "obs/labels.hpp"
#include "util/error.hpp"

namespace failmine::obs {

namespace {

double unix_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Gauge::add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw failmine::DomainError("histogram needs at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw failmine::DomainError("histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  exemplars_ = std::make_unique<ExemplarSlot[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::size_t Histogram::bucket_index(double v) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double v, std::uint64_t exemplar_trace_id) {
  observe(v);
  if (exemplar_trace_id == 0) return;
  ExemplarSlot& slot = exemplars_[bucket_index(v)];
  std::uint32_t gen = slot.gen.load(std::memory_order_relaxed);
  if ((gen & 1u) != 0) return;  // another tagger mid-write: skip
  if (!slot.gen.compare_exchange_strong(gen, gen + 1,
                                        std::memory_order_acquire))
    return;
  slot.value.store(v, std::memory_order_relaxed);
  slot.trace_id.store(exemplar_trace_id, std::memory_order_relaxed);
  slot.unix_seconds.store(unix_now_seconds(), std::memory_order_relaxed);
  slot.gen.store(gen + 2, std::memory_order_release);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

std::vector<Exemplar> Histogram::exemplars() const {
  std::vector<Exemplar> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const ExemplarSlot& slot = exemplars_[i];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t before = slot.gen.load(std::memory_order_acquire);
      if ((before & 1u) != 0) continue;  // write in flight
      Exemplar e;
      e.value = slot.value.load(std::memory_order_relaxed);
      e.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      e.unix_seconds = slot.unix_seconds.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.gen.load(std::memory_order_relaxed) != before) continue;
      out[i] = e;
      break;
    }
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
    exemplars_[i].trace_id.store(0, std::memory_order_relaxed);
    exemplars_[i].value.store(0.0, std::memory_order_relaxed);
    exemplars_[i].unix_seconds.store(0.0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double histogram_quantile(const HistogramSample& sample, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : sample.buckets) total += b;
  if (total == 0 || sample.upper_bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < sample.upper_bounds.size(); ++i) {
    const std::uint64_t in_bucket = i < sample.buckets.size() ? sample.buckets[i] : 0;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lower = i == 0 ? 0.0 : sample.upper_bounds[i - 1];
      const double upper = sample.upper_bounds[i];
      if (in_bucket == 0) return upper;
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  // Target rank lives in the overflow bucket: clamp to the top bound.
  return sample.upper_bounds.back();
}

std::vector<double> default_histogram_bounds() {
  return {1,   2,   5,   10,   20,   50,   100,  200,
          500, 1000, 2000, 5000, 10000};
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = default_histogram_bounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view family,
                                  const std::vector<MetricLabel>& labels) {
  return counter(labeled_name(family, labels));
}

Gauge& MetricsRegistry::gauge(std::string_view family,
                              const std::vector<MetricLabel>& labels) {
  return gauge(labeled_name(family, labels));
}

Histogram& MetricsRegistry::histogram(std::string_view family,
                                      const std::vector<MetricLabel>& labels,
                                      std::vector<double> upper_bounds) {
  return histogram(labeled_name(family, labels), std::move(upper_bounds));
}

MetricsSample MetricsRegistry::sample() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSample out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.upper_bounds = h->upper_bounds();
    s.buckets = h->bucket_counts();
    s.exemplars = h->exemplars();
    s.count = h->count();
    s.sum = h->sum();
    out.histograms.emplace_back(name, std::move(s));
  }
  return out;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += json_number(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(h->count());
    out += ",\"sum\":";
    out += json_number(h->sum());
    out += ",\"bounds\":[";
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += json_number(bounds[i]);
    }
    out += "],\"buckets\":[";
    const auto buckets = h->bucket_counts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_)
    out += name + " " + std::to_string(c->value()) + "\n";
  for (const auto& [name, g] : gauges_)
    out += name + " " + json_number(g->value()) + "\n";
  for (const auto& [name, h] : histograms_)
    out += name + " count=" + std::to_string(h->count()) +
           " sum=" + json_number(h->sum()) + " mean=" + json_number(h->mean()) +
           "\n";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw failmine::ObsError("cannot open metrics export file: " + path);
  out << to_json() << "\n";
  out.flush();
  if (!out) throw failmine::ObsError("write failed on metrics export: " + path);
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  // Leaked intentionally (see obs::logger()).
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

void update_process_metrics() {
  // Anchored at the first call (the obs layer coming up), which for the
  // CLI and the benches is within milliseconds of exec.
  static const double start_unix = unix_now_seconds();
  static const auto start_steady = std::chrono::steady_clock::now();
  metrics().gauge("process_start_time_seconds").set(start_unix);
  metrics()
      .gauge("failmine_uptime_seconds")
      .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_steady)
               .count());
}

}  // namespace failmine::obs
