#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace failmine::obs {

void Gauge::add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw failmine::DomainError("histogram needs at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw failmine::DomainError("histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_histogram_bounds() {
  return {1,   2,   5,   10,   20,   50,   100,  200,
          500, 1000, 2000, 5000, 10000};
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = default_histogram_bounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

MetricsSample MetricsRegistry::sample() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSample out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.upper_bounds = h->upper_bounds();
    s.buckets = h->bucket_counts();
    s.count = h->count();
    s.sum = h->sum();
    out.histograms.emplace_back(name, std::move(s));
  }
  return out;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += json_number(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(h->count());
    out += ",\"sum\":";
    out += json_number(h->sum());
    out += ",\"bounds\":[";
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += json_number(bounds[i]);
    }
    out += "],\"buckets\":[";
    const auto buckets = h->bucket_counts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_)
    out += name + " " + std::to_string(c->value()) + "\n";
  for (const auto& [name, g] : gauges_)
    out += name + " " + json_number(g->value()) + "\n";
  for (const auto& [name, h] : histograms_)
    out += name + " count=" + std::to_string(h->count()) +
           " sum=" + json_number(h->sum()) + " mean=" + json_number(h->mean()) +
           "\n";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw failmine::ObsError("cannot open metrics export file: " + path);
  out << to_json() << "\n";
  out.flush();
  if (!out) throw failmine::ObsError("write failed on metrics export: " + path);
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  // Leaked intentionally (see obs::logger()).
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace failmine::obs
