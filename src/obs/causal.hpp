// failmine/obs/causal.hpp
//
// Causal (per-record) tracing: sampled end-to-end trace contexts that
// ride a record through a multi-stage pipeline and attribute its
// latency to the stage that spent it.
//
// Thread-scoped spans (obs/trace.hpp) answer "what is this thread
// doing"; they cannot follow one record across the ingest ring, the
// reorder heap and a shard queue. The CausalTracer can: the emitter
// calls maybe_begin(key) — a deterministic hash of the record's stable
// key selects ~1/sample_period of records, so repeated runs sample the
// same records — and gets back a small integer trace ref (0 means "not
// sampled": the non-sampled path costs one hash and one branch, no
// allocation, no atomics). Each downstream stage calls stamp(ref, stage)
// which records a steady-clock timestamp in the trace's slot and feeds
// the stage-to-stage delta into a per-stage latency histogram in the
// metrics registry, attaching the trace id as an exemplar (rendered by
// the OpenMetrics exposition, see prometheus.hpp). The final stage also
// observes the end-to-end latency.
//
// Slots live in a fixed ring of atomics: begin() claims the next slot
// round-robin, so a trace stays resolvable (find(trace_id), the
// /trace?id= endpoint) until capacity newer samples have overwritten
// it. All slot fields are individually atomic — a racing reader may see
// a trace mid-write (it re-checks the id before and after reading), but
// never tears a value, so the tracer is safe to scrape while the
// pipeline runs.
//
// Registry instruments (created by configure()):
//   causal.sampled                 counter of sampled records
//   causal.stage.<name>_us         latency histogram per non-emit stage
//   causal.e2e_us                  emit -> final-stage latency
//
// critical_path_text() / stage_stats() summarize the histograms into
// the end-of-run report: per-stage p50/p99 and each stage's share of
// the total sampled latency, naming the dominant stage.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace failmine::obs {

class Counter;
class Histogram;

/// Upper bound on configure()'s stage list (slot stamps are a fixed
/// array so begin/stamp never allocate).
inline constexpr std::size_t kCausalMaxStages = 8;

/// One stage timestamp of a resolved trace (microseconds on the
/// process-wide steady clock, so stamps are comparable across threads).
struct CausalStamp {
  std::string stage;
  std::uint64_t at_us = 0;
};

/// Full stage timeline of one sampled record.
struct CausalTimeline {
  std::uint64_t trace_id = 0;
  std::uint64_t key = 0;  ///< the record key passed to maybe_begin()
  std::vector<CausalStamp> stamps;  ///< stage order; unset stages omitted

  /// {"trace_id":"...","key":N,"stages":[{"stage":"...","at_us":N},...]}
  std::string to_json() const;
};

/// Latency summary of one non-emit stage (from its registry histogram).
struct CausalStageStat {
  std::string stage;
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double share = 0.0;  ///< this stage's fraction of summed stage time
};

class CausalTracer {
 public:
  /// (Re)defines the stage list, sampling period and slot capacity, and
  /// creates the registry histograms. `stage_names[0]` is the emission
  /// stage (stamped by maybe_begin); each later stage gets a
  /// `causal.stage.<name>_us` histogram fed by stamp(). A period of 0
  /// disables sampling entirely. Clears any previously recorded traces.
  /// Throws DomainError on an empty/oversized stage list or zero
  /// capacity.
  void configure(std::vector<std::string> stage_names,
                 std::uint32_t sample_period, std::size_t capacity = 4096);

  std::uint32_t sample_period() const {
    return sample_period_.load(std::memory_order_relaxed);
  }
  bool enabled() const { return sample_period() != 0; }

  /// Sampling decision + emission stamp. Returns 0 (not sampled — by
  /// far the common case, and free of side effects) unless `key` hashes
  /// into the 1/sample_period sample; then claims a slot, stamps stage
  /// 0 and returns the slot's trace ref (pass it to stamp()).
  std::uint32_t maybe_begin(std::uint64_t key);

  /// Stamps stage `stage` (1-based relative to configure()'s list) on
  /// the trace behind `ref`, observing the delta from the previous
  /// stage into the stage histogram (with the trace id as exemplar).
  /// The last stage also observes end-to-end latency. No-op on ref 0.
  void stamp(std::uint32_t ref, std::size_t stage);

  /// The trace id behind a live ref (0 for ref 0).
  std::uint64_t trace_id_of(std::uint32_t ref) const;

  /// Resolves a sampled trace by id while its slot has not been
  /// recycled; stamps are returned in stage order.
  std::optional<CausalTimeline> find(std::uint64_t trace_id) const;

  /// Total records sampled since configure().
  std::uint64_t sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }

  std::vector<std::string> stage_names() const;

  /// Per-stage latency summary from the registry histograms (one row
  /// per non-emit stage, plus shares of the summed stage time).
  std::vector<CausalStageStat> stage_stats() const;

  /// Human-readable end-of-run critical-path report: the per-stage
  /// table plus end-to-end p50/p99 and the dominant stage.
  std::string critical_path_text() const;

  /// Drops every recorded trace and zeroes the sampled counter; keeps
  /// the configured stages (histograms are registry-owned and survive).
  void reset();

 private:
  struct Slot {
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> key{0};
    std::array<std::atomic<std::uint64_t>, kCausalMaxStages> at_us{};
  };

  // configure() must not race the hot path: it is called before a
  // pipeline starts stamping (thread creation publishes the raw
  // pointers below). find()/stage_stats() may race stamping freely —
  // they only touch atomics and mutex-guarded configuration.
  mutable std::mutex mutex_;  // guards stages_ for configure/find/report
  std::vector<std::string> stages_;
  std::array<Histogram*, kCausalMaxStages> stage_hists_{};  ///< [1..count)
  Histogram* e2e_hist_ = nullptr;
  Counter* sampled_counter_ = nullptr;
  std::unique_ptr<Slot[]> slots_storage_;
  std::atomic<Slot*> slots_{nullptr};
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::uint32_t> stage_count_{0};
  std::atomic<std::uint32_t> sample_period_{0};
  std::atomic<std::uint64_t> next_slot_{0};
  std::atomic<std::uint64_t> sampled_{0};
};

/// The process-wide tracer every instrumented pipeline stamps into.
CausalTracer& causal_tracer();

/// Canonical 16-hex-digit spelling of a trace id (what exemplars and
/// /trace?id= use).
std::string causal_trace_id_hex(std::uint64_t id);

/// Parses the hex spelling (with or without a leading 0x). Returns
/// false on malformed input.
bool parse_trace_id(std::string_view text, std::uint64_t& id);

}  // namespace failmine::obs
