#include "obs/prometheus.hpp"

#include "obs/causal.hpp"
#include "obs/labels.hpp"

namespace failmine::obs {

namespace {

bool exposition_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_help_and_type(std::string& out, const std::string& exposition,
                          const std::string& original, const char* type) {
  out += "# HELP " + exposition + " failmine " + type + " " + original + "\n";
  out += "# TYPE " + exposition + " " + type + "\n";
}

/// A registry name with an inline label block ("family{path=\"x\"}") split
/// into the sanitized family name and the verbatim label block. The
/// registry itself is label-unaware; this spelling convention (used by
/// obs.serve.requests{path=...}) is resolved here, at render time.
struct SplitName {
  std::string family;  ///< exposition-sanitized
  std::string labels;  ///< "{...}" verbatim, or ""
};

SplitName split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}')
    return {prometheus_name(name), ""};
  ParsedMetricName parsed;
  if (!parse_metric_name(name, parsed) || parsed.labels.empty())
    // Unparseable block: keep the legacy verbatim pass-through rather
    // than dropping the instrument.
    return {prometheus_name(std::string_view(name).substr(0, brace)),
            name.substr(brace)};
  // Re-render the block so hostile values arrive fully escaped (`\\`,
  // `\"`, `\n`) — the registry spelling itself only guarantees what its
  // writer escaped.
  std::string block = "{";
  for (std::size_t i = 0; i < parsed.labels.size(); ++i) {
    if (i > 0) block.push_back(',');
    block += prometheus_name(parsed.labels[i].key) + "=\"" +
             escape_label_value(parsed.labels[i].value) + "\"";
  }
  block.push_back('}');
  return {prometheus_name(parsed.family), std::move(block)};
}

/// Emits HELP/TYPE once per family: labelled series of the same family
/// are adjacent in the name-sorted sample ('{' sorts above every name
/// character used here), so tracking the previous family suffices.
void append_family_header(std::string& out, std::string& last_family,
                          const SplitName& split, const std::string& original,
                          const char* type) {
  if (split.family == last_family) return;
  last_family = split.family;
  append_help_and_type(out, split.family,
                       split.labels.empty()
                           ? original
                           : original.substr(0, original.find('{')),
                       type);
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9')
    out.push_back('_');
  for (char c : name) out.push_back(exposition_char(c) ? c : '_');
  return out;
}

namespace {

/// Shared body of the two expositions. `with_exemplars` is the only
/// divergence: OpenMetrics bucket lines append `# {trace_id="..."} v ts`
/// while 0.0.4 must stay exemplar-free (its parsers treat a mid-line
/// `#` as garbage).
std::string render_exposition(const MetricsSample& sample,
                              bool with_exemplars) {
  std::string out;
  std::string last_family;
  for (const auto& [name, value] : sample.counters) {
    const SplitName split = split_labels(name);
    append_family_header(out, last_family, split, name, "counter");
    out += split.family + split.labels + " " + std::to_string(value) + "\n";
  }
  last_family.clear();
  for (const auto& [name, value] : sample.gauges) {
    const SplitName split = split_labels(name);
    append_family_header(out, last_family, split, name, "gauge");
    out += split.family + split.labels + " " + prometheus_number(value) + "\n";
  }
  last_family.clear();
  for (const auto& [name, h] : sample.histograms) {
    const SplitName split = split_labels(name);
    append_family_header(out, last_family, split, name, "histogram");
    // A labeled histogram's bucket series carry the instrument labels
    // alongside `le`: `family_bucket{twin="t3",le="10"}`.
    const std::string bucket_open =
        split.labels.empty()
            ? "{"
            : split.labels.substr(0, split.labels.size() - 1) + ",";
    // The registry's inclusive upper bounds match `le` semantics
    // directly; buckets accumulate left to right so the series is
    // monotone and ends at le="+Inf". _count is derived from the same
    // bucket sum (not the histogram's separate count atomic) so
    // `_count == +Inf bucket` holds even against concurrent observes.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= h.upper_bounds.size(); ++i) {
      const bool overflow = i == h.upper_bounds.size();
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out += split.family + "_bucket" + bucket_open + "le=\"" +
             (overflow ? "+Inf" : prometheus_number(h.upper_bounds[i])) +
             "\"} " + std::to_string(cumulative);
      // An exemplar belongs to the bucket whose observation it
      // recorded, so its value never exceeds that bucket's `le`.
      if (with_exemplars && i < h.exemplars.size() &&
          h.exemplars[i].trace_id != 0) {
        const Exemplar& e = h.exemplars[i];
        out += " # {trace_id=\"" + causal_trace_id_hex(e.trace_id) + "\"} " +
               prometheus_number(e.value) + " " +
               prometheus_number(e.unix_seconds);
      }
      out.push_back('\n');
    }
    out += split.family + "_sum" + split.labels + " " +
           prometheus_number(h.sum) + "\n";
    out += split.family + "_count" + split.labels + " " +
           std::to_string(cumulative) + "\n";
  }
  if (with_exemplars) out += "# EOF\n";
  return out;
}

}  // namespace

std::string render_prometheus(const MetricsSample& sample) {
  return render_exposition(sample, false);
}

std::string render_prometheus(const MetricsRegistry& registry) {
  return render_prometheus(registry.sample());
}

std::string render_openmetrics(const MetricsSample& sample) {
  return render_exposition(sample, true);
}

std::string render_openmetrics(const MetricsRegistry& registry) {
  return render_openmetrics(registry.sample());
}

}  // namespace failmine::obs
