#include "obs/prometheus.hpp"

namespace failmine::obs {

namespace {

bool exposition_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_help_and_type(std::string& out, const std::string& exposition,
                          const std::string& original, const char* type) {
  out += "# HELP " + exposition + " failmine " + type + " " + original + "\n";
  out += "# TYPE " + exposition + " " + type + "\n";
}

/// A registry name with an inline label block ("family{path=\"x\"}") split
/// into the sanitized family name and the verbatim label block. The
/// registry itself is label-unaware; this spelling convention (used by
/// obs.serve.requests{path=...}) is resolved here, at render time.
struct SplitName {
  std::string family;  ///< exposition-sanitized
  std::string labels;  ///< "{...}" verbatim, or ""
};

SplitName split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}')
    return {prometheus_name(name), ""};
  return {prometheus_name(std::string_view(name).substr(0, brace)),
          name.substr(brace)};
}

/// Emits HELP/TYPE once per family: labelled series of the same family
/// are adjacent in the name-sorted sample ('{' sorts above every name
/// character used here), so tracking the previous family suffices.
void append_family_header(std::string& out, std::string& last_family,
                          const SplitName& split, const std::string& original,
                          const char* type) {
  if (split.family == last_family) return;
  last_family = split.family;
  append_help_and_type(out, split.family,
                       split.labels.empty()
                           ? original
                           : original.substr(0, original.find('{')),
                       type);
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9')
    out.push_back('_');
  for (char c : name) out.push_back(exposition_char(c) ? c : '_');
  return out;
}

std::string render_prometheus(const MetricsSample& sample) {
  std::string out;
  std::string last_family;
  for (const auto& [name, value] : sample.counters) {
    const SplitName split = split_labels(name);
    append_family_header(out, last_family, split, name, "counter");
    out += split.family + split.labels + " " + std::to_string(value) + "\n";
  }
  last_family.clear();
  for (const auto& [name, value] : sample.gauges) {
    const SplitName split = split_labels(name);
    append_family_header(out, last_family, split, name, "gauge");
    out += split.family + split.labels + " " + prometheus_number(value) + "\n";
  }
  for (const auto& [name, h] : sample.histograms) {
    const std::string expo = prometheus_name(name);
    append_help_and_type(out, expo, name, "histogram");
    // The registry's inclusive upper bounds match `le` semantics
    // directly; buckets accumulate left to right so the series is
    // monotone and ends at le="+Inf". _count is derived from the same
    // bucket sum (not the histogram's separate count atomic) so
    // `_count == +Inf bucket` holds even against concurrent observes.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out += expo + "_bucket{le=\"" + prometheus_number(h.upper_bounds[i]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    if (!h.buckets.empty()) cumulative += h.buckets.back();
    out += expo + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += expo + "_sum " + prometheus_number(h.sum) + "\n";
    out += expo + "_count " + std::to_string(cumulative) + "\n";
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  return render_prometheus(registry.sample());
}

}  // namespace failmine::obs
