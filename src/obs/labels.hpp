// failmine/obs/labels.hpp
//
// First-class label dimension over the label-unaware registry.
//
// The registry keys instruments by flat name; labels live in the name
// itself as a canonical inline block (`family{key="value",...}`). This
// header owns that spelling: escaping (the Prometheus rules — `\\`,
// `\"`, `\n`), the canonical renderer (keys sorted, values escaped) and
// the escape-aware parser every label-aware consumer (exposition
// renderer, tsdb, query engine, alert engine) shares. A name without a
// label block parses as a bare family with no labels, so legacy
// spellings like `stream.records_in` and labeled fleet spellings like
// `stream.records_in{twin="t3"}` flow through the same code paths.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace failmine::obs {

/// Escapes a raw label value for the inline spelling / the exposition:
/// `\` -> `\\`, `"` -> `\"`, newline -> `\n`.
std::string escape_label_value(std::string_view raw);

/// Inverse of escape_label_value(). Lenient: an unrecognized escape
/// (`\x`) decodes to the bare `x`.
std::string unescape_label_value(std::string_view escaped);

/// A metric name decomposed into its family and decoded labels.
struct ParsedMetricName {
  std::string family;
  std::vector<MetricLabel> labels;  ///< decoded values, canonical order

  /// Value of the label named `key`, or nullptr when absent.
  const std::string* find(std::string_view key) const;
};

/// Canonical inline spelling: `family{k="v",...}` with keys sorted and
/// values escaped; an empty label set renders the bare family.
std::string labeled_name(std::string_view family,
                         std::vector<MetricLabel> labels);

/// Renders just the `{...}` block of labeled_name() (or "" when empty).
std::string label_block(std::vector<MetricLabel> labels);

/// Parses `name` into family + labels. A name without a `{` is a bare
/// family (returns true, empty labels). Returns false when a label
/// block is present but malformed (unterminated value, missing `=`,
/// trailing garbage); callers treat such names as opaque families.
bool parse_metric_name(std::string_view name, ParsedMetricName& out);

/// True when both label sets hold the same key/value pairs
/// (order-insensitive).
bool same_labels(std::vector<MetricLabel> a, std::vector<MetricLabel> b);

}  // namespace failmine::obs
