#include "obs/profile.hpp"

#include <dlfcn.h>
#include <pthread.h>
#include <sched.h>
#include <signal.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define FAILMINE_HAVE_EXECINFO 1
#else
#define FAILMINE_HAVE_EXECINFO 0
#endif

#include <cxxabi.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

// Older glibc headers spell the SIGEV_THREAD_ID target field only
// through the union member.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

// The handler follows frame-pointer chains through stack memory the
// sanitizers have not blessed (redzones of foreign frames on a corrupt
// chain); every candidate dereference is bounds- and alignment-checked
// against the thread's stack instead.
#if defined(__GNUC__) || defined(__clang__)
#define FAILMINE_NO_SANITIZE \
  __attribute__((no_sanitize("address", "thread", "undefined")))
#else
#define FAILMINE_NO_SANITIZE
#endif

namespace failmine::obs {

namespace {

constexpr std::size_t kMaxFrames = 48;
constexpr std::size_t kMaxSpanLabels = SpanLabelStack::kMaxDepth;
constexpr std::size_t kLabelBytes = 48;
constexpr std::size_t kThreadNameBytes = 16;  // pthread name limit

/// One captured stack. Filled entirely inside the signal handler; read
/// only after stop() has observed every handler leave (g_inflight == 0),
/// so no per-slot synchronization is needed.
struct Sample {
  std::uint32_t thread_index = 0;
  std::uint32_t frame_count = 0;
  std::uint32_t span_count = 0;
  void* frames[kMaxFrames];              ///< [0] = innermost PC
  char spans[kMaxSpanLabels][kLabelBytes];  ///< [0] = outermost label
};

/// Per-attached-thread registry entry. `index` is stable for the entry's
/// lifetime (samples reference entries by index); dead entries are
/// recycled for new threads only between captures.
struct ThreadEntry {
  std::uint32_t index = 0;
  pthread_t handle{};
  pid_t tid = 0;
  char name[kThreadNameBytes] = "";
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  timer_t timer{};
  bool timer_armed = false;  ///< guarded by registry_mutex()
  bool alive = true;         ///< guarded by registry_mutex()
};

// Leaked singletons (never destroyed): thread-exit TLS destructors and
// the crash path may run during static teardown.
std::mutex& registry_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
std::vector<std::unique_ptr<ThreadEntry>>& registry() {
  static auto* v = new std::vector<std::unique_ptr<ThreadEntry>>();
  return *v;
}

// ---- handler-visible capture state ---------------------------------
// `g_capturing` gates the handler; `g_inflight` lets stop() wait out
// handlers that are mid-sample before it reads or frees the ring.
std::atomic<bool> g_capturing{false};
std::atomic<int> g_inflight{0};
std::atomic<std::uint64_t> g_next{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint64_t> g_truncated{0};
std::atomic<bool> g_use_backtrace{false};
std::atomic<int> g_hz{99};
Sample* g_ring = nullptr;  ///< stable while g_capturing; owned below
std::size_t g_capacity = 0;

constinit thread_local ThreadEntry* tls_entry = nullptr;

void disarm_locked(ThreadEntry& entry) {
  if (!entry.timer_armed) return;
  ::timer_delete(entry.timer);
  entry.timer_armed = false;
}

bool arm_locked(ThreadEntry& entry, int hz) {
  if (entry.timer_armed) return true;
  clockid_t clock;
  if (::pthread_getcpuclockid(entry.handle, &clock) != 0) return false;
  sigevent event{};
  event.sigev_notify = SIGEV_THREAD_ID;
  event.sigev_signo = SIGPROF;
  event.sigev_notify_thread_id = entry.tid;
  if (::timer_create(clock, &event, &entry.timer) != 0) return false;
  const long interval_ns = 1000000000L / hz;
  itimerspec spec{};
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (::timer_settime(entry.timer, 0, &spec, nullptr) != 0) {
    ::timer_delete(entry.timer);
    return false;
  }
  entry.timer_armed = true;
  return true;
}

/// Disarms this thread's timer and retires its registry entry at thread
/// exit (armed via the odr-use in profile_attach_this_thread).
struct ThreadDetachGuard {
  ~ThreadDetachGuard() {
    if (tls_entry == nullptr) return;
    const std::lock_guard<std::mutex> lock(registry_mutex());
    disarm_locked(*tls_entry);
    tls_entry->alive = false;
    tls_entry = nullptr;
  }
};
thread_local ThreadDetachGuard tls_detach_guard;

/// async-signal-safe bounded string copy (no strncpy: it pads).
void copy_label(char* out, const char* in) {
  std::size_t i = 0;
  for (; i + 1 < kLabelBytes && in[i] != '\0'; ++i) out[i] = in[i];
  out[i] = '\0';
}

/// Frame-pointer walk from the interrupted context. Every dereference is
/// checked against the thread's stack bounds and pointer alignment, and
/// the chain must strictly ascend, so a corrupt frame ends the walk
/// instead of faulting.
FAILMINE_NO_SANITIZE
void capture_frames_fp(Sample& sample, const ThreadEntry& entry,
                       void* ucontext) {
  std::uint32_t n = 0;
  void* pc = nullptr;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  auto* uc = static_cast<ucontext_t*>(ucontext);
  pc = reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  auto* uc = static_cast<ucontext_t*>(ucontext);
  pc = reinterpret_cast<void*>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)ucontext;
  fp = reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
#endif
  if (pc != nullptr) sample.frames[n++] = pc;
  const std::uintptr_t lo = entry.stack_lo;
  const std::uintptr_t hi = entry.stack_hi;
  while (n < kMaxFrames && fp >= lo && fp + 2 * sizeof(void*) <= hi &&
         (fp & (sizeof(void*) - 1)) == 0) {
    auto* frame = reinterpret_cast<void**>(fp);
    void* ret = frame[1];
    if (ret == nullptr) break;
    sample.frames[n++] = ret;
    const auto next = reinterpret_cast<std::uintptr_t>(frame[0]);
    if (next <= fp) break;  // frames must walk up the stack
    fp = next;
  }
  if (n == kMaxFrames) g_truncated.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) sample.frames[n++] = nullptr;  // symbolizes as "(unknown)"
  sample.frame_count = n;
}

#if FAILMINE_HAVE_EXECINFO
void capture_frames_backtrace(Sample& sample) {
  void* raw[kMaxFrames];
  int depth = ::backtrace(raw, static_cast<int>(kMaxFrames));
  // Drop this function, the handler and the signal trampoline.
  constexpr int kSkip = 3;
  const int first = depth > kSkip ? kSkip : 0;
  std::uint32_t n = 0;
  for (int i = first; i < depth; ++i) sample.frames[n++] = raw[i];
  if (depth == static_cast<int>(kMaxFrames))
    g_truncated.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) sample.frames[n++] = nullptr;
  sample.frame_count = n;
}
#endif

void fill_sample(Sample& sample, const ThreadEntry& entry, void* ucontext) {
  sample.thread_index = entry.index;
  const SpanLabelStack& labels = this_thread_span_labels();
  std::uint32_t depth = labels.depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (depth > kMaxSpanLabels) depth = kMaxSpanLabels;
  sample.span_count = depth;
  for (std::uint32_t i = 0; i < depth; ++i)
    copy_label(sample.spans[i], labels.labels[i]);
#if FAILMINE_HAVE_EXECINFO
  if (g_use_backtrace.load(std::memory_order_relaxed)) {
    capture_frames_backtrace(sample);
    return;
  }
#endif
  capture_frames_fp(sample, entry, ucontext);
}

void sigprof_handler(int, siginfo_t*, void* ucontext) {
  const int saved_errno = errno;
  if (g_capturing.load(std::memory_order_acquire)) {
    g_inflight.fetch_add(1, std::memory_order_acq_rel);
    // Re-check after raising inflight: stop() lowers the flag and then
    // waits for inflight to drain, so a handler racing past the first
    // check must not touch the ring once the flag is down.
    if (g_capturing.load(std::memory_order_acquire)) {
      ThreadEntry* entry = tls_entry;
      if (entry != nullptr) {
        const std::uint64_t slot =
            g_next.fetch_add(1, std::memory_order_relaxed);
        if (slot < g_capacity)
          fill_sample(g_ring[slot], *entry, ucontext);
        else
          g_dropped.fetch_add(1, std::memory_order_relaxed);
      }
    }
    g_inflight.fetch_sub(1, std::memory_order_release);
  }
  errno = saved_errno;
}

/// Installs the SIGPROF handler once and leaves it installed for the
/// process lifetime: restoring the default disposition could let a
/// late-delivered timer signal (queued before timer_delete) kill the
/// process. The idle handler costs one atomic load.
void install_handler() {
  static const bool installed = [] {
    struct sigaction action{};
    action.sa_sigaction = sigprof_handler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    return ::sigaction(SIGPROF, &action, nullptr) == 0;
  }();
  if (!installed)
    throw failmine::ObsError("profiler: cannot install SIGPROF handler");
}

// ---- offline symbolization (stop() time only) ----------------------

std::string hex_address(const void* pc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx",
                reinterpret_cast<std::size_t>(pc));
  return buf;
}

/// Resolves one PC to a display name: demangled symbol via dladdr,
/// module+offset when the symbol table has nothing, bare hex otherwise.
/// `return_address` backs the PC up one byte first so a call's return
/// address resolves to the calling function, not whatever follows it.
std::string symbolize(const void* pc, bool return_address) {
  if (pc == nullptr) return "(unknown)";
  const void* lookup = return_address
                           ? static_cast<const char*>(pc) - 1
                           : pc;
  Dl_info info{};
  if (::dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // Folded format reserves ';' (frame separator); argument lists only
    // add noise to flamegraphs.
    if (const std::size_t paren = name.find('('); paren != std::string::npos &&
                                                  paren > 0)
      name.resize(paren);
    std::replace(name.begin(), name.end(), ';', ':');
    return name;
  }
  if (info.dli_fname != nullptr) {
    std::string module = info.dli_fname;
    if (const std::size_t slash = module.rfind('/');
        slash != std::string::npos)
      module.erase(0, slash + 1);
    const auto offset = static_cast<std::size_t>(
        static_cast<const char*>(pc) - static_cast<char*>(info.dli_fbase));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "+0x%zx", offset);
    return module + buf;
  }
  return hex_address(pc);
}

Counter& samples_counter() {
  static Counter& c = metrics().counter("obs.profile.samples");
  return c;
}
Counter& dropped_counter() {
  static Counter& c = metrics().counter("obs.profile.dropped");
  return c;
}
Counter& truncated_counter() {
  static Counter& c = metrics().counter("obs.profile.truncated_stacks");
  return c;
}

// ---- capture lifecycle state (guarded by lifecycle_mutex()) --------
std::mutex& lifecycle_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
bool g_running = false;
ProfileConfig g_config;
std::unique_ptr<Sample[]> g_ring_owner;
std::chrono::steady_clock::time_point g_started_at;

ProfileConfig sanitize(ProfileConfig config) {
  config.hz = std::clamp(config.hz, 1, 1000);
  config.max_samples = std::max<std::size_t>(config.max_samples, 16);
  return config;
}

}  // namespace

void profile_attach_this_thread() {
  if (tls_entry != nullptr) return;
  (void)tls_detach_guard;  // odr-use: arm the thread-exit detach hook
  pthread_t self = ::pthread_self();
  char name[kThreadNameBytes] = "";
  (void)::pthread_getname_np(self, name, sizeof(name));
  std::uintptr_t stack_lo = 0, stack_hi = 0;
  pthread_attr_t attr;
  if (::pthread_getattr_np(self, &attr) == 0) {
    void* lo = nullptr;
    std::size_t size = 0;
    if (::pthread_attr_getstack(&attr, &lo, &size) == 0) {
      stack_lo = reinterpret_cast<std::uintptr_t>(lo);
      stack_hi = stack_lo + size;
    }
    (void)::pthread_attr_destroy(&attr);
  }

  const std::lock_guard<std::mutex> lock(registry_mutex());
  ThreadEntry* entry = nullptr;
  if (!g_capturing.load(std::memory_order_relaxed)) {
    // Recycle a dead slot so bench loops that churn pipelines (and
    // therefore threads) do not grow the registry without bound. Never
    // while capturing: in-ring samples reference entries by index.
    for (auto& candidate : registry())
      if (!candidate->alive) {
        entry = candidate.get();
        break;
      }
  }
  if (entry == nullptr) {
    registry().push_back(std::make_unique<ThreadEntry>());
    entry = registry().back().get();
    entry->index = static_cast<std::uint32_t>(registry().size() - 1);
  }
  entry->handle = self;
  entry->tid = static_cast<pid_t>(::gettid());
  std::memcpy(entry->name, name, sizeof(entry->name));
  entry->stack_lo = stack_lo;
  entry->stack_hi = stack_hi;
  entry->alive = true;
  entry->timer_armed = false;
  if (g_capturing.load(std::memory_order_relaxed))
    (void)arm_locked(*entry, g_hz.load(std::memory_order_relaxed));
  tls_entry = entry;
}

Profiler& Profiler::instance() {
  static Profiler* instance = new Profiler();
  return *instance;
}

bool Profiler::running() const {
  return g_capturing.load(std::memory_order_acquire);
}

bool Profiler::start(const ProfileConfig& config) {
  profile_attach_this_thread();
  const std::lock_guard<std::mutex> lifecycle(lifecycle_mutex());
  if (g_running) return false;
  install_handler();
  g_config = sanitize(config);
#if FAILMINE_HAVE_EXECINFO
  if (g_config.use_backtrace) {
    // First backtrace() call may load libgcc (malloc, dlopen); force it
    // here, outside the signal handler.
    void* warmup[4];
    (void)::backtrace(warmup, 4);
  }
#else
  g_config.use_backtrace = false;
#endif
  // Pre-create the self-metrics so they are scrapeable mid-capture.
  (void)samples_counter();
  (void)dropped_counter();
  (void)truncated_counter();

  g_ring_owner = std::make_unique<Sample[]>(g_config.max_samples);
  g_ring = g_ring_owner.get();
  g_capacity = g_config.max_samples;
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_truncated.store(0, std::memory_order_relaxed);
  g_use_backtrace.store(g_config.use_backtrace, std::memory_order_relaxed);
  g_hz.store(g_config.hz, std::memory_order_relaxed);
  g_started_at = std::chrono::steady_clock::now();

  std::size_t armed = 0;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    // Raise the flag before arming so the first timer tick is captured;
    // late attachers arm themselves against the same flag.
    g_capturing.store(true, std::memory_order_release);
    for (auto& entry : registry()) {
      if (!entry->alive) continue;
      // Thread names are often assigned after attach; re-read them now
      // so folded stacks carry current identity.
      (void)::pthread_getname_np(entry->handle, entry->name,
                                 sizeof(entry->name));
      if (arm_locked(*entry, g_config.hz)) ++armed;
    }
  }
  g_running = true;
  logger().info("obs.profile_started",
                {Field("hz", g_config.hz),
                 Field("threads", static_cast<std::uint64_t>(armed)),
                 Field("ring", static_cast<std::uint64_t>(g_capacity)),
                 Field("backtrace", g_config.use_backtrace)});
  return true;
}

ProfileReport Profiler::stop() {
  const std::lock_guard<std::mutex> lifecycle(lifecycle_mutex());
  ProfileReport report;
  if (!g_running) return report;

  // Order matters: quiesce the handler first, then kill the timers, then
  // wait out any handler already past the gate before touching the ring.
  g_capturing.store(false, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    for (auto& entry : registry()) disarm_locked(*entry);
  }
  while (g_inflight.load(std::memory_order_acquire) != 0) ::sched_yield();

  const std::uint64_t attempts = g_next.load(std::memory_order_relaxed);
  const auto stored = static_cast<std::size_t>(
      std::min<std::uint64_t>(attempts, g_capacity));
  report.hz = g_config.hz;
  report.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_started_at)
          .count();
  report.samples = stored;
  report.dropped = g_dropped.load(std::memory_order_relaxed);
  report.truncated_stacks = g_truncated.load(std::memory_order_relaxed);

  std::vector<std::string> thread_names;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    thread_names.reserve(registry().size());
    for (const auto& entry : registry())
      thread_names.emplace_back(entry->name[0] != '\0' ? entry->name
                                                       : "(thread)");
  }

  struct SpanAgg {
    std::uint64_t self = 0;
    std::uint64_t total = 0;
  };
  std::map<std::string, std::uint64_t> folded;
  std::map<std::string, SpanAgg> spans;
  std::unordered_map<const void*, std::string> symbols;
  symbols.reserve(1024);
  std::string line;
  for (std::size_t i = 0; i < stored; ++i) {
    const Sample& sample = g_ring[i];
    line.clear();
    line += sample.thread_index < thread_names.size()
                ? thread_names[sample.thread_index]
                : "(thread)";
    // Span frames right under the thread root: the flamegraph groups by
    // span before fanning out into code frames.
    for (std::uint32_t s = 0; s < sample.span_count; ++s) {
      line += ";span:";
      line += sample.spans[s];
    }
    for (std::uint32_t f = sample.frame_count; f-- > 0;) {
      const void* pc = sample.frames[f];
      auto [it, inserted] = symbols.try_emplace(pc);
      if (inserted) it->second = symbolize(pc, /*return_address=*/f != 0);
      line += ';';
      line += it->second;
    }
    ++folded[line];

    if (sample.span_count == 0) {
      ++spans["(no span)"].self;
      ++spans["(no span)"].total;
    } else {
      ++spans[sample.spans[sample.span_count - 1]].self;
      for (std::uint32_t s = 0; s < sample.span_count; ++s) {
        bool seen = false;  // count recursive spans once per sample
        for (std::uint32_t t = 0; t < s; ++t)
          if (std::strcmp(sample.spans[t], sample.spans[s]) == 0) {
            seen = true;
            break;
          }
        if (!seen) ++spans[sample.spans[s]].total;
      }
    }
  }

  report.stacks.reserve(folded.size());
  for (auto& [stack, count] : folded) report.stacks.push_back({stack, count});
  std::sort(report.stacks.begin(), report.stacks.end(),
            [](const FoldedStack& a, const FoldedStack& b) {
              return a.count != b.count ? a.count > b.count
                                        : a.stack < b.stack;
            });
  report.spans.reserve(spans.size());
  for (auto& [name, agg] : spans) {
    SpanCpu cpu;
    cpu.name = name;
    cpu.self_samples = agg.self;
    cpu.total_samples = agg.total;
    cpu.self_seconds = static_cast<double>(agg.self) / report.hz;
    cpu.total_seconds = static_cast<double>(agg.total) / report.hz;
    report.spans.push_back(std::move(cpu));
  }
  std::sort(report.spans.begin(), report.spans.end(),
            [](const SpanCpu& a, const SpanCpu& b) {
              return a.total_samples != b.total_samples
                         ? a.total_samples > b.total_samples
                         : a.name < b.name;
            });

  samples_counter().add(report.samples);
  dropped_counter().add(report.dropped);
  truncated_counter().add(report.truncated_stacks);

  g_ring = nullptr;
  g_capacity = 0;
  g_ring_owner.reset();
  g_running = false;
  logger().info("obs.profile_stopped",
                {Field("samples", report.samples),
                 Field("dropped", report.dropped),
                 Field("unique_stacks",
                       static_cast<std::uint64_t>(report.stacks.size()))});
  return report;
}

std::string ProfileReport::folded() const {
  std::string out;
  for (const FoldedStack& entry : stacks) {
    out += entry.stack;
    out += ' ';
    out += std::to_string(entry.count);
    out += '\n';
  }
  return out;
}

std::string ProfileReport::span_table_text() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "profile: span CPU attribution (%d Hz, %llu samples, "
                "%.2fs wall, %llu dropped)\n",
                hz, static_cast<unsigned long long>(samples),
                duration_seconds,
                static_cast<unsigned long long>(dropped));
  out += line;
  std::snprintf(line, sizeof(line), "%-36s %10s %10s %9s %9s %6s\n", "span",
                "self", "total", "self_s", "total_s", "self%");
  out += line;
  for (const SpanCpu& cpu : spans) {
    const double share =
        samples == 0 ? 0.0
                     : 100.0 * static_cast<double>(cpu.self_samples) /
                           static_cast<double>(samples);
    std::snprintf(line, sizeof(line), "%-36s %10llu %10llu %9.3f %9.3f %6.1f\n",
                  cpu.name.c_str(),
                  static_cast<unsigned long long>(cpu.self_samples),
                  static_cast<unsigned long long>(cpu.total_samples),
                  cpu.self_seconds, cpu.total_seconds, share);
    out += line;
  }
  return out;
}

std::string ProfileReport::to_json() const {
  std::string out = "{\"hz\":" + std::to_string(hz);
  out += ",\"duration_s\":" + json_number(duration_seconds);
  out += ",\"samples\":" + std::to_string(samples);
  out += ",\"dropped\":" + std::to_string(dropped);
  out += ",\"truncated_stacks\":" + std::to_string(truncated_stacks);
  out += ",\"stacks\":[";
  bool first = true;
  for (const FoldedStack& entry : stacks) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"stack\":";
    append_json_string(out, entry.stack);
    out += ",\"count\":" + std::to_string(entry.count) + "}";
  }
  out += "],\"spans\":[";
  first = true;
  for (const SpanCpu& cpu : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, cpu.name);
    out += ",\"self_samples\":" + std::to_string(cpu.self_samples);
    out += ",\"total_samples\":" + std::to_string(cpu.total_samples);
    out += ",\"self_s\":" + json_number(cpu.self_seconds);
    out += ",\"total_s\":" + json_number(cpu.total_seconds) + "}";
  }
  out += "]}";
  return out;
}

void ProfileReport::write_folded(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    throw failmine::ObsError("cannot open profile export file: " + path);
  out << folded();
  out.flush();
  if (!out)
    throw failmine::ObsError("write failed on profile export: " + path);
}

std::pair<std::string, int> parse_profile_spec(std::string_view spec,
                                               int default_hz) {
  std::string path(spec);
  int hz = default_hz;
  if (const std::size_t colon = path.rfind(':');
      colon != std::string::npos && colon + 1 < path.size() &&
      path.find('/', colon) == std::string::npos) {
    const std::string rate = path.substr(colon + 1);
    if (!rate.empty() &&
        std::all_of(rate.begin(), rate.end(),
                    [](char c) { return c >= '0' && c <= '9'; })) {
      hz = std::atoi(rate.c_str());
      if (hz <= 0)
        throw failmine::ParseError("profile spec rate must be positive: " +
                                   std::string(spec));
      path.resize(colon);
    } else {
      throw failmine::ParseError("malformed profile spec (PATH[:HZ]): " +
                                 std::string(spec));
    }
  }
  if (path.empty())
    throw failmine::ParseError("profile spec needs a path: " +
                               std::string(spec));
  return {std::move(path), hz};
}

ProfileSession::ProfileSession(const std::string& spec, int default_hz) {
  auto [path, hz] = parse_profile_spec(spec, default_hz);
  path_ = std::move(path);
  ProfileConfig config;
  config.hz = hz;
  if (!Profiler::instance().start(config))
    throw failmine::ObsError(
        "profiler already running; cannot start session for " + path_);
  active_ = true;
}

ProfileSession::~ProfileSession() {
  try {
    finish();
  } catch (const failmine::ObsError& e) {
    std::fprintf(stderr, "%s\n", e.what());
  }
}

ProfileReport ProfileSession::finish() {
  if (!active_) return {};
  active_ = false;
  ProfileReport report = Profiler::instance().stop();
  report.write_folded(path_);
  return report;
}

}  // namespace failmine::obs
