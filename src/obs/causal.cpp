#include "obs/causal.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace failmine::obs {

namespace {

/// SplitMix64 finalizer (same construction as stream::mix64; obs cannot
/// depend on stream, and the few lines are cheaper than a new layer).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Queue-delay bounds: stage latencies span sub-microsecond handoffs to
/// multi-second backpressure waits, so the buckets cover 1us..1s in a
/// 1-2.5-5 ladder.
std::vector<double> causal_latency_bounds() {
  return {1,    2,    5,     10,    25,    50,     100,    250,    500,
          1000, 2500, 5000,  10000, 25000, 50000,  100000, 250000, 500000,
          1000000};
}

}  // namespace

std::string causal_trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

bool parse_trace_id(std::string_view text, std::uint64_t& id) {
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X'))
    text.remove_prefix(2);
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t out = 0;
  for (const char c : text) {
    out <<= 4;
    if (c >= '0' && c <= '9') out |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
  }
  id = out;
  return true;
}

std::string CausalTimeline::to_json() const {
  std::string out = "{\"trace_id\":";
  append_json_string(out, causal_trace_id_hex(trace_id));
  out += ",\"key\":";
  out += std::to_string(key);
  out += ",\"stages\":[";
  for (std::size_t i = 0; i < stamps.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"stage\":";
    append_json_string(out, stamps[i].stage);
    out += ",\"at_us\":";
    out += std::to_string(stamps[i].at_us);
    out += '}';
  }
  out += "]}\n";
  return out;
}

void CausalTracer::configure(std::vector<std::string> stage_names,
                             std::uint32_t sample_period,
                             std::size_t capacity) {
  if (stage_names.empty() || stage_names.size() > kCausalMaxStages)
    throw failmine::DomainError("causal tracer needs 1.." +
                                std::to_string(kCausalMaxStages) + " stages");
  if (capacity == 0)
    throw failmine::DomainError("causal tracer capacity must be positive");

  const std::lock_guard<std::mutex> lock(mutex_);
  // Quiesce the hot path while the slot ring is replaced.
  sample_period_.store(0, std::memory_order_release);
  stages_ = std::move(stage_names);
  stage_hists_.fill(nullptr);
  for (std::size_t s = 1; s < stages_.size(); ++s)
    stage_hists_[s] = &metrics().histogram("causal.stage." + stages_[s] + "_us",
                                           causal_latency_bounds());
  e2e_hist_ = &metrics().histogram("causal.e2e_us", causal_latency_bounds());
  sampled_counter_ = &metrics().counter("causal.sampled");

  slots_storage_ = std::make_unique<Slot[]>(capacity);
  slots_.store(slots_storage_.get(), std::memory_order_release);
  capacity_.store(capacity, std::memory_order_release);
  stage_count_.store(static_cast<std::uint32_t>(stages_.size()),
                     std::memory_order_release);
  next_slot_.store(0, std::memory_order_relaxed);
  sampled_.store(0, std::memory_order_relaxed);
  sample_period_.store(sample_period, std::memory_order_release);
}

std::uint32_t CausalTracer::maybe_begin(std::uint64_t key) {
  const std::uint32_t period = sample_period_.load(std::memory_order_relaxed);
  if (period == 0) return 0;
  if (period > 1 && mix(key) % period != 0) return 0;

  Slot* slots = slots_.load(std::memory_order_acquire);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  if (slots == nullptr || cap == 0) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      next_slot_.fetch_add(1, std::memory_order_relaxed) % cap);
  Slot& slot = slots[idx];

  // Invalidate first so find() never pairs the new stamps with the
  // recycled slot's old id.
  slot.trace_id.store(0, std::memory_order_release);
  const std::uint32_t stages = stage_count_.load(std::memory_order_relaxed);
  for (std::uint32_t s = 1; s < stages; ++s)
    slot.at_us[s].store(0, std::memory_order_relaxed);
  slot.key.store(key, std::memory_order_relaxed);
  slot.at_us[0].store(steady_now_us(), std::memory_order_relaxed);
  // A second mix round decorrelates the id from the residue structure
  // the sampling decision imposed on mix(key).
  std::uint64_t id = mix(mix(key) ^ 0xda3e39cb94b95bdbULL);
  if (id == 0) id = 1;
  slot.trace_id.store(id, std::memory_order_release);

  sampled_.fetch_add(1, std::memory_order_relaxed);
  if (sampled_counter_ != nullptr) sampled_counter_->add();
  return static_cast<std::uint32_t>(idx) + 1;
}

void CausalTracer::stamp(std::uint32_t ref, std::size_t stage) {
  if (ref == 0) return;
  Slot* slots = slots_.load(std::memory_order_acquire);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  const std::uint32_t stages = stage_count_.load(std::memory_order_relaxed);
  if (slots == nullptr || cap == 0 || stage == 0 || stage >= stages) return;
  Slot& slot = slots[(ref - 1) % cap];

  const std::uint64_t now = steady_now_us();
  const std::uint64_t prev =
      slot.at_us[stage - 1].load(std::memory_order_relaxed);
  slot.at_us[stage].store(now, std::memory_order_release);
  const std::uint64_t id = slot.trace_id.load(std::memory_order_relaxed);
  if (prev != 0 && now >= prev && stage_hists_[stage] != nullptr)
    stage_hists_[stage]->observe(static_cast<double>(now - prev), id);
  if (stage + 1 == stages && e2e_hist_ != nullptr) {
    const std::uint64_t begin = slot.at_us[0].load(std::memory_order_relaxed);
    if (begin != 0 && now >= begin)
      e2e_hist_->observe(static_cast<double>(now - begin), id);
  }
}

std::uint64_t CausalTracer::trace_id_of(std::uint32_t ref) const {
  if (ref == 0) return 0;
  Slot* slots = slots_.load(std::memory_order_acquire);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  if (slots == nullptr || cap == 0) return 0;
  return slots[(ref - 1) % cap].trace_id.load(std::memory_order_acquire);
}

std::optional<CausalTimeline> CausalTracer::find(
    std::uint64_t trace_id) const {
  if (trace_id == 0) return std::nullopt;
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot* slots = slots_.load(std::memory_order_acquire);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < cap; ++i) {
    Slot& slot = slots[i];
    if (slot.trace_id.load(std::memory_order_acquire) != trace_id) continue;
    CausalTimeline timeline;
    timeline.trace_id = trace_id;
    timeline.key = slot.key.load(std::memory_order_relaxed);
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      const std::uint64_t at = slot.at_us[s].load(std::memory_order_acquire);
      if (at != 0) timeline.stamps.push_back({stages_[s], at});
    }
    // The slot may have been recycled mid-read; only a still-matching
    // id vouches for the stamps belonging to this trace.
    if (slot.trace_id.load(std::memory_order_acquire) != trace_id) continue;
    return timeline;
  }
  return std::nullopt;
}

std::vector<std::string> CausalTracer::stage_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

std::vector<CausalStageStat> CausalTracer::stage_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CausalStageStat> out;
  double total_sum = 0.0;
  for (std::size_t s = 1; s < stages_.size(); ++s) {
    const Histogram* h = stage_hists_[s];
    if (h == nullptr) continue;
    HistogramSample sample;
    sample.upper_bounds = h->upper_bounds();
    sample.buckets = h->bucket_counts();
    CausalStageStat stat;
    stat.stage = stages_[s];
    stat.count = h->count();
    stat.mean_us = h->mean();
    stat.p50_us = histogram_quantile(sample, 0.50);
    stat.p99_us = histogram_quantile(sample, 0.99);
    stat.share = h->sum();  // raw for now; normalized below
    total_sum += h->sum();
    out.push_back(std::move(stat));
  }
  for (CausalStageStat& stat : out)
    stat.share = total_sum > 0.0 ? stat.share / total_sum : 0.0;
  return out;
}

std::string CausalTracer::critical_path_text() const {
  const std::vector<CausalStageStat> stats = stage_stats();
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "causal trace report: %llu sampled records (period %u)\n",
                static_cast<unsigned long long>(sampled()),
                sample_period());
  out += line;
  if (stats.empty()) return out + "  (no stages configured)\n";
  std::snprintf(line, sizeof(line), "  %-10s %10s %12s %12s %12s %7s\n",
                "stage", "count", "p50_us", "p99_us", "mean_us", "share");
  out += line;
  const CausalStageStat* dominant = nullptr;
  for (const CausalStageStat& stat : stats) {
    std::snprintf(line, sizeof(line),
                  "  %-10s %10llu %12.1f %12.1f %12.1f %6.1f%%\n",
                  stat.stage.c_str(),
                  static_cast<unsigned long long>(stat.count), stat.p50_us,
                  stat.p99_us, stat.mean_us, 100.0 * stat.share);
    out += line;
    if (dominant == nullptr || stat.share > dominant->share) dominant = &stat;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (e2e_hist_ != nullptr && e2e_hist_->count() > 0) {
      HistogramSample sample;
      sample.upper_bounds = e2e_hist_->upper_bounds();
      sample.buckets = e2e_hist_->bucket_counts();
      std::snprintf(line, sizeof(line),
                    "  end-to-end: count=%llu p50=%.1fus p99=%.1fus\n",
                    static_cast<unsigned long long>(e2e_hist_->count()),
                    histogram_quantile(sample, 0.50),
                    histogram_quantile(sample, 0.99));
      out += line;
    }
  }
  if (dominant != nullptr && dominant->count > 0) {
    std::snprintf(line, sizeof(line),
                  "  critical path: %s dominates (%.1f%% of sampled stage "
                  "time)\n",
                  dominant->stage.c_str(), 100.0 * dominant->share);
    out += line;
  }
  return out;
}

void CausalTracer::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot* slots = slots_.load(std::memory_order_acquire);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < cap; ++i) {
    slots[i].trace_id.store(0, std::memory_order_relaxed);
    slots[i].key.store(0, std::memory_order_relaxed);
    for (auto& at : slots[i].at_us) at.store(0, std::memory_order_relaxed);
  }
  next_slot_.store(0, std::memory_order_relaxed);
  sampled_.store(0, std::memory_order_relaxed);
}

CausalTracer& causal_tracer() {
  // Leaked intentionally (see obs::logger()).
  static CausalTracer* instance = new CausalTracer();
  return *instance;
}

}  // namespace failmine::obs
