// failmine/obs/json.hpp
//
// Minimal JSON emission helpers shared by the obs exporters (JSONL log
// sink, metrics registry, chrome-trace writer). Emission only — the
// toolkit never parses JSON, so there is deliberately no reader here.

#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace failmine::obs {

/// Appends `s` to `out` as a JSON string literal (including the quotes).
inline void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Formats a double as a JSON number. Non-finite values have no JSON
/// representation; they degrade to null so exports stay parseable.
/// Prometheus exposition must NOT use this — it defines the spellings
/// NaN/+Inf/-Inf; see obs/prometheus.hpp's prometheus_number().
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace failmine::obs
