// failmine/obs/flight_recorder.hpp
//
// Crash-safe flight recorder: an always-on bounded ring of the last N
// telemetry lines (log records and trace-span completions), pre-
// serialized to JSONL at record time so a fatal-signal handler can dump
// them with nothing but async-signal-safe calls (open/write/close).
//
// Each slot is a fixed-size byte buffer guarded by a seqlock-style
// generation counter: writers bump the generation to odd, copy the
// line, bump back to even. Readers (including the signal handler) skip
// odd generations and re-check after copying, so a torn slot is dropped
// rather than emitted as garbage. Recording costs one fetch_add plus a
// bounded memcpy — no locks, no allocation — which is what lets the
// recorder stay attached under full streaming load.
//
// Wiring:
//   attach_flight_recorder()        logger sink + tracer span hook
//   install_crash_dump(path)        SIGSEGV/SIGABRT/SIGBUS/SIGFPE handler
//                                   dumping the ring to `path` as JSONL
//   flight_recorder().dump()        on-demand (the /flightrecorder
//                                   endpoint and tests)

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/log.hpp"

namespace failmine::obs {

class FlightRecorder {
 public:
  /// Longest line one slot retains; longer lines are truncated (the
  /// bound is what makes the signal-handler dump allocation-free).
  static constexpr std::size_t kSlotBytes = 768;

  explicit FlightRecorder(std::size_t capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one pre-serialized JSONL line (no trailing newline).
  /// Lock-free; safe from any thread.
  void record_line(std::string_view line);

  /// Lines ever recorded (monotone; exceeds capacity once wrapped).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }

  /// All stable slots, oldest first, one line each, newline-terminated.
  std::string dump() const;

  /// Async-signal-safe dump: writes the stable slots to `fd` with
  /// write(2), oldest first. Usable from a fatal-signal handler.
  void dump_to_fd(int fd) const;

  void clear();

 private:
  struct Slot {
    std::atomic<std::uint32_t> generation{0};  ///< odd while being written
    std::atomic<std::uint32_t> length{0};
    char data[kSlotBytes];
  };

  /// Copies slot `index` into `out` (>= kSlotBytes) if it is stable;
  /// returns the line length or 0 to skip.
  std::size_t read_slot(std::size_t index, char* out) const;

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// The process-wide recorder dumped by the crash handler and the
/// telemetry server.
FlightRecorder& flight_recorder();

/// LogSink adapter feeding flight_recorder() (lines are tagged
/// "kind":"log"; span-hook lines are tagged "kind":"span").
class FlightRecorderSink : public LogSink {
 public:
  void write(const LogRecord& record) override;
};

/// Attaches flight_recorder() to the global logger (as an extra sink)
/// and tracer (as the span hook). Idempotent.
void attach_flight_recorder();

/// Installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE) on
/// an alternate stack that dump flight_recorder() to `path` as JSONL —
/// with a trailing {"kind":"crash","signal":N} line — then restore the
/// default disposition and re-raise. Also calls
/// attach_flight_recorder(). Throws DomainError on an over-long path.
void install_crash_dump(const std::string& path);

/// Path configured by install_crash_dump(), or "" if never installed.
std::string crash_dump_path();

}  // namespace failmine::obs
