// failmine/obs/prometheus.hpp
//
// Prometheus text exposition (format version 0.0.4) for the metrics
// registry — what `GET /metrics` on the telemetry server returns.
//
// Counters and gauges render as single samples; histograms render as
// the conventional triple: cumulative `_bucket{le="..."}` series ending
// in `le="+Inf"`, plus `_sum` and `_count`. Instrument names use dots
// (`stream.records_in`); exposition names replace every character
// outside [a-zA-Z0-9_:] with `_` (`stream_records_in`).
//
// The label-unaware registry can still feed labelled exposition: an
// instrument registered with an inline label block in its name
// (`obs.serve.requests{path="/metrics"}`, or any labeled_name()
// spelling) renders as a real labelled series — the family part is
// sanitized, the `{...}` block is re-rendered with full value escaping
// (`\\`, `\"`, `\n`), and `# HELP`/`# TYPE` are emitted once per family
// (label variants sort adjacently in the name-sorted sample). Labeled
// histograms render their instrument labels on every bucket/_sum/_count
// series, with `le` appended after them on the bucket lines.

#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace failmine::obs {

/// Formats a double the way the exposition format requires. Unlike
/// json_number() (which degrades non-finite values to null, JSON having
/// no spelling for them), Prometheus defines the spellings `NaN`,
/// `+Inf` and `-Inf` and scrapers rely on them.
inline std::string prometheus_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// `stream.records_in` -> `stream_records_in`: every character outside
/// the exposition name alphabet [a-zA-Z0-9_:] becomes an underscore; a
/// leading digit gains a `_` prefix.
std::string prometheus_name(std::string_view name);

/// Renders one consistent sample as a full exposition document
/// (`# HELP` + `# TYPE` + samples per instrument, name-sorted).
std::string render_prometheus(const MetricsSample& sample);

/// Samples `registry` and renders it.
std::string render_prometheus(const MetricsRegistry& registry);

/// OpenMetrics 1.0 rendering of the same sample — what
/// `GET /metrics?format=openmetrics` returns. Identical family/series
/// layout to render_prometheus() plus what 0.0.4 cannot express:
/// histogram bucket lines carry their latest exemplar
/// (`... # {trace_id="<16 hex>"} <value> <unix ts>`, resolvable via the
/// server's /trace endpoint) and the document ends with the mandatory
/// `# EOF` terminator. Deliberately non-strict in one respect: series
/// keep their registry names rather than gaining the `_total` suffix
/// OpenMetrics prescribes for counters, so the two expositions stay
/// name-compatible for the dashboards in examples/.
std::string render_openmetrics(const MetricsSample& sample);

/// Samples `registry` and renders it as OpenMetrics.
std::string render_openmetrics(const MetricsRegistry& registry);

/// The content type an OpenMetrics response must declare.
inline constexpr std::string_view kOpenMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

}  // namespace failmine::obs
