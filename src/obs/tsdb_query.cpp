// failmine/obs/tsdb_query.cpp

#include "tsdb_query.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "json.hpp"
#include "util/error.hpp"

namespace failmine::obs {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

[[noreturn]] void fail(std::string_view expr, const std::string& why) {
  throw failmine::ParseError("tsdb query \"" + std::string(expr) +
                             "\": " + why);
}

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// If `s` has the shape `ident(inner)`, returns true and fills the two
/// views. Selectors cannot contain parentheses, so this is unambiguous.
bool split_call(std::string_view s, std::string_view& ident,
                std::string_view& inner) {
  const std::size_t open = s.find('(');
  if (open == std::string_view::npos || open == 0 || s.back() != ')') {
    return false;
  }
  for (std::size_t i = 0; i < open; ++i) {
    if (!is_ident_char(s[i])) return false;
  }
  ident = s.substr(0, open);
  inner = trim(s.substr(open + 1, s.size() - open - 2));
  return true;
}

bool parse_agg(std::string_view ident, TsdbAgg& agg) {
  if (ident == "sum") agg = TsdbAgg::kSum;
  else if (ident == "avg") agg = TsdbAgg::kAvg;
  else if (ident == "min") agg = TsdbAgg::kMin;
  else if (ident == "max") agg = TsdbAgg::kMax;
  else return false;
  return true;
}

bool parse_fn(std::string_view ident, TsdbFn& fn, double& quantile) {
  if (ident == "value") {
    fn = TsdbFn::kValue;
  } else if (ident == "rate") {
    fn = TsdbFn::kRate;
  } else if (ident == "increase") {
    fn = TsdbFn::kIncrease;
  } else if (ident.size() >= 2 && ident.size() <= 3 && ident[0] == 'p') {
    int pct = 0;
    for (std::size_t i = 1; i < ident.size(); ++i) {
      if (ident[i] < '0' || ident[i] > '9') return false;
      pct = pct * 10 + (ident[i] - '0');
    }
    if (pct < 1 || pct > 99) return false;
    fn = TsdbFn::kQuantile;
    quantile = pct / 100.0;
  } else {
    return false;
  }
  return true;
}

const char* agg_name(TsdbAgg agg) {
  switch (agg) {
    case TsdbAgg::kSum: return "sum";
    case TsdbAgg::kAvg: return "avg";
    case TsdbAgg::kMin: return "min";
    case TsdbAgg::kMax: return "max";
    case TsdbAgg::kNone: break;
  }
  return "";
}

std::string window_to_string(std::int64_t window_ms) {
  char buf[32];
  if (window_ms % 60'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldm",
                  static_cast<long long>(window_ms / 60'000));
  } else if (window_ms % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds",
                  static_cast<long long>(window_ms / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(window_ms));
  }
  return buf;
}

std::string fn_call_name(const TsdbQuery& q, const std::string& target,
                         std::int64_t window_ms) {
  std::string fn;
  switch (q.fn) {
    case TsdbFn::kValue: return target;  // plain lookups keep the series name
    case TsdbFn::kRate: fn = "rate"; break;
    case TsdbFn::kIncrease: fn = "increase"; break;
    case TsdbFn::kQuantile: {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "p%d",
                    static_cast<int>(std::llround(q.quantile * 100)));
      fn = buf;
      break;
    }
  }
  return fn + "(" + target + "[" + window_to_string(window_ms) + "])";
}

constexpr std::string_view kBucketInfix = ".bucket{le=\"";

}  // namespace

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

bool tsdb_glob_match(std::string_view pattern, std::string_view text) {
  // Iterative '*' glob with backtracking to the last star.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

TsdbQuery parse_tsdb_query(std::string_view expr) {
  TsdbQuery q;
  std::string_view s = trim(expr);
  if (s.empty()) fail(expr, "empty expression");

  // Grouped aggregation head: agg 'by' '(' label,... ')' '(' inner ')'.
  // split_call() cannot see this shape (the ident is followed by the by
  // clause, not '('), so it is peeled off here first.
  {
    std::size_t i = 0;
    while (i < s.size() && is_ident_char(s[i])) ++i;
    std::string_view rest = trim(s.substr(i));
    TsdbAgg agg = TsdbAgg::kNone;
    if (i > 0 && rest.size() > 2 && rest.substr(0, 2) == "by" &&
        !is_ident_char(rest[2]) && parse_agg(s.substr(0, i), agg)) {
      rest = trim(rest.substr(2));
      if (rest.empty() || rest.front() != '(')
        fail(expr, "expected '(' after 'by'");
      const std::size_t close = rest.find(')');
      if (close == std::string_view::npos)
        fail(expr, "unbalanced '(' in by clause");
      std::string_view list = rest.substr(1, close - 1);
      while (true) {
        const std::size_t comma = list.find(',');
        const std::string_view item =
            trim(comma == std::string_view::npos ? list : list.substr(0, comma));
        if (item.empty())
          fail(expr, "empty label in by (...) clause");
        for (char c : item) {
          if (!is_ident_char(c))
            fail(expr, std::string("bad character '") + c + "' in by clause");
        }
        q.by.emplace_back(item);
        if (comma == std::string_view::npos) break;
        list = list.substr(comma + 1);
      }
      rest = trim(rest.substr(close + 1));
      if (rest.size() < 2 || rest.front() != '(' || rest.back() != ')')
        fail(expr, "expected '(expr)' after the by clause");
      q.agg = agg;
      s = trim(rest.substr(1, rest.size() - 2));
    }
  }

  std::string_view ident, inner;
  if (split_call(s, ident, inner)) {
    if (q.agg == TsdbAgg::kNone && parse_agg(ident, q.agg)) {
      s = inner;
      if (!split_call(s, ident, inner)) {
        ident = {};
      }
    } else if (q.agg != TsdbAgg::kNone && parse_agg(ident, q.agg)) {
      fail(expr, "nested aggregation inside a by (...) clause");
    }
    if (!ident.empty()) {
      if (!parse_fn(ident, q.fn, q.quantile)) {
        fail(expr, "unknown function \"" + std::string(ident) +
                       "\" (want value|rate|increase|pNN or sum|avg|min|max)");
      }
      s = inner;
      if (s.find('(') != std::string_view::npos) {
        fail(expr, "selectors cannot contain '('");
      }
    }
  } else if (s.find('(') != std::string_view::npos ||
             s.find(')') != std::string_view::npos) {
    fail(expr, "unbalanced parentheses");
  }

  // Optional trailing [window].
  if (!s.empty() && s.back() == ']') {
    const std::size_t open = s.rfind('[');
    if (open == std::string_view::npos) fail(expr, "unbalanced ']'");
    const std::string spec(trim(s.substr(open + 1, s.size() - open - 2)));
    char* endp = nullptr;
    const double n = std::strtod(spec.c_str(), &endp);
    const std::string_view unit = trim(std::string_view(endp));
    double scale = 0.0;
    if (unit == "ms") scale = 1.0;
    else if (unit == "s") scale = 1000.0;
    else if (unit == "m") scale = 60'000.0;
    else if (unit == "h") scale = 3'600'000.0;
    if (endp == spec.c_str() || scale == 0.0 || !(n > 0)) {
      fail(expr, "bad window \"" + spec + "\" (want e.g. [30s], [5m])");
    }
    q.window_ms = static_cast<std::int64_t>(std::llround(n * scale));
    s = trim(s.substr(0, open));
  }

  if (s.empty()) fail(expr, "missing metric selector");
  for (char c : s) {
    if (!(is_ident_char(c) || c == '.' || c == '*' || c == '{' || c == '}' ||
          c == '=' || c == '"' || c == '+' || c == '-' || c == '/' ||
          c == ':' || c == '~' || c == ',' || c == '\\')) {
      fail(expr, std::string("bad character '") + c + "' in selector");
    }
  }
  q.selector = std::string(s);
  parse_tsdb_selector(q.selector);  // validate the label block up front
  return q;
}

std::string tsdb_query_to_string(const TsdbQuery& q) {
  std::string inner;
  if (q.fn == TsdbFn::kValue) {
    inner = q.selector;
    if (q.window_ms > 0) inner += "[" + window_to_string(q.window_ms) + "]";
  } else {
    inner = fn_call_name(q, q.selector, q.window_ms);
  }
  if (q.agg == TsdbAgg::kNone) return inner;
  std::string out = agg_name(q.agg);
  if (!q.by.empty()) {
    out += " by (";
    for (std::size_t i = 0; i < q.by.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += q.by[i];
    }
    out += ") ";
  }
  return out + "(" + inner + ")";
}

// ---------------------------------------------------------------------------
// Selectors
// ---------------------------------------------------------------------------

bool TsdbSelector::matches_key(std::string_view key) const {
  for (const TsdbLabelMatcher& m : matchers)
    if (m.key == key) return true;
  return false;
}

TsdbSelector parse_tsdb_selector(std::string_view selector) {
  const auto bad = [&](const std::string& why) -> void {
    throw failmine::ParseError("tsdb selector \"" + std::string(selector) +
                               "\": " + why);
  };
  TsdbSelector out;
  const std::size_t brace = selector.find('{');
  if (brace == std::string_view::npos) {
    out.family = std::string(selector);
    return out;
  }
  out.has_block = true;
  // An empty family part (`{twin="t3"}`) selects any family.
  if (brace > 0) out.family = std::string(selector.substr(0, brace));
  if (selector.back() != '}') bad("label block must end with '}'");
  std::string_view body = selector.substr(brace + 1, selector.size() - brace - 2);
  while (!body.empty()) {
    TsdbLabelMatcher m;
    std::size_t i = 0;
    while (i < body.size() && is_ident_char(body[i])) ++i;
    if (i == 0) bad("expected a label name");
    m.key = std::string(body.substr(0, i));
    body.remove_prefix(i);
    if (body.size() >= 2 && body[0] == '=' && body[1] == '~') {
      m.is_glob = true;
      body.remove_prefix(2);
    } else if (!body.empty() && body[0] == '=') {
      body.remove_prefix(1);
    } else {
      bad("expected '=' or '=~' after label \"" + m.key + "\"");
    }
    if (body.empty() || body.front() != '"')
      bad("expected a quoted value for label \"" + m.key + "\"");
    body.remove_prefix(1);
    std::string escaped;
    while (!body.empty() && body.front() != '"') {
      if (body.front() == '\\') {
        if (body.size() < 2) bad("dangling '\\' in label value");
        escaped.push_back(body[0]);
        escaped.push_back(body[1]);
        body.remove_prefix(2);
      } else {
        escaped.push_back(body.front());
        body.remove_prefix(1);
      }
    }
    if (body.empty()) bad("unterminated value for label \"" + m.key + "\"");
    body.remove_prefix(1);  // closing quote
    m.value = unescape_label_value(escaped);
    out.matchers.push_back(std::move(m));
    if (!body.empty()) {
      if (body.front() != ',') bad("expected ',' between matchers");
      body.remove_prefix(1);
      if (body.empty()) bad("trailing ',' in label block");
    }
  }
  return out;
}

bool tsdb_selector_matches(const TsdbSelector& sel,
                           const ParsedMetricName& series) {
  if (!tsdb_glob_match(sel.family, series.family)) return false;
  for (const TsdbLabelMatcher& m : sel.matchers) {
    const std::string* v = series.find(m.key);
    if (m.is_glob) {
      if (v == nullptr || !tsdb_glob_match(m.value, *v)) return false;
    } else if ((v == nullptr ? std::string_view() : std::string_view(*v)) !=
               m.value) {
      return false;
    }
  }
  return true;
}

bool tsdb_selector_matches(const TsdbSelector& sel, std::string_view name) {
  ParsedMetricName series;
  if (!parse_metric_name(name, series)) {
    series.family = std::string(name);
    series.labels.clear();
  }
  return tsdb_selector_matches(sel, series);
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

/// One evaluated series before aggregation: values indexed by step.
struct Evaluated {
  std::string name;
  std::vector<MetricLabel> labels;  // parsed input labels (for `by`)
  std::vector<double> values;       // NaN = absent
};

std::vector<std::int64_t> step_grid(std::int64_t start, std::int64_t end,
                                    std::int64_t step) {
  std::vector<std::int64_t> grid;
  for (std::int64_t t = start; t <= end; t += step) grid.push_back(t);
  return grid;
}

void eval_plain(const TsdbStore& store, const TsdbQuery& q,
                const std::vector<std::int64_t>& grid, std::int64_t window,
                std::vector<Evaluated>& out) {
  const std::int64_t staleness =
      q.window_ms > 0 ? q.window_ms
                      : std::max<std::int64_t>(
                            5 * store.scrape_interval_ms(), window);
  const TsdbSelector sel = parse_tsdb_selector(q.selector);
  for (const auto& name : store.series_names()) {
    ParsedMetricName series;
    if (!parse_metric_name(name, series)) {
      series.family = name;
      series.labels.clear();
    }
    if (!sel.has_block) {
      // Legacy blockless selector: full-name glob, bucket sub-series
      // excluded (they only match explicit {le=...} selectors).
      if (name.find(std::string(kBucketInfix)) != std::string::npos) continue;
      if (!tsdb_glob_match(q.selector, name)) continue;
    } else {
      // Bucket sub-series stay hidden unless the selector asks for `le`.
      if (series.find("le") != nullptr && !sel.matches_key("le")) continue;
      if (!tsdb_selector_matches(sel, series)) continue;
    }
    const std::int64_t lookback = std::max(window, staleness);
    const auto pts =
        store.read_series(name, grid.front() - lookback - 1, grid.back());
    if (pts.empty()) continue;
    Evaluated ev;
    ev.name = fn_call_name(q, name, window);
    ev.labels = series.labels;
    ev.values.assign(grid.size(), std::numeric_limits<double>::quiet_NaN());
    bool any = false;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const std::int64_t t = grid[i];
      if (q.fn == TsdbFn::kValue) {
        if (const auto v = tsdb_value_at(pts, t, staleness)) {
          ev.values[i] = *v;
          any = true;
        }
      } else {
        const auto inc = tsdb_increase(pts, t, window);
        if (!inc.has_value()) continue;
        ev.values[i] = q.fn == TsdbFn::kRate
                           ? inc->increase / (window / 1000.0)
                           : inc->increase;
        any = true;
      }
    }
    if (any) out.push_back(std::move(ev));
  }
}

void eval_quantile(const TsdbStore& store, const TsdbQuery& q,
                   const std::vector<std::int64_t>& grid, std::int64_t window,
                   std::vector<Evaluated>& out) {
  const TsdbSelector sel = parse_tsdb_selector(q.selector);
  const auto names = store.series_names();
  // A quantile base is (family minus ".bucket", labels minus le); the
  // canonical labeled spelling keys the grouping so each twin's buckets
  // assemble their own histogram.
  struct Bucket {
    double bound;
    bool inf;
    std::string name;
  };
  struct Base {
    std::vector<MetricLabel> labels;
    std::vector<Bucket> buckets;
  };
  std::map<std::string, Base> bases;
  constexpr std::string_view kBucketSuffix = ".bucket";
  for (const auto& name : names) {
    ParsedMetricName parsed;
    if (!parse_metric_name(name, parsed)) continue;
    if (parsed.family.size() <= kBucketSuffix.size() ||
        parsed.family.compare(parsed.family.size() - kBucketSuffix.size(),
                              kBucketSuffix.size(), kBucketSuffix) != 0)
      continue;
    const std::string* le = parsed.find("le");
    if (le == nullptr) continue;
    ParsedMetricName base;
    base.family =
        parsed.family.substr(0, parsed.family.size() - kBucketSuffix.size());
    for (const MetricLabel& label : parsed.labels)
      if (label.key != "le") base.labels.push_back(label);
    if (sel.has_block) {
      if (!tsdb_selector_matches(sel, base)) continue;
    } else if (!tsdb_glob_match(q.selector,
                                labeled_name(base.family, base.labels))) {
      continue;
    }
    Bucket b;
    b.inf = *le == "+Inf";
    b.bound = b.inf ? std::numeric_limits<double>::infinity()
                    : std::strtod(le->c_str(), nullptr);
    b.name = name;
    Base& slot = bases[labeled_name(base.family, base.labels)];
    slot.labels = base.labels;
    slot.buckets.push_back(std::move(b));
  }
  for (auto& [base_name, base] : bases) {
    struct LoadedBucket {
      double bound;
      bool inf;
      std::vector<TsdbPoint> pts;
    };
    std::vector<LoadedBucket> buckets;
    buckets.reserve(base.buckets.size());
    for (const Bucket& b : base.buckets) {
      buckets.push_back(
          {b.bound, b.inf,
           store.read_series(b.name, grid.front() - window - 1, grid.back())});
    }
    std::sort(buckets.begin(), buckets.end(),
              [](const LoadedBucket& a, const LoadedBucket& b) {
                return a.bound < b.bound;
              });
    Evaluated ev;
    ev.name = fn_call_name(q, base_name, window);
    ev.labels = base.labels;
    ev.values.assign(grid.size(), std::numeric_limits<double>::quiet_NaN());
    bool any = false;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      HistogramSample sample;
      std::uint64_t total = 0;
      std::uint64_t overflow = 0;
      for (const auto& b : buckets) {
        const auto inc = tsdb_increase(b.pts, grid[i], window);
        const std::uint64_t d =
            (inc.has_value() && inc->increase > 0)
                ? static_cast<std::uint64_t>(std::llround(inc->increase))
                : 0;
        if (b.inf) {
          overflow = d;
        } else {
          sample.upper_bounds.push_back(b.bound);
          sample.buckets.push_back(d);
        }
        total += d;
      }
      sample.buckets.push_back(overflow);
      if (total == 0) continue;  // no observations in this window: abstain
      sample.count = total;
      ev.values[i] = histogram_quantile(sample, q.quantile);
      any = true;
    }
    if (any) out.push_back(std::move(ev));
  }
}

}  // namespace

TsdbQueryResult eval_tsdb_query(const TsdbStore& store, const TsdbQuery& q,
                                std::int64_t start_ms, std::int64_t end_ms,
                                std::int64_t step_ms) {
  TsdbQueryResult result;
  if (step_ms <= 0 || end_ms < start_ms) return result;
  const std::int64_t window = q.window_ms > 0 ? q.window_ms : step_ms;
  const auto grid = step_grid(start_ms, end_ms, step_ms);
  std::vector<Evaluated> evaluated;
  if (q.fn == TsdbFn::kQuantile) {
    eval_quantile(store, q, grid, window, evaluated);
  } else {
    eval_plain(store, q, grid, window, evaluated);
  }

  if (q.agg != TsdbAgg::kNone) {
    // Group inputs by the tuple of `by (...)` label values (a missing
    // label reads as ""); no by clause means one group holding
    // everything, which reproduces the ungrouped aggregation exactly.
    std::map<std::string, std::vector<const Evaluated*>> groups;
    for (const auto& ev : evaluated) {
      std::vector<MetricLabel> key;
      for (const std::string& label : q.by) {
        MetricLabel kv;
        kv.key = label;
        for (const MetricLabel& have : ev.labels)
          if (have.key == label) kv.value = have.value;
        key.push_back(std::move(kv));
      }
      groups[label_block(std::move(key))].push_back(&ev);
    }
    std::vector<Evaluated> grouped;
    const std::string base_name = tsdb_query_to_string(q);
    for (const auto& [block, members] : groups) {
      Evaluated agg;
      agg.name = base_name + block;
      agg.values.assign(grid.size(), std::numeric_limits<double>::quiet_NaN());
      for (std::size_t i = 0; i < grid.size(); ++i) {
        double acc = 0.0;
        std::size_t n = 0;
        for (const Evaluated* ev : members) {
          const double v = ev->values[i];
          if (std::isnan(v)) continue;
          if (n == 0) {
            acc = v;
          } else {
            switch (q.agg) {
              case TsdbAgg::kSum:
              case TsdbAgg::kAvg: acc += v; break;
              case TsdbAgg::kMin: acc = std::min(acc, v); break;
              case TsdbAgg::kMax: acc = std::max(acc, v); break;
              case TsdbAgg::kNone: break;
            }
          }
          ++n;
        }
        if (n == 0) continue;
        if (q.agg == TsdbAgg::kAvg) acc /= static_cast<double>(n);
        agg.values[i] = acc;
      }
      grouped.push_back(std::move(agg));
    }
    evaluated = std::move(grouped);
  }

  for (auto& ev : evaluated) {
    TsdbQuerySeries s;
    s.name = std::move(ev.name);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!std::isnan(ev.values[i])) s.points.push_back({grid[i], ev.values[i]});
    }
    if (!s.points.empty()) result.series.push_back(std::move(s));
  }
  return result;
}

// ---------------------------------------------------------------------------
// JSON + sparklines
// ---------------------------------------------------------------------------

std::string tsdb_query_json(const std::string& expr, std::int64_t start_ms,
                            std::int64_t end_ms, std::int64_t step_ms,
                            const TsdbQueryResult& result) {
  std::string out = "{\"expr\":";
  append_json_string(out, expr);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\"start\":%.3f,\"end\":%.3f,\"step\":%.3f,\"series\":[",
                start_ms / 1000.0, end_ms / 1000.0, step_ms / 1000.0);
  out += buf;
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    const auto& s = result.series[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"points\":[";
    for (std::size_t j = 0; j < s.points.size(); ++j) {
      if (j > 0) out.push_back(',');
      std::snprintf(buf, sizeof(buf), "[%.3f,", s.points[j].t_ms / 1000.0);
      out += buf;
      out += json_number(s.points[j].value);
      out.push_back(']');
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string tsdb_series_json(const TsdbStore& store) {
  std::string out = "{\"stats\":";
  out += store.stats_json();
  out += ",\"series\":[";
  const auto infos = store.series_info();
  char buf[128];
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const auto& s = infos[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    append_json_string(out, s.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"type\":\"%s\",\"samples\":%llu,\"resident_bytes\":%llu"
                  ",\"first_unix_ms\":%lld,\"last_unix_ms\":%lld}",
                  s.counter ? "counter" : "gauge",
                  static_cast<unsigned long long>(s.samples),
                  static_cast<unsigned long long>(s.resident_bytes),
                  static_cast<long long>(s.first_ms),
                  static_cast<long long>(s.last_ms));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string render_sparkline(const std::vector<TsdbPoint>& points,
                             std::size_t width) {
  static const char* kLevels[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  if (width == 0) return "";
  if (points.empty()) return std::string(width, ' ');
  const std::int64_t t0 = points.front().t_ms;
  const std::int64_t t1 = points.back().t_ms;
  const std::int64_t span = std::max<std::int64_t>(t1 - t0, 1);
  // Column means, then scale to the finite min/max.
  std::vector<double> sums(width, 0.0);
  std::vector<std::size_t> counts(width, 0);
  for (const auto& p : points) {
    if (!std::isfinite(p.value)) continue;
    std::size_t col = static_cast<std::size_t>(
        (static_cast<double>(p.t_ms - t0) / static_cast<double>(span)) *
        static_cast<double>(width));
    if (col >= width) col = width - 1;
    sums[col] += p.value;
    ++counts[col];
  }
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < width; ++c) {
    if (counts[c] == 0) continue;
    const double v = sums[c] / static_cast<double>(counts[c]);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  std::string out;
  for (std::size_t c = 0; c < width; ++c) {
    if (counts[c] == 0) {
      out.push_back(' ');
      continue;
    }
    const double v = sums[c] / static_cast<double>(counts[c]);
    int level = 0;
    if (mx > mn) {
      level = static_cast<int>(((v - mn) / (mx - mn)) * 7.0 + 0.5);
    } else {
      level = 3;
    }
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

std::string tsdb_trend_report(const TsdbStore& store,
                              const std::vector<std::string>& exprs,
                              std::size_t width) {
  const std::int64_t t0 = store.first_ms();
  const std::int64_t t1 = store.latest_ms();
  if (t1 <= t0 || width == 0) return "";
  const std::int64_t step = std::max<std::int64_t>(
      {(t1 - t0) / static_cast<std::int64_t>(width),
       store.scrape_interval_ms(), 1});
  // Evaluate first: a by-grouped or multi-series expression contributes
  // one sparkline row per output series (labeled by the series name),
  // and the label column must be sized across all of them.
  struct Row {
    std::string label;
    std::vector<TsdbPoint> points;
  };
  std::vector<Row> rows;
  for (const auto& expr : exprs) {
    TsdbQueryResult r;
    try {
      const TsdbQuery q = parse_tsdb_query(expr);
      r = eval_tsdb_query(store, q, t0 + step, t1, step);
    } catch (const failmine::Error&) {
      continue;
    }
    for (auto& series : r.series) {
      if (series.points.empty()) continue;
      rows.push_back({r.series.size() == 1 ? expr : series.name,
                      std::move(series.points)});
    }
  }
  std::size_t label_width = 0;
  for (const auto& row : rows)
    label_width = std::max(label_width, row.label.size());
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "tsdb trend — %.1fs span, %llu samples\n",
                (t1 - t0) / 1000.0,
                static_cast<unsigned long long>(store.stats().samples));
  out += buf;
  for (const auto& row : rows) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    double last = 0.0;
    for (const auto& p : row.points) {
      if (!std::isfinite(p.value)) continue;
      mn = std::min(mn, p.value);
      mx = std::max(mx, p.value);
      last = p.value;
    }
    if (!std::isfinite(mn)) continue;
    out += "  ";
    out += row.label;
    out.append(label_width - row.label.size() + 2, ' ');
    out += render_sparkline(row.points, width);
    std::snprintf(buf, sizeof(buf), "  min=%.6g max=%.6g last=%.6g\n", mn, mx,
                  last);
    out += buf;
  }
  return out;
}

}  // namespace failmine::obs
