// failmine/obs/serve.hpp
//
// Embedded live-telemetry endpoint: a small blocking HTTP/1.1 server
// (POSIX sockets, no third-party deps) exposing the process's own
// observability state while an analysis pipeline runs:
//
//   GET /metrics          Prometheus text exposition of obs::metrics();
//                         ?format=openmetrics switches to OpenMetrics
//                         with histogram exemplars (trace ids). Every
//                         scrape refreshes process_start_time_seconds /
//                         failmine_uptime_seconds.
//   GET /snapshot         caller-provided JSON (the live StreamSnapshot)
//   GET /healthz          200/503 from the caller's health callback (the
//                         stream stall watchdog); JSON body carries
//                         "status" and the alert engine's
//                         "alerts_firing" count
//   GET /trace?id=<hex>   stage timeline of one sampled causal trace
//                         (obs/causal.hpp) — the ids exemplars carry;
//                         404 once the trace's slot has been recycled
//   GET /alerts           alert-rule engine status (obs/alerts.hpp):
//                         every rule with state/value/threshold, JSON
//   GET /predict          live failure-prediction state (top at-risk
//                         jobs, precision/recall/lead-time summary,
//                         checkpoint-policy scoreboard) when a predictor
//                         is attached (failmine_cli stream --predict)
//   GET /fleet            cross-twin rollup when a fleet is attached
//                         (failmine_cli stream --fleet=N): per-twin
//                         health/snapshot summaries plus the merged
//                         top-users-by-failures heavy-hitter sketch
//   GET /query            range/instant expressions over the embedded
//                         time-series store (obs/tsdb_query.hpp) —
//                         ?expr=rate(stream.records_in[1m]) (URL-encoded)
//                         &start=&end= (unix seconds, default: trailing
//                         5 min ending at the newest scrape) &step=
//                         (seconds). 404 until obs::tsdb() has data,
//                         400 with the parser's message on a bad expr
//   GET /series           stored-series inventory: per-series type,
//                         sample count, resident bytes and time range,
//                         plus store-level stats; 404 until the store
//                         has data
//   GET /flightrecorder   JSONL dump of obs::flight_recorder()
//   GET /profile          timed CPU capture via obs::profile —
//                         ?seconds=N (0.05–60, default 1), ?hz=H
//                         (1–1000, default 99), ?fmt=folded|json.
//                         Answers 409 Conflict while another capture
//                         (from any entry point) is running.
//
// One accept thread feeds a bounded connection queue drained by a small
// handler pool; a full queue answers 503 at accept rather than letting
// scrapes pile up behind a slow handler. stop() (or destruction) closes
// the listen socket, drains the queue and joins every thread, so a
// pipeline can serve until its last snapshot and shut down cleanly.
//
// The server reports on itself through the registry it serves:
// `obs.serve.requests` (total), per-endpoint
// `obs.serve.requests{path="..."}` counters (unknown paths aggregate
// under path="other"), `obs.serve.bad_requests` /
// `obs.serve.rejected_connections` counters and the
// `obs.serve.latency_us` request-latency histogram — all pre-registered
// at start() so exports list the full family before the first scrape.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace failmine::obs {

struct ServeConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port() after start()).
  std::uint16_t port = 0;

  /// Handler pool size (concurrent in-flight responses).
  std::size_t handler_threads = 2;

  /// Accepted connections waiting for a handler beyond this are closed
  /// immediately with 503.
  std::size_t max_pending = 64;

  /// Per-connection receive timeout, seconds.
  int receive_timeout_seconds = 5;
};

class TelemetryServer {
 public:
  using SnapshotHandler = std::function<std::string()>;
  using HealthHandler = std::function<bool()>;

  explicit TelemetryServer(ServeConfig config = {});

  /// Stops and joins (idempotent with stop()).
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Body of GET /snapshot. Unset -> 404. Called on a handler thread,
  /// so it may take pipeline locks but must not block indefinitely.
  void set_snapshot_handler(SnapshotHandler handler);

  /// Body of GET /predict — the prediction subsystem's live JSON (wire
  /// StreamPipeline::operator_snapshot_json here). Unset -> 404.
  void set_predict_handler(SnapshotHandler handler);

  /// Body of GET /fleet — the cross-twin rollup JSON (wire
  /// StreamFleet::fleet_json here). Unset -> 404.
  void set_fleet_handler(SnapshotHandler handler);

  /// GET /healthz verdict. Unset -> always healthy.
  void set_health_handler(HealthHandler handler);

  /// Binds, listens and spawns the accept + handler threads. Throws
  /// ObsError if the socket cannot be bound.
  void start();

  /// Closes the listen socket, drains pending connections, joins all
  /// threads. Idempotent; called by the destructor.
  void stop();

  /// The bound port (resolves port 0 after start()).
  std::uint16_t port() const { return bound_port_; }

  bool running() const { return listen_fd_ >= 0; }

 private:
  void accept_loop();
  void handler_loop();
  void handle_connection(int fd);
  void handle_profile(int fd, const std::string& query);

  ServeConfig config_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  std::mutex mutex_;  // guards handlers_, pending_, stopping_
  SnapshotHandler snapshot_handler_;
  SnapshotHandler predict_handler_;
  SnapshotHandler fleet_handler_;
  HealthHandler health_handler_;
  std::deque<int> pending_;
  bool stopping_ = false;
  std::condition_variable pending_cv_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

/// Minimal blocking HTTP/1.1 GET against 127.0.0.1:`port` — the
/// raw-socket client the serve tests and the S02 overhead bench use (a
/// curl equivalent without the dependency). Throws ObsError on connect
/// or protocol failure.
struct HttpResponse {
  int status = 0;
  std::string headers;  ///< raw header block
  std::string body;
};
HttpResponse http_get(std::uint16_t port, const std::string& path,
                      int timeout_seconds = 10);

}  // namespace failmine::obs
