// failmine/obs/session.hpp
//
// Per-binary observability bootstrap.
//
// An ObsSession owns the "where do exports go" decision for one process:
// it understands the common `--log-level LEVEL`, `--metrics-out PATH` and
// `--trace-out PATH` flags (and the FAILMINE_METRICS_OUT /
// FAILMINE_TRACE_OUT environment fallbacks), and writes the configured
// exports exactly once — either on an explicit flush() (which throws
// ObsError on failure) or best-effort at destruction.

#pragma once

#include <string>
#include <string_view>

namespace failmine::obs {

class ObsSession {
 public:
  /// Picks up FAILMINE_METRICS_OUT / FAILMINE_TRACE_OUT if set.
  ObsSession();

  /// Same, then strips any `--log-level L`, `--metrics-out P` and
  /// `--trace-out P` pairs from argv so the remaining args can go to
  /// another parser (e.g. google-benchmark).
  ObsSession(int* argc, char** argv);

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Writes any pending exports, swallowing ObsError (telemetry must not
  /// turn a successful run into a crash at exit).
  ~ObsSession();

  void set_log_level(std::string_view name);  ///< throws ParseError
  void set_metrics_out(std::string path);
  void set_trace_out(std::string path);

  const std::string& metrics_out() const { return metrics_out_; }
  const std::string& trace_out() const { return trace_out_; }

  /// Writes the configured exports now. Throws ObsError on I/O failure.
  void flush();

 private:
  std::string metrics_out_;
  std::string trace_out_;
  bool flushed_ = false;
};

}  // namespace failmine::obs
