// failmine/obs/session.hpp
//
// Per-binary observability bootstrap.
//
// An ObsSession owns the "where do exports go" decision for one process:
// it understands the common `--log-level LEVEL`, `--metrics-out PATH`,
// `--trace-out PATH`, `--flight-recorder PATH` and
// `--profile-out PATH[:HZ]` flags (and the FAILMINE_METRICS_OUT /
// FAILMINE_TRACE_OUT / FAILMINE_FLIGHT_RECORDER / FAILMINE_PROFILE
// environment fallbacks), and writes the configured exports exactly once
// — either on an explicit flush() (which throws ObsError on failure) or
// best-effort at destruction. `--flight-recorder PATH` arms the crash
// handler: it attaches the flight recorder to the logger and tracer and
// installs fatal-signal handlers that dump the recorder to PATH as JSONL
// (see obs/flight_recorder.hpp). `--profile-out PATH[:HZ]` starts a
// whole-run CPU capture (obs/profile.hpp) immediately; flush() stops it,
// writes the folded stacks to PATH and prints the per-span CPU table to
// stderr — before the metrics export, so obs.profile.* totals land in
// `--metrics-out` too.

#pragma once

#include <memory>
#include <string>
#include <string_view>

namespace failmine::obs {

class ProfileSession;

class ObsSession {
 public:
  /// Picks up FAILMINE_METRICS_OUT / FAILMINE_TRACE_OUT if set.
  ObsSession();

  /// Same, then strips any `--log-level L`, `--metrics-out P` and
  /// `--trace-out P` pairs from argv so the remaining args can go to
  /// another parser (e.g. google-benchmark).
  ObsSession(int* argc, char** argv);

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Writes any pending exports, swallowing ObsError (telemetry must not
  /// turn a successful run into a crash at exit).
  ~ObsSession();

  void set_log_level(std::string_view name);  ///< throws ParseError
  void set_metrics_out(std::string path);
  void set_trace_out(std::string path);
  /// Arms the crash-dump flight recorder immediately (not at flush).
  void set_flight_recorder(const std::string& path);
  /// Starts a whole-run CPU capture now; `spec` is "PATH[:HZ]". Throws
  /// ParseError on a malformed spec, ObsError if a capture is already
  /// running.
  void set_profile_out(const std::string& spec);

  const std::string& metrics_out() const { return metrics_out_; }
  const std::string& trace_out() const { return trace_out_; }
  const std::string& flight_recorder_out() const {
    return flight_recorder_out_;
  }
  bool profiling() const { return profile_ != nullptr; }

  /// Writes the configured exports now. Throws ObsError on I/O failure.
  void flush();

 private:
  std::string metrics_out_;
  std::string trace_out_;
  std::string flight_recorder_out_;
  std::unique_ptr<ProfileSession> profile_;
  bool flushed_ = false;
};

}  // namespace failmine::obs
