#include "obs/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/alerts.hpp"
#include "obs/causal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/prometheus.hpp"
#include "obs/tsdb.hpp"
#include "obs/tsdb_query.hpp"
#include "util/error.hpp"

namespace failmine::obs {

namespace {

Counter& requests_counter() {
  static Counter& c = metrics().counter("obs.serve.requests");
  return c;
}
Counter& bad_requests_counter() {
  static Counter& c = metrics().counter("obs.serve.bad_requests");
  return c;
}
Counter& rejected_counter() {
  static Counter& c = metrics().counter("obs.serve.rejected_connections");
  return c;
}
Histogram& latency_us_histogram() {
  static Histogram& h = metrics().histogram(
      "obs.serve.latency_us", {50, 100, 250, 500, 1000, 2500, 5000, 10000,
                               25000, 50000, 100000});
  return h;
}

/// The routes the server answers; everything else aggregates under
/// "other" so per-path counters stay bounded-cardinality no matter what
/// clients probe for.
constexpr const char* kRoutes[] = {"/metrics", "/snapshot", "/healthz",
                                   "/flightrecorder", "/profile",
                                   "/trace", "/alerts", "/predict",
                                   "/query", "/series", "/fleet"};

/// Per-endpoint request counter, encoded with the label inside the
/// metric name (`obs.serve.requests{path="/metrics"}`). The registry is
/// label-unaware; the Prometheus renderer splits the name at '{' and
/// emits the brace block as a real label set (see prometheus.cpp).
Counter& path_counter(std::string_view route) {
  std::string name = "obs.serve.requests{path=\"";
  name += route;
  name += "\"}";
  return metrics().counter(name);
}

void count_request(const std::string& route) {
  requests_counter().add();
  const bool known = std::any_of(
      std::begin(kRoutes), std::end(kRoutes),
      [&](const char* r) { return route == r; });
  path_counter(known ? route : "other").add();
}

/// Parses "key=value" pairs out of a query string; returns `fallback`
/// when the key is absent or its value is empty.
std::string query_param(std::string_view query, std::string_view key,
                        std::string_view fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(pos, end - pos);
    if (const std::size_t eq = pair.find('=');
        eq != std::string_view::npos && pair.substr(0, eq) == key &&
        eq + 1 < pair.size())
      return std::string(pair.substr(eq + 1));
    pos = end + 1;
  }
  return std::string(fallback);
}

/// %xx / '+' decoding for query-string values (the /query expression
/// carries braces, quotes, `=~` and `[window]` suffixes, which curl
/// clients URL-encode). Returns false on a malformed %-escape
/// (truncated or non-hex) so the caller answers 400 instead of feeding
/// a silently mangled expression to the parser.
bool url_decode(std::string_view s, std::string& out) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%') {
      if (i + 2 >= s.size() || hex(s[i + 1]) < 0 || hex(s[i + 2]) < 0)
        return false;
      out.push_back(static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return true;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t rc = ::send(fd, data.data() + sent, data.size() - sent,
                              MSG_NOSIGNAL);
    if (rc <= 0) return;  // peer went away; nothing to salvage
    sent += static_cast<std::size_t>(rc);
  }
}

void send_response(int fd, int status, const char* reason,
                   const char* content_type, std::string_view body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, body);
}

/// Reads until the end of the request headers (CRLFCRLF) or a small cap;
/// returns the target path of a well-formed GET, "" otherwise.
std::string read_request_path(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (request.rfind("GET ", 0) != 0) return "";
  const std::size_t path_end = request.find(' ', 4);
  if (path_end == std::string::npos) return "";
  if (request.compare(path_end, 9, " HTTP/1.1", 0, 9) != 0 &&
      request.compare(path_end, 9, " HTTP/1.0", 0, 9) != 0) {
    // tolerate missing version only for the bare "GET /path\r\n" form
    if (request.find("\r\n", path_end) != path_end) return "";
  }
  return request.substr(4, path_end - 4);
}

/// GET /query?expr=...&start=...&end=...&step=... against the global
/// time-series store. Times are unix seconds; defaults are the trailing
/// 5 minutes ending at the newest scrape, ~240 steps — and an *instant*
/// evaluation at the newest scrape when neither start nor step is given.
void handle_query(int fd, const std::string& query) {
  TsdbStore& store = tsdb();
  if (!store.has_data()) {
    send_response(fd, 404, "Not Found", "text/plain",
                  "tsdb not enabled (run with --tsdb)\n");
    return;
  }
  std::string expr;
  if (!url_decode(query_param(query, "expr", ""), expr)) {
    bad_requests_counter().add();
    send_response(fd, 400, "Bad Request", "text/plain",
                  "malformed %-escape in expr\n");
    return;
  }
  if (expr.empty()) {
    bad_requests_counter().add();
    send_response(fd, 400, "Bad Request", "text/plain",
                  "need ?expr=<expression>\n");
    return;
  }
  const std::string start_text = query_param(query, "start", "");
  const std::string step_text = query_param(query, "step", "");
  const double latest_s = static_cast<double>(store.latest_ms()) / 1000.0;
  const double end_s =
      std::atof(query_param(query, "end", std::to_string(latest_s)).c_str());
  double start_s =
      start_text.empty() ? end_s - 300.0 : std::atof(start_text.c_str());
  if (start_text.empty() && step_text.empty()) start_s = end_s;  // instant
  const double step_s =
      step_text.empty() ? std::max((end_s - start_s) / 240.0, 0.001)
                        : std::atof(step_text.c_str());
  if (!(step_s > 0.0) || end_s < start_s) {
    bad_requests_counter().add();
    send_response(fd, 400, "Bad Request", "text/plain",
                  "need start <= end and step > 0\n");
    return;
  }
  if ((end_s - start_s) / step_s > 100'000.0) {
    bad_requests_counter().add();
    send_response(fd, 400, "Bad Request", "text/plain",
                  "too many steps (raise step or narrow the range)\n");
    return;
  }
  const auto to_ms = [](double seconds) {
    return static_cast<std::int64_t>(std::llround(seconds * 1000.0));
  };
  try {
    const TsdbQuery parsed = parse_tsdb_query(expr);
    const TsdbQueryResult result =
        eval_tsdb_query(store, parsed, to_ms(start_s), to_ms(end_s),
                        std::max<std::int64_t>(to_ms(step_s), 1));
    send_response(fd, 200, "OK", "application/json",
                  tsdb_query_json(expr, to_ms(start_s), to_ms(end_s),
                                  std::max<std::int64_t>(to_ms(step_s), 1),
                                  result));
  } catch (const failmine::Error& e) {
    bad_requests_counter().add();
    send_response(fd, 400, "Bad Request", "text/plain",
                  std::string(e.what()) + "\n");
  }
}

}  // namespace

TelemetryServer::TelemetryServer(ServeConfig config)
    : config_(std::move(config)) {}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::set_snapshot_handler(SnapshotHandler handler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  snapshot_handler_ = std::move(handler);
}

void TelemetryServer::set_predict_handler(SnapshotHandler handler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  predict_handler_ = std::move(handler);
}

void TelemetryServer::set_fleet_handler(SnapshotHandler handler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fleet_handler_ = std::move(handler);
}

void TelemetryServer::set_health_handler(HealthHandler handler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  health_handler_ = std::move(handler);
}

void TelemetryServer::start() {
  if (listen_fd_ >= 0) return;
  if (config_.handler_threads == 0)
    throw failmine::DomainError("ServeConfig.handler_threads must be positive");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw failmine::ObsError("telemetry server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw failmine::ObsError("telemetry server: cannot bind 127.0.0.1:" +
                             std::to_string(config_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;

  // Pre-create every self-metric (including the per-path counters and
  // the profiler's) so a first scrape — or an unscraped --metrics-out
  // export — already lists the full family at zero.
  (void)requests_counter();
  (void)bad_requests_counter();
  (void)rejected_counter();
  (void)latency_us_histogram();
  for (const char* route : kRoutes) (void)path_counter(route);
  (void)path_counter("other");
  (void)metrics().counter("obs.profile.samples");
  (void)metrics().counter("obs.profile.dropped");
  (void)metrics().counter("obs.profile.truncated_stacks");
  (void)metrics().gauge("obs.alerts.firing");
  (void)metrics().counter("obs.alerts.evaluations");
  (void)metrics().counter("obs.alerts.transitions");
  update_process_metrics();  // process_start_time_seconds + uptime

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }
  for (std::size_t i = 0; i < config_.handler_threads; ++i)
    workers_.emplace_back([this] {
      (void)::pthread_setname_np(::pthread_self(), "fm.serve");
      profile_attach_this_thread();
      handler_loop();
    });
  accept_thread_ = std::thread([this] {
    (void)::pthread_setname_np(::pthread_self(), "fm.accept");
    profile_attach_this_thread();
    accept_loop();
  });

  logger().info("obs.serve_started",
                {Field("port", static_cast<std::uint64_t>(bound_port_)),
                 Field("handlers",
                       static_cast<std::uint64_t>(config_.handler_threads))});
}

void TelemetryServer::stop() {
  if (listen_fd_ < 0) return;
  // Unblocks accept(); the loop sees the failure and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  pending_cv_.notify_all();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : pending_) ::close(fd);
    pending_.clear();
  }
  listen_fd_ = -1;
  logger().info("obs.serve_stopped",
                {Field("port", static_cast<std::uint64_t>(bound_port_)),
                 Field("requests", requests_counter().value())});
}

void TelemetryServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed by stop()
    timeval timeout{};
    timeout.tv_sec = config_.receive_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    bool rejected = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.size() >= config_.max_pending)
        rejected = true;
      else
        pending_.push_back(fd);
    }
    if (rejected) {
      rejected_counter().add();
      send_response(fd, 503, "Service Unavailable", "text/plain",
                    "overloaded\n");
      ::close(fd);
    } else {
      pending_cv_.notify_one();
    }
  }
}

void TelemetryServer::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pending_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void TelemetryServer::handle_connection(int fd) {
  const auto start = std::chrono::steady_clock::now();
  const std::string target = read_request_path(fd);
  if (target.empty()) {
    bad_requests_counter().add();
    send_response(fd, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::size_t question = target.find('?');
  const std::string path = target.substr(0, question);
  const std::string query =
      question == std::string::npos ? "" : target.substr(question + 1);
  count_request(path);

  if (path == "/metrics") {
    update_process_metrics();  // fresh uptime on every scrape
    if (query_param(query, "format", "prometheus") == "openmetrics")
      send_response(fd, 200, "OK", std::string(kOpenMetricsContentType).c_str(),
                    render_openmetrics(metrics()));
    else
      send_response(fd, 200, "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(metrics()));
  } else if (path == "/snapshot") {
    SnapshotHandler handler;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      handler = snapshot_handler_;
    }
    if (handler)
      send_response(fd, 200, "OK", "application/json", handler());
    else
      send_response(fd, 404, "Not Found", "text/plain",
                    "no snapshot source\n");
  } else if (path == "/predict") {
    SnapshotHandler handler;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      handler = predict_handler_;
    }
    if (handler)
      send_response(fd, 200, "OK", "application/json", handler());
    else
      send_response(fd, 404, "Not Found", "text/plain",
                    "no predictor attached\n");
  } else if (path == "/fleet") {
    SnapshotHandler handler;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      handler = fleet_handler_;
    }
    if (handler)
      send_response(fd, 200, "OK", "application/json", handler());
    else
      send_response(fd, 404, "Not Found", "text/plain",
                    "no fleet attached (run with --fleet)\n");
  } else if (path == "/healthz") {
    HealthHandler handler;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      handler = health_handler_;
    }
    const bool healthy = handler ? handler() : true;
    // JSON body: status plus the alert engine's firing count, so one
    // probe answers both "is the pipeline stuck" (the status code,
    // driven by the health callback alone) and "is any SLO burning".
    const std::string body =
        std::string("{\"status\":\"") + (healthy ? "ok" : "unhealthy") +
        "\",\"alerts_firing\":" + std::to_string(alerts().firing()) + "}\n";
    if (healthy)
      send_response(fd, 200, "OK", "application/json", body);
    else
      send_response(fd, 503, "Service Unavailable", "application/json", body);
  } else if (path == "/flightrecorder") {
    send_response(fd, 200, "OK", "application/x-ndjson",
                  flight_recorder().dump());
  } else if (path == "/profile") {
    handle_profile(fd, query);
  } else if (path == "/trace") {
    const std::string id_text = query_param(query, "id", "");
    std::uint64_t id = 0;
    if (id_text.empty() || !parse_trace_id(id_text, id)) {
      bad_requests_counter().add();
      send_response(fd, 400, "Bad Request", "text/plain",
                    "need ?id=<16 hex digits>\n");
    } else if (const auto timeline = causal_tracer().find(id)) {
      send_response(fd, 200, "OK", "application/json", timeline->to_json());
    } else {
      send_response(fd, 404, "Not Found", "text/plain",
                    "trace not found (not sampled, or slot recycled)\n");
    }
  } else if (path == "/alerts") {
    send_response(fd, 200, "OK", "application/json", alerts().to_json());
  } else if (path == "/query") {
    handle_query(fd, query);
  } else if (path == "/series") {
    if (tsdb().has_data())
      send_response(fd, 200, "OK", "application/json",
                    tsdb_series_json(tsdb()));
    else
      send_response(fd, 404, "Not Found", "text/plain",
                    "tsdb not enabled (run with --tsdb)\n");
  } else {
    send_response(fd, 404, "Not Found", "text/plain", "not found\n");
  }
  latency_us_histogram().observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
}

void TelemetryServer::handle_profile(int fd, const std::string& query) {
  const double seconds = std::clamp(
      std::atof(query_param(query, "seconds", "1").c_str()), 0.05, 60.0);
  const int hz =
      std::clamp(std::atoi(query_param(query, "hz", "99").c_str()), 1, 1000);
  const std::string fmt = query_param(query, "fmt", "folded");
  if (fmt != "folded" && fmt != "json") {
    bad_requests_counter().add();
    send_response(fd, 400, "Bad Request", "text/plain",
                  "fmt must be folded or json\n");
    return;
  }

  ProfileConfig config;
  config.hz = hz;
  if (!Profiler::instance().start(config)) {
    send_response(fd, 409, "Conflict", "text/plain", "profiler busy\n");
    return;
  }

  // Timed capture, sliced so a server stop() during a long capture only
  // waits one slice, not the full window.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            deadline - now, std::chrono::milliseconds(25)));
  }
  const ProfileReport report = Profiler::instance().stop();

  if (fmt == "json")
    send_response(fd, 200, "OK", "application/json", report.to_json());
  else
    send_response(fd, 200, "OK", "text/plain; charset=utf-8",
                  report.folded());
}

HttpResponse http_get(std::uint16_t port, const std::string& path,
                      int timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw failmine::ObsError("http_get: socket() failed");
  timeval timeout{};
  timeout.tv_sec = timeout_seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw failmine::ObsError("http_get: cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  send_all(fd, request);

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/1.", 0) != 0 || header_end == std::string::npos)
    throw failmine::ObsError("http_get: malformed response from port " +
                             std::to_string(port));
  HttpResponse response;
  response.status = std::atoi(raw.c_str() + 9);
  response.headers = raw.substr(0, header_end);
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace failmine::obs
