// failmine/obs/tsdb_query.hpp
//
// Expression layer over obs::tsdb — a deliberately small PromQL-shaped
// grammar evaluated against the store's compressed history:
//
//   expr     := [agg [by] '('] [fn '('] selector [window] [')'] [')']
//   agg      := sum | avg | min | max          (pointwise across series)
//   by       := 'by' '(' label (',' label)* ')'  (group the aggregation)
//   fn       := value | rate | increase | pNN  (NN in 1..99)
//   selector := family glob, optionally '{' matcher (',' matcher)* '}'
//   matcher  := key '=' '"' value '"'          (exact; absent label = "")
//             | key '=~' '"' glob '"'          (label present + '*'-glob)
//   window   := '[' N (ms|s|m|h) ']'           (defaults to the step)
//
// Examples:
//   rate(stream.records_processed[1m])
//   sum(rate(stream.shard*.processed[30s]))
//   sum by (twin) (rate(stream.records_in{twin=~"*"}[1m]))
//   value(stream.window.failure_rate{twin="t3"})
//   p99(stream.router.batch_us[30s])           — from windowed bucket
//                                                deltas, never lifetime
//   value(stream.queue_depth)
//
// A selector without a `{...}` block keeps the legacy behavior: a
// '*'-glob over the full series name (which therefore never matches a
// labeled series unless the glob spells the block out). A selector
// with a block matches the family glob against the series family and
// every matcher against its parsed labels, so `{twin=~"*"}` means "any
// series carrying a twin label" and extra labels on the series do not
// block a match. Aggregating `by (label)` emits one output series per
// distinct value tuple, named `<expr>{label="value",...}`.
//
// `rate` is `increase` divided by the window in seconds, so tiled
// windows reconcile exactly with the cumulative counter. Quantile
// functions match the store's `<base>.bucket{le="..."}` series,
// compute per-bucket increases over the window and run the shared
// histogram_quantile on the deltas; a labeled histogram's buckets
// (`family.bucket{le="...",twin="..."}`) stay grouped per label set.
//
// The same engine backs `GET /query` / `GET /series` on obs::serve and
// the CLI's end-of-run sparkline trend report.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "labels.hpp"
#include "tsdb.hpp"

namespace failmine::obs {

enum class TsdbAgg { kNone, kSum, kAvg, kMin, kMax };
enum class TsdbFn { kValue, kRate, kIncrease, kQuantile };

struct TsdbQuery {
  TsdbAgg agg = TsdbAgg::kNone;
  TsdbFn fn = TsdbFn::kValue;
  double quantile = 0.0;  ///< for kQuantile, in (0, 1)
  std::string selector;
  std::vector<std::string> by;  ///< labels of the `by (...)` clause
  std::int64_t window_ms = 0;   ///< 0 = default to the query step
};

/// Parses an expression; throws failmine::ParseError with a pointed
/// message on malformed input.
TsdbQuery parse_tsdb_query(std::string_view expr);

/// Canonical rendering of a parsed query (used as the output series
/// name for aggregations).
std::string tsdb_query_to_string(const TsdbQuery& q);

/// '*'-glob match (no other metacharacters).
bool tsdb_glob_match(std::string_view pattern, std::string_view text);

/// One label matcher inside a selector: `key="value"` (exact; a series
/// without the label matches value "") or `key=~"glob"` (the label must
/// be present and its value '*'-glob-match).
struct TsdbLabelMatcher {
  std::string key;
  std::string value;
  bool is_glob = false;
};

/// A parsed series selector: a '*'-glob over the family name plus zero
/// or more label matchers. Shared by the query engine and the alert
/// engine's per-label-group rule expansion.
struct TsdbSelector {
  std::string family = "*";
  std::vector<TsdbLabelMatcher> matchers;
  bool has_block = false;  ///< the selector spelled a `{...}` block

  /// True when any matcher targets `key`.
  bool matches_key(std::string_view key) const;
};

/// Parses a selector; throws failmine::ParseError on a malformed label
/// block.
TsdbSelector parse_tsdb_selector(std::string_view selector);

/// True when a series (family + parsed labels) satisfies the selector.
/// Extra labels on the series never block a match.
bool tsdb_selector_matches(const TsdbSelector& sel,
                           const ParsedMetricName& series);

/// Convenience overload: parses `name` first (an unparseable name is
/// treated as a bare family).
bool tsdb_selector_matches(const TsdbSelector& sel, std::string_view name);

struct TsdbQuerySeries {
  std::string name;
  std::vector<TsdbPoint> points;
};

struct TsdbQueryResult {
  std::vector<TsdbQuerySeries> series;
};

/// Evaluates `q` on the step grid start, start+step, ..., end
/// (inclusive; instant queries pass start == end). Steps with no data
/// are omitted rather than emitted as gaps.
TsdbQueryResult eval_tsdb_query(const TsdbStore& store, const TsdbQuery& q,
                                std::int64_t start_ms, std::int64_t end_ms,
                                std::int64_t step_ms);

/// {"expr":...,"start":s,"end":e,"step":s,"series":[{"name":...,
///  "points":[[unix_seconds,value],...]},...]} — the /query body.
std::string tsdb_query_json(const std::string& expr, std::int64_t start_ms,
                            std::int64_t end_ms, std::int64_t step_ms,
                            const TsdbQueryResult& result);

/// {"stats":{...},"series":[...]} — the /series body.
std::string tsdb_series_json(const TsdbStore& store);

/// Renders `points` as a fixed-width UTF-8 sparkline (▁▂▃▄▅▆▇█), one
/// column per equal time slice, scaled to the series' finite min/max;
/// empty slices render as spaces.
std::string render_sparkline(const std::vector<TsdbPoint>& points,
                             std::size_t width);

/// Multi-line end-of-run trend report: one sparkline row per output
/// series (so a `sum by (twin)` expression renders one labeled row per
/// twin), evaluated over the store's full retained span. Expressions
/// that fail to parse or match nothing are skipped.
std::string tsdb_trend_report(const TsdbStore& store,
                              const std::vector<std::string>& exprs,
                              std::size_t width = 44);

}  // namespace failmine::obs
