// failmine/obs/tsdb_query.hpp
//
// Expression layer over obs::tsdb — a deliberately small PromQL-shaped
// grammar evaluated against the store's compressed history:
//
//   expr     := [agg '('] [fn '('] selector [window] [')'] [')']
//   agg      := sum | avg | min | max          (pointwise across series)
//   fn       := value | rate | increase | pNN  (NN in 1..99)
//   selector := metric name, '*' globs and inline {labels} allowed
//   window   := '[' N (ms|s|m|h) ']'           (defaults to the step)
//
// Examples:
//   rate(stream.records_processed[1m])
//   sum(rate(stream.shard*.processed[30s]))
//   p99(stream.router.batch_us[30s])           — from windowed bucket
//                                                deltas, never lifetime
//   value(stream.queue_depth)
//
// `rate` is `increase` divided by the window in seconds, so tiled
// windows reconcile exactly with the cumulative counter. Quantile
// functions match the store's `<base>.bucket{le="..."}` series,
// compute per-bucket increases over the window and run the shared
// histogram_quantile on the deltas.
//
// The same engine backs `GET /query` / `GET /series` on obs::serve and
// the CLI's end-of-run sparkline trend report.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb.hpp"

namespace failmine::obs {

enum class TsdbAgg { kNone, kSum, kAvg, kMin, kMax };
enum class TsdbFn { kValue, kRate, kIncrease, kQuantile };

struct TsdbQuery {
  TsdbAgg agg = TsdbAgg::kNone;
  TsdbFn fn = TsdbFn::kValue;
  double quantile = 0.0;  ///< for kQuantile, in (0, 1)
  std::string selector;
  std::int64_t window_ms = 0;  ///< 0 = default to the query step
};

/// Parses an expression; throws failmine::ParseError with a pointed
/// message on malformed input.
TsdbQuery parse_tsdb_query(std::string_view expr);

/// Canonical rendering of a parsed query (used as the output series
/// name for aggregations).
std::string tsdb_query_to_string(const TsdbQuery& q);

/// '*'-glob match (no other metacharacters).
bool tsdb_glob_match(std::string_view pattern, std::string_view text);

struct TsdbQuerySeries {
  std::string name;
  std::vector<TsdbPoint> points;
};

struct TsdbQueryResult {
  std::vector<TsdbQuerySeries> series;
};

/// Evaluates `q` on the step grid start, start+step, ..., end
/// (inclusive; instant queries pass start == end). Steps with no data
/// are omitted rather than emitted as gaps.
TsdbQueryResult eval_tsdb_query(const TsdbStore& store, const TsdbQuery& q,
                                std::int64_t start_ms, std::int64_t end_ms,
                                std::int64_t step_ms);

/// {"expr":...,"start":s,"end":e,"step":s,"series":[{"name":...,
///  "points":[[unix_seconds,value],...]},...]} — the /query body.
std::string tsdb_query_json(const std::string& expr, std::int64_t start_ms,
                            std::int64_t end_ms, std::int64_t step_ms,
                            const TsdbQueryResult& result);

/// {"stats":{...},"series":[...]} — the /series body.
std::string tsdb_series_json(const TsdbStore& store);

/// Renders `points` as a fixed-width UTF-8 sparkline (▁▂▃▄▅▆▇█), one
/// column per equal time slice, scaled to the series' finite min/max;
/// empty slices render as spaces.
std::string render_sparkline(const std::vector<TsdbPoint>& points,
                             std::size_t width);

/// Multi-line end-of-run trend report: one sparkline row per
/// expression, evaluated over the store's full retained span.
/// Expressions that fail to parse or match nothing are skipped.
std::string tsdb_trend_report(const TsdbStore& store,
                              const std::vector<std::string>& exprs,
                              std::size_t width = 44);

}  // namespace failmine::obs
