#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::obs {

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw failmine::DomainError("FlightRecorder capacity must be positive");
  slots_ = std::make_unique<Slot[]>(capacity_);
}

void FlightRecorder::record_line(std::string_view line) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  const std::size_t n = std::min(line.size(), kSlotBytes);
  // Seqlock write: odd generation marks the slot in flight. Two writers
  // can only collide on one slot after a full ring wrap mid-write; the
  // generation discipline still keeps readers from emitting the tear.
  slot.generation.fetch_add(1, std::memory_order_acquire);
  std::memcpy(slot.data, line.data(), n);
  slot.length.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  slot.generation.fetch_add(1, std::memory_order_release);
}

std::size_t FlightRecorder::read_slot(std::size_t index, char* out) const {
  const Slot& slot = slots_[index];
  const std::uint32_t before = slot.generation.load(std::memory_order_acquire);
  if (before == 0 || (before & 1u) != 0) return 0;  // empty or mid-write
  const std::size_t n = slot.length.load(std::memory_order_relaxed);
  if (n == 0 || n > kSlotBytes) return 0;
  std::memcpy(out, slot.data, n);
  // Re-check: if a writer touched the slot while we copied, drop it.
  if (slot.generation.load(std::memory_order_acquire) != before) return 0;
  return n;
}

std::string FlightRecorder::dump() const {
  std::string out;
  char line[kSlotBytes];
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    const std::size_t n = read_slot(i % capacity_, line);
    if (n == 0) continue;
    out.append(line, n);
    out.push_back('\n');
  }
  return out;
}

void FlightRecorder::dump_to_fd(int fd) const {
  char line[kSlotBytes + 1];
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    const std::size_t n = read_slot(i % capacity_, line);
    if (n == 0) continue;
    line[n] = '\n';
    std::size_t written = 0;
    while (written < n + 1) {
      const ssize_t rc = ::write(fd, line + written, n + 1 - written);
      if (rc <= 0) return;  // nothing safe to do about it in a handler
      written += static_cast<std::size_t>(rc);
    }
  }
}

void FlightRecorder::clear() {
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].generation.store(0, std::memory_order_relaxed);
    slots_[i].length.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_release);
}

namespace {

/// Raw pointer mirror of flight_recorder() so the signal handler never
/// runs a function-local-static guard.
std::atomic<FlightRecorder*> g_recorder{nullptr};

constexpr std::size_t kMaxCrashPath = 512;
char g_crash_path[kMaxCrashPath] = {0};

/// Alternate signal stack: SIGSEGV from stack overflow must not try to
/// grow the very stack that just overflowed.
alignas(16) char g_alt_stack[64 * 1024];

void append_decimal(char* buf, std::size_t cap, std::size_t& pos, long v) {
  char digits[24];
  std::size_t n = 0;
  if (v < 0) {
    if (pos < cap) buf[pos++] = '-';
    v = -v;
  }
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0 && n < sizeof(digits));
  while (n > 0 && pos < cap) buf[pos++] = digits[--n];
}

extern "C" void failmine_crash_handler(int sig) {
  FlightRecorder* recorder = g_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr && g_crash_path[0] != '\0') {
    const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder->dump_to_fd(fd);
      char line[64];
      std::size_t pos = 0;
      const char prefix[] = "{\"kind\":\"crash\",\"signal\":";
      std::memcpy(line, prefix, sizeof(prefix) - 1);
      pos = sizeof(prefix) - 1;
      append_decimal(line, sizeof(line) - 2, pos, sig);
      line[pos++] = '}';
      line[pos++] = '\n';
      std::size_t written = 0;
      while (written < pos) {
        const ssize_t rc = ::write(fd, line + written, pos - written);
        if (rc <= 0) break;
        written += static_cast<std::size_t>(rc);
      }
      ::close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (core dump, wait status, ...).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void serialize_span(const SpanRecord& span) {
  char line[256];
  std::size_t pos = 0;
  const auto append_literal = [&](const char* s) {
    const std::size_t n = std::strlen(s);
    if (pos + n <= sizeof(line)) {
      std::memcpy(line + pos, s, n);
      pos += n;
    }
  };
  append_literal("{\"kind\":\"span\",\"name\":\"");
  // JSON string escaping within the fixed buffer: quote and backslash
  // become two-character escapes, control characters degrade to '?'
  // (this runs on the span hot path; \uXXXX is not worth it here).
  for (char c : span.name) {
    if (c == '"' || c == '\\') {
      if (pos + 1 >= sizeof(line)) break;
      line[pos++] = '\\';
      line[pos++] = c;
    } else if (pos < sizeof(line)) {
      line[pos++] = static_cast<unsigned char>(c) < 0x20 ? '?' : c;
    }
  }
  append_literal("\",\"start_us\":");
  append_decimal(line, sizeof(line), pos, static_cast<long>(span.start_us));
  append_literal(",\"dur_us\":");
  append_decimal(line, sizeof(line), pos, static_cast<long>(span.duration_us));
  append_literal(",\"tid\":");
  append_decimal(line, sizeof(line), pos, span.thread_id);
  append_literal("}");
  flight_recorder().record_line(std::string_view(line, pos));
}

}  // namespace

FlightRecorder& flight_recorder() {
  // Leaked intentionally (see obs::logger()); mirrored into g_recorder
  // for the signal handler.
  static FlightRecorder* instance = [] {
    auto* r = new FlightRecorder();
    g_recorder.store(r, std::memory_order_release);
    return r;
  }();
  return *instance;
}

void FlightRecorderSink::write(const LogRecord& record) {
  std::string line = "{\"kind\":\"log\",";
  // Splice the shared serialization's fields after our kind tag.
  line += log_record_json(record).substr(1);
  flight_recorder().record_line(line);
}

void attach_flight_recorder() {
  static const bool attached = [] {
    flight_recorder();  // force creation before any recording
    logger().add_sink(std::make_shared<FlightRecorderSink>());
    tracer().set_span_hook(&serialize_span);
    return true;
  }();
  (void)attached;
}

void install_crash_dump(const std::string& path) {
  if (path.empty() || path.size() >= kMaxCrashPath)
    throw failmine::DomainError("crash dump path empty or too long: " + path);
  attach_flight_recorder();
  std::memcpy(g_crash_path, path.c_str(), path.size() + 1);

  stack_t alt{};
  alt.ss_sp = g_alt_stack;
  alt.ss_size = sizeof(g_alt_stack);
  ::sigaltstack(&alt, nullptr);

  struct sigaction action{};
  action.sa_handler = &failmine_crash_handler;
  action.sa_flags = SA_ONSTACK;
  sigemptyset(&action.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE})
    ::sigaction(sig, &action, nullptr);
}

std::string crash_dump_path() { return g_crash_path; }

}  // namespace failmine::obs
