#include "obs/labels.hpp"

#include <algorithm>

namespace failmine::obs {

namespace {

bool label_key_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

std::string escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape_label_value(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out.push_back(escaped[i]);
      continue;
    }
    const char next = escaped[++i];
    out.push_back(next == 'n' ? '\n' : next);
  }
  return out;
}

const std::string* ParsedMetricName::find(std::string_view key) const {
  for (const MetricLabel& label : labels)
    if (label.key == key) return &label.value;
  return nullptr;
}

std::string label_block(std::vector<MetricLabel> labels) {
  if (labels.empty()) return "";
  std::stable_sort(labels.begin(), labels.end(),
                   [](const MetricLabel& a, const MetricLabel& b) {
                     return a.key < b.key;
                   });
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].key + "=\"" + escape_label_value(labels[i].value) + "\"";
  }
  out.push_back('}');
  return out;
}

std::string labeled_name(std::string_view family,
                         std::vector<MetricLabel> labels) {
  return std::string(family) + label_block(std::move(labels));
}

bool same_labels(std::vector<MetricLabel> a, std::vector<MetricLabel> b) {
  if (a.size() != b.size()) return false;
  const auto by_key_value = [](const MetricLabel& x, const MetricLabel& y) {
    return x.key != y.key ? x.key < y.key : x.value < y.value;
  };
  std::sort(a.begin(), a.end(), by_key_value);
  std::sort(b.begin(), b.end(), by_key_value);
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].key != b[i].key || a[i].value != b[i].value) return false;
  return true;
}

bool parse_metric_name(std::string_view name, ParsedMetricName& out) {
  out.family.clear();
  out.labels.clear();
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    out.family = std::string(name);
    return true;
  }
  out.family = std::string(name.substr(0, brace));
  std::size_t i = brace + 1;
  if (i < name.size() && name[i] == '}')
    return i + 1 == name.size();  // "family{}" == bare family
  while (i < name.size()) {
    MetricLabel label;
    while (i < name.size() && label_key_char(name[i]))
      label.key.push_back(name[i++]);
    if (label.key.empty() || i + 1 >= name.size() || name[i] != '=' ||
        name[i + 1] != '"')
      return false;
    i += 2;
    // Scan the escaped value up to its closing unescaped quote.
    std::string escaped;
    while (i < name.size() && name[i] != '"') {
      if (name[i] == '\\') {
        if (i + 1 >= name.size()) return false;
        escaped.push_back(name[i++]);
      }
      escaped.push_back(name[i++]);
    }
    if (i >= name.size()) return false;  // unterminated value
    ++i;                                 // closing quote
    label.value = unescape_label_value(escaped);
    out.labels.push_back(std::move(label));
    if (i < name.size() && name[i] == ',') {
      ++i;
      continue;
    }
    // The block must close at the very end of the name.
    return i + 1 == name.size() && name[i] == '}';
  }
  return false;
}

}  // namespace failmine::obs
