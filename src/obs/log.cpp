#include "obs/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace failmine::obs {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

LogLevel log_level_from_name(std::string_view name) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff})
    if (name == log_level_name(level)) return level;
  throw failmine::ParseError("unknown log level '" + std::string(name) +
                             "' (debug|info|warn|error|off)");
}

std::string Field::value_string() const {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return v;
        } else if constexpr (std::is_same_v<T, bool>) {
          return v ? "true" : "false";
        } else if constexpr (std::is_same_v<T, double>) {
          return json_number(v);
        } else {
          return std::to_string(v);
        }
      },
      value);
}

namespace {

std::string format_time_utc(std::chrono::system_clock::time_point tp) {
  const std::time_t t = std::chrono::system_clock::to_time_t(tp);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void append_field_value_json(std::string& out, const Field& field) {
  std::visit(
      [&out](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          append_json_string(out, v);
        } else if constexpr (std::is_same_v<T, bool>) {
          out += v ? "true" : "false";
        } else if constexpr (std::is_same_v<T, double>) {
          out += json_number(v);
        } else {
          out += std::to_string(v);
        }
      },
      field.value);
}

}  // namespace

std::string log_record_json(const LogRecord& record) {
  std::string line = "{\"time\":";
  append_json_string(line, format_time_utc(record.time));
  line += ",\"level\":";
  append_json_string(line, log_level_name(record.level));
  line += ",\"event\":";
  append_json_string(line, record.event);
  for (const Field& f : record.fields) {
    line.push_back(',');
    append_json_string(line, f.key);
    line.push_back(':');
    append_field_value_json(line, f);
  }
  line.push_back('}');
  return line;
}

void StderrSink::write(const LogRecord& record) {
  std::string line = format_time_utc(record.time);
  line.push_back(' ');
  std::string_view level = log_level_name(record.level);
  for (char c : level) line.push_back(static_cast<char>(std::toupper(c)));
  line.push_back(' ');
  line += record.event;
  for (const Field& f : record.fields) {
    line.push_back(' ');
    line += f.key;
    line.push_back('=');
    line += f.value_string();
  }
  line.push_back('\n');
  std::fputs(line.c_str(), stderr);
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : out_(path, std::ios::app), path_(path) {
  if (!out_) throw failmine::ObsError("cannot open log sink file: " + path);
}

void JsonlFileSink::write(const LogRecord& record) {
  out_ << log_record_json(record) << "\n";
  if (!out_) throw failmine::ObsError("write failed on log sink: " + path_);
}

void JsonlFileSink::flush() {
  out_.flush();
  if (!out_) throw failmine::ObsError("flush failed on log sink: " + path_);
}

Logger::Logger(LogLevel level) : level_(static_cast<int>(level)) {}

void Logger::add_sink(std::shared_ptr<LogSink> sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(std::move(sink));
}

void Logger::set_sinks(std::vector<std::shared_ptr<LogSink>> sinks) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sinks_ = std::move(sinks);
}

void Logger::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& sink : sinks_) sink->flush();
}

void Logger::log(LogLevel level, std::string_view event,
                 std::initializer_list<Field> fields) {
  if (level == LogLevel::kOff || !enabled(level)) return;
  LogRecord record;
  record.time = std::chrono::system_clock::now();
  record.level = level;
  record.event = std::string(event);
  record.fields.assign(fields.begin(), fields.end());
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& sink : sinks_) sink->write(record);
}

Logger& logger() {
  // Leaked intentionally: instrumented code may log from static
  // destructors, so the global logger must outlive everything.
  static Logger* instance = [] {
    LogLevel level = LogLevel::kWarn;
    if (const char* env = std::getenv("FAILMINE_LOG_LEVEL")) {
      try {
        level = log_level_from_name(env);
      } catch (const failmine::ParseError&) {
        // Leave the default; a bad env var must not abort the process.
      }
    }
    auto* l = new Logger(level);
    l->add_sink(std::make_shared<StderrSink>());
    return l;
  }();
  return *instance;
}

}  // namespace failmine::obs
