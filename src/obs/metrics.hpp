// failmine/obs/metrics.hpp
//
// Process-wide metrics: named counters, gauges and fixed-bucket
// histograms.
//
// Instruments are created on first use and live for the life of the
// registry, so hot paths can cache the reference:
//
//   static obs::Counter& rows = obs::metrics().counter("parse.lines_total");
//   rows.add();
//
// All mutation paths are lock-free atomics; the registry lock is only
// taken on instrument creation and export. Export formats: a JSON
// document (write_json / to_json) and a flat `name value` text dump.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace failmine::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// One exemplar: the most recent observation that landed in a bucket,
/// tagged with the trace id that produced it. The OpenMetrics renderer
/// attaches these to the bucket series so a dashboard's "p99 spiked"
/// panel links straight to a concrete traced record (`/trace?id=`).
struct Exemplar {
  double value = 0.0;
  std::uint64_t trace_id = 0;  ///< 0 = no exemplar recorded
  double unix_seconds = 0.0;   ///< wall-clock time of the observation
};

/// Fixed-bucket histogram: one bucket per upper bound (inclusive), plus
/// an implicit overflow bucket, plus running count and sum.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; throws
  /// DomainError otherwise.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  /// observe() that also remembers (v, trace_id, now) as the containing
  /// bucket's exemplar. Lock-free: concurrent taggers of the same
  /// bucket race via a generation CAS and the loser simply skips the
  /// exemplar update (any recent exemplar is as good as another). A
  /// trace_id of 0 degrades to a plain observe().
  void observe(double v, std::uint64_t exemplar_trace_id);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (last =
  /// overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Per-bucket exemplars (same indexing as bucket_counts()); entries
  /// with trace_id == 0 carry none.
  std::vector<Exemplar> exemplars() const;
  void reset();

 private:
  /// Seqlock-style exemplar slot built entirely from atomics (a racing
  /// reader may observe a torn *generation* and retry, never a torn
  /// value), so scraping under TSan while the pipeline stamps is clean.
  struct ExemplarSlot {
    std::atomic<std::uint32_t> gen{0};  ///< odd while a write is in flight
    std::atomic<double> value{0.0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<double> unix_seconds{0.0};
  };

  std::size_t bucket_index(double v) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::unique_ptr<ExemplarSlot[]> exemplars_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bucket bounds: 1-2-5 decades from 1 to 10000.
std::vector<double> default_histogram_bounds();

/// Point-in-time copy of one histogram (bounds + per-bucket counts; the
/// last bucket is the overflow past the largest bound).
struct HistogramSample {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;  ///< size = upper_bounds.size() + 1
  std::vector<Exemplar> exemplars;     ///< same indexing; may be empty
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Quantile estimate (q in [0, 1]) from a histogram sample: walks the
/// cumulative bucket counts and interpolates linearly inside the
/// containing bucket. Mass in the overflow bucket clamps to the largest
/// bound (the sample carries no upper edge to interpolate toward).
/// Returns 0 for an empty histogram.
double histogram_quantile(const HistogramSample& sample, double q);

/// Point-in-time copy of every instrument in a registry, name-sorted.
/// Decouples exporters (Prometheus exposition, the telemetry server)
/// from the registry lock: one lock acquisition per sample, rendering
/// happens lock-free on the copy.
struct MetricsSample {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSample>> histograms;
};

/// One dimension of a labeled instrument (`twin="t3"`). The registry
/// stays keyed by flat name: labeled instruments spell their labels
/// inline in the canonical form rendered by obs::labeled_name()
/// (labels.hpp), which every label-aware consumer parses back out.
struct MetricLabel {
  std::string key;
  std::string value;
};

class MetricsRegistry {
 public:
  /// Returns the instrument named `name`, creating it on first use.
  /// References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = {});

  /// Labeled variants: the instrument named `family{k="v",...}` in the
  /// canonical inline spelling (keys sorted, values escaped). An empty
  /// label set degrades to the bare family name, so callers can thread
  /// one label vector through both legacy and fleet configurations.
  /// (The histogram overload has no bounds default: a braced bounds
  /// list on the bare overload must never be overload-ambiguous.)
  Counter& counter(std::string_view family,
                   const std::vector<MetricLabel>& labels);
  Gauge& gauge(std::string_view family,
               const std::vector<MetricLabel>& labels);
  Histogram& histogram(std::string_view family,
                       const std::vector<MetricLabel>& labels,
                       std::vector<double> upper_bounds);

  /// Current value of a counter, or 0 if it was never touched. Handy in
  /// tests and reports; does not create the counter.
  std::uint64_t counter_value(std::string_view name) const;

  /// Consistent copy of every instrument (one lock hold).
  MetricsSample sample() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}
  std::string to_json() const;
  /// One `name value` line per instrument, sorted by name.
  std::string to_text() const;
  /// Writes to_json() to `path`; throws ObsError on failure.
  void write_json(const std::string& path) const;

  /// Zeroes every instrument (instruments themselves survive).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry used by all instrumented library code.
MetricsRegistry& metrics();

/// Registers (first call) and refreshes the process-lifetime gauges in
/// the global registry: `process_start_time_seconds` (unix time the obs
/// layer first came up — the conventional Prometheus name, already in
/// the exposition alphabet) and `failmine_uptime_seconds` (seconds
/// since). Called by the telemetry server per /metrics scrape and by
/// ObsSession at flush, so both live scrapes and file exports carry
/// fresh uptime.
void update_process_metrics();

}  // namespace failmine::obs
