// failmine/obs/profile.hpp
//
// On-demand sampling CPU profiler — the third leg of the observability
// stack (metrics say *that* a shard is slow, traces say *where* in the
// phase tree, profiles say *why*: which code is burning the CPU).
//
// Dependency-free and in-process: every attached thread gets a POSIX
// per-thread CPU-time timer (timer_create over pthread_getcpuclockid,
// SIGEV_THREAD_ID) delivering SIGPROF at the configured frequency. The
// async-signal-safe handler walks the frame-pointer chain (or glibc
// backtrace() under FAILMINE_PROFILE_BACKTRACE) and appends the stack —
// tagged with the innermost active obs::Span names (see
// trace.hpp/SpanLabelStack) and the thread's name — into a preallocated
// lock-free sample ring. A full ring counts drops instead of blocking.
// Symbolization (dladdr + demangling) happens offline at stop().
//
// Output:
//   ProfileReport::folded()           Brendan Gregg collapsed-stack
//                                     format, one "thread;span:…;frames…
//                                     count" line per unique stack —
//                                     feed to flamegraph.pl / speedscope
//   ProfileReport::span_table_text()  per-span self/total CPU table that
//                                     complements the tracer's wall-time
//                                     summary
//   ProfileReport::to_json()          the same data as one JSON document
//
// Reachable three ways: this programmatic API (ProfileSession RAII, used
// by bench_common.hpp via FAILMINE_PROFILE=out.folded[:HZ]), the shared
// `--profile-out PATH[:HZ]` flag handled by obs::ObsSession for every
// CLI subcommand and bench binary, and live over the telemetry server
// (`GET /profile?seconds=N&hz=H&fmt=folded|json`, see obs/serve.hpp).
//
// Self-metrics (cumulative across captures): `obs.profile.samples`,
// `obs.profile.dropped` (ring overflow), `obs.profile.truncated_stacks`
// (frame-depth cap hit).
//
// Threads are sampled only if attached. Attachment is automatic for any
// thread that opens an obs::Span, and explicit via
// profile_attach_this_thread() for threads that should appear in
// profiles before their first span (the stream pipeline attaches its
// shard/router workers right after naming them, so folded stacks carry
// shard identity).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace failmine::obs {

struct ProfileConfig {
  /// Sampling frequency per thread, Hz (clamped to [1, 1000]). 99 is the
  /// classic off-by-one from 100 that avoids lockstep with 10ms timers.
  int hz = 99;

  /// Sample-ring capacity. Samples past it are counted in dropped — the
  /// handler never blocks and never allocates.
  std::size_t max_samples = 1 << 15;

  /// Capture stacks with glibc backtrace() instead of the frame-pointer
  /// walk. Defaults on when the build sets FAILMINE_PROFILE_BACKTRACE
  /// (for toolchains that cannot keep frame pointers).
  bool use_backtrace =
#if defined(FAILMINE_PROFILE_BACKTRACE) && FAILMINE_PROFILE_BACKTRACE
      true;
#else
      false;
#endif
};

/// One unique collapsed stack ("thread;span:…;outer;…;leaf") and how
/// many samples landed on it.
struct FoldedStack {
  std::string stack;
  std::uint64_t count = 0;
};

/// CPU attribution of one span name: self = samples where it was the
/// innermost active span, total = samples where it was active anywhere
/// on the span stack. Samples with no active span aggregate under
/// "(no span)".
struct SpanCpu {
  std::string name;
  std::uint64_t self_samples = 0;
  std::uint64_t total_samples = 0;
  double self_seconds = 0.0;   ///< self_samples / hz
  double total_seconds = 0.0;  ///< total_samples / hz
};

struct ProfileReport {
  int hz = 0;
  double duration_seconds = 0.0;
  std::uint64_t samples = 0;           ///< stacks captured into the ring
  std::uint64_t dropped = 0;           ///< lost to ring overflow
  std::uint64_t truncated_stacks = 0;  ///< hit the frame-depth cap
  std::vector<FoldedStack> stacks;     ///< sorted by count, descending
  std::vector<SpanCpu> spans;          ///< sorted by total, descending

  /// Collapsed-stack document: one "stack count\n" line per entry.
  std::string folded() const;
  /// Human-readable per-span CPU table (pairs with tracer summary_text).
  std::string span_table_text() const;
  /// Everything above as one JSON document.
  std::string to_json() const;
  /// Writes folded() to `path`; throws ObsError on I/O failure.
  void write_folded(const std::string& path) const;
};

/// The process-wide profiler. One capture at a time: start() while a
/// capture is running returns false (the serve endpoint maps that to
/// HTTP 409).
class Profiler {
 public:
  static Profiler& instance();

  /// Arms per-thread timers on every attached thread and begins
  /// sampling. Returns false if a capture is already running. Throws
  /// ObsError if the SIGPROF handler cannot be installed.
  bool start(const ProfileConfig& config = {});

  bool running() const;

  /// Disarms the timers, waits for in-flight handlers, symbolizes and
  /// aggregates. Returns an empty report when no capture was running.
  /// Also bumps the obs.profile.* counters by this capture's totals.
  ProfileReport stop();

 private:
  Profiler() = default;
};

/// Registers the calling thread with the profiler (idempotent; cheap
/// after the first call). Captures in progress start sampling the thread
/// immediately; the thread's name (pthread_setname_np) is re-read at
/// every capture start.
void profile_attach_this_thread();

/// Parses a "PATH[:HZ]" profile spec ("out.folded", "out.folded:199").
/// Throws ParseError on an empty path or a non-positive / non-numeric
/// rate.
std::pair<std::string, int> parse_profile_spec(std::string_view spec,
                                               int default_hz = 99);

/// RAII capture: starts at construction, on finish() (or destruction)
/// stops and writes the folded stacks to the path from `spec`
/// ("PATH[:HZ]"). Throws ObsError at construction when a capture is
/// already running.
class ProfileSession {
 public:
  explicit ProfileSession(const std::string& spec, int default_hz = 99);

  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

  /// finish() if still active, swallowing ObsError (profiling must not
  /// turn a successful run into a crash at exit).
  ~ProfileSession();

  /// Stops the capture, writes the folded file and returns the report.
  /// Idempotent: later calls return an empty report. Throws ObsError on
  /// I/O failure.
  ProfileReport finish();

  const std::string& path() const { return path_; }
  bool active() const { return active_; }

 private:
  std::string path_;
  bool active_ = false;
};

}  // namespace failmine::obs
